//! Link-level protocol state machines: one send unit and one receive unit
//! per direction.
//!
//! The observable guarantees (§2.2) implemented here:
//!
//! * every data packet is acknowledged; up to **three words** may be in the
//!   air before an acknowledgement arrives, amortising the round trip;
//! * a detected bit error causes an **automatic hardware resend** — the
//!   sender rewinds to the rejected word (go-back-N over the FIFO wire);
//! * an unprogrammed receiver (**idle receive**) holds up to three words
//!   *without acknowledging them*, stalling the sender until the receive
//!   DMA is armed — so there is no required temporal ordering between a
//!   send on one node and the matching receive on its neighbour;
//! * both ends keep **checksums** over the data words, compared at the end
//!   of a calculation as final confirmation that no corrupted data slipped
//!   through.
//!
//! The simulated wire is FIFO and carries [`Frame`]s tagged with a sequence
//! number. The real hardware needs no sequence numbers — the synchronous
//! bit-serial wire provides the ordering, and nacks return before the next
//! frame completes — but an executor that delivers frames as discrete
//! events does, so the tag travels as simulation metadata outside the
//! 72-bit wire accounting.

use crate::dma::{DmaDescriptor, DmaEngine};
use crate::packet::{Frame, Packet};
use qcdoc_asic::memory::NodeMemory;
use qcdoc_telemetry::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Maximum unacknowledged data words per link: the "three in the air"
/// protocol (§2.2).
pub const WINDOW: usize = 3;

/// Capacity of the idle-receive holding register, in words (§2.2).
pub const IDLE_HOLD: usize = 3;

/// Link protocol failures that are *not* handled by the hardware resend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// An operation was attempted before HSSL training completed.
    NotTrained,
    /// A memory access performed by the receive DMA failed.
    Memory(String),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::NotTrained => write!(f, "link not trained"),
            LinkError::Memory(e) => write!(f, "receive DMA memory fault: {e}"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Order-sensitive checksum over the data words of one link end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkChecksum(u64);

impl LinkChecksum {
    /// Fold one word into the checksum.
    pub fn update(&mut self, word: u64) {
        self.0 = self.0.wrapping_mul(0x100000001B3).wrapping_add(word);
    }

    /// The checksum value.
    pub fn value(self) -> u64 {
        self.0
    }
}

/// Retry discipline of one send unit: how many consecutive go-back-N
/// rewinds it tolerates without forward progress, and how hard it backs
/// off between volleys.
///
/// The real hardware resends forever — §2.2 sizes the parity-resend for
/// error rates where a handful of rewinds per run is already pessimistic.
/// A *broken* transmitter, though, corrupts every frame and turns the
/// automatic resend into an infinite storm that the wedge watchdog cannot
/// see (frames keep moving, so the link never looks idle). The retry
/// policy bounds that: each rewind without an intervening acknowledgement
/// doubles a hold-off (counted in pump rounds), and once `budget`
/// consecutive rewinds pass without progress the unit declares itself
/// dead and stops transmitting — the diagnostics-network escalation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Consecutive no-progress rewinds tolerated before the link is dead.
    pub budget: u32,
    /// Hold-off after the first rewind, in pump rounds; doubles per
    /// consecutive rewind. Zero disables backoff (hardware behaviour).
    pub backoff_base: u32,
    /// Ceiling on the hold-off, in pump rounds.
    pub backoff_cap: u32,
}

impl RetryPolicy {
    /// The hardware discipline: resend forever, immediately.
    pub fn unlimited() -> RetryPolicy {
        RetryPolicy {
            budget: u32::MAX,
            backoff_base: 0,
            backoff_cap: 0,
        }
    }

    /// A bounded discipline for machines that must escalate instead of
    /// livelock.
    pub fn bounded(budget: u32, backoff_base: u32, backoff_cap: u32) -> RetryPolicy {
        RetryPolicy {
            budget,
            backoff_base,
            backoff_cap,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::unlimited()
    }
}

/// The health of one send unit as judged by its retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkVerdict {
    /// No rewinds observed; the link is clean.
    Healthy,
    /// Rewinds happened but the link is still making progress.
    Degraded,
    /// The retry budget is exhausted; the unit has stopped transmitting
    /// and the node must be quarantined.
    Dead,
}

/// A frame on the simulated wire, tagged with its data-sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// Sequence number of the data word (metadata; see module docs).
    pub seq: u64,
    /// The framed packet.
    pub frame: Frame,
}

/// What a [`WireTap`] decided about one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireVerdict {
    /// Put the frame (possibly corrupted in place) on the wire.
    Deliver,
    /// The frame vanishes — a dead wire or a crashed node.
    Drop,
}

/// Fault-injection hook on the simulated wire.
///
/// An execution engine calls the tap for every outgoing frame of a link
/// *after* the send unit produced it and *before* the frame reaches the
/// neighbour, mirroring where physical bit errors strike. The tap may
/// corrupt the frame in place (exercising the parity-reject and go-back-N
/// resend machinery of [`SendUnit`]/[`RecvUnit`] for real) or drop it
/// entirely (a dead link). The no-fault engine uses [`NullTap`].
pub trait WireTap {
    /// Inspect, corrupt, or drop the frame leaving on `link`.
    fn on_frame(&mut self, link: usize, wf: &mut WireFrame) -> WireVerdict;
}

/// The default tap: every frame travels untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTap;

impl WireTap for NullTap {
    fn on_frame(&mut self, _link: usize, _wf: &mut WireFrame) -> WireVerdict {
        WireVerdict::Deliver
    }
}

/// The send unit of one direction.
#[derive(Debug, Clone)]
pub struct SendUnit {
    trained: bool,
    /// Unacknowledged data packets (front = oldest), each with its seq.
    window: VecDeque<(u64, Packet)>,
    /// How many of the window entries have been put on the wire.
    in_flight: usize,
    /// Data packets waiting behind the window.
    queue: VecDeque<Packet>,
    /// Supervisor packets wait here and take priority over normal data.
    supervisor_queue: VecDeque<u64>,
    /// Partition-interrupt bytes: fire-and-forget, highest urgency.
    irq_queue: VecDeque<u8>,
    next_seq: u64,
    checksum: LinkChecksum,
    sent_words: u64,
    resends: u64,
    policy: RetryPolicy,
    /// Consecutive rewinds since the last acknowledged word.
    rewinds_since_progress: u32,
    /// Consecutive block-checksum replays since the last verified block.
    block_retries_since_ok: u32,
    /// Whole-block replays performed (sticky diagnostic counter).
    block_replays: u64,
    /// Pump rounds the unit still holds off before retransmitting.
    backoff_remaining: u64,
    backoff_waits: u64,
    /// Distribution of backoff delays granted (pump rounds per rewind) —
    /// the tail of this histogram is what a flaky wire actually costs.
    backoff_delays: Histogram,
    dead: bool,
}

impl Default for SendUnit {
    fn default() -> Self {
        SendUnit::new()
    }
}

impl SendUnit {
    /// A fresh, untrained send unit.
    pub fn new() -> SendUnit {
        SendUnit {
            trained: false,
            window: VecDeque::with_capacity(WINDOW),
            in_flight: 0,
            queue: VecDeque::new(),
            supervisor_queue: VecDeque::new(),
            irq_queue: VecDeque::new(),
            next_seq: 0,
            checksum: LinkChecksum::default(),
            sent_words: 0,
            resends: 0,
            policy: RetryPolicy::unlimited(),
            rewinds_since_progress: 0,
            block_retries_since_ok: 0,
            block_replays: 0,
            backoff_remaining: 0,
            backoff_waits: 0,
            backoff_delays: Histogram::default(),
            dead: false,
        }
    }

    /// Install a retry discipline (default: [`RetryPolicy::unlimited`]).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// The installed retry discipline.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Complete HSSL training.
    pub fn train(&mut self) {
        self.trained = true;
    }

    /// Whether training completed.
    pub fn trained(&self) -> bool {
        self.trained
    }

    /// Queue a normal 64-bit data word.
    pub fn enqueue_word(&mut self, word: u64) {
        self.checksum.update(word);
        self.queue.push_back(Packet::Normal(word));
    }

    /// Queue a supervisor packet (priority over normal data).
    pub fn enqueue_supervisor(&mut self, word: u64) {
        self.checksum.update(word);
        self.supervisor_queue.push_back(word);
    }

    /// Queue a partition-interrupt byte.
    pub fn enqueue_irq(&mut self, bits: u8) {
        self.irq_queue.push_back(bits);
    }

    /// Produce the next frame to transmit, or `None` if the unit is idle or
    /// stalled on the acknowledgement window.
    pub fn next_frame(&mut self) -> Result<Option<WireFrame>, LinkError> {
        if !self.trained {
            return Err(LinkError::NotTrained);
        }
        // Partition interrupts bypass the data window entirely.
        if let Some(bits) = self.irq_queue.pop_front() {
            return Ok(Some(WireFrame {
                seq: u64::MAX, // not part of the data sequence
                frame: Frame::encode(Packet::PartitionIrq(bits)),
            }));
        }
        // A dead unit has given up: the wire goes quiet, the wedge
        // watchdog fires, and the health ledger carries the verdict.
        if self.dead {
            return Ok(None);
        }
        // Exponential backoff after a rewind: hold the wire for a number
        // of pump rounds before the next volley.
        if self.backoff_remaining > 0 {
            self.backoff_remaining -= 1;
            self.backoff_waits += 1;
            return Ok(None);
        }
        // Retransmission of a window entry not currently in flight
        // (rewound by a reject).
        if self.in_flight < self.window.len() {
            let (seq, pkt) = self.window[self.in_flight];
            self.in_flight += 1;
            // Fresh packets enter the window already in flight, so reaching
            // here always means a go-back retransmission.
            self.resends += 1;
            return Ok(Some(WireFrame {
                seq,
                frame: Frame::encode(pkt),
            }));
        }
        // New data: supervisor first, then normal, if the window has room.
        if self.window.len() >= WINDOW {
            return Ok(None);
        }
        let pkt = if let Some(w) = self.supervisor_queue.pop_front() {
            Packet::Supervisor(w)
        } else if let Some(p) = self.queue.pop_front() {
            p
        } else {
            return Ok(None);
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sent_words += 1;
        self.window.push_back((seq, pkt));
        self.in_flight += 1;
        Ok(Some(WireFrame {
            seq,
            frame: Frame::encode(pkt),
        }))
    }

    /// The neighbour acknowledged every word up to and including `seq`
    /// (cumulative, go-back-N). A rewind storm makes the receiver accept
    /// some words twice (duplicates of frames resent after a reject), so
    /// the same word can be acknowledged more than once; keying the ack by
    /// sequence number makes the repeats harmless no-ops instead of
    /// popping a later, still-unacknowledged word off the window.
    pub fn on_ack(&mut self, seq: u64) {
        let mut popped = false;
        while self.window.front().is_some_and(|&(s, _)| s <= seq) {
            self.window.pop_front();
            self.in_flight = self.in_flight.saturating_sub(1);
            popped = true;
        }
        if popped {
            // Forward progress: the retry budget and backoff reset.
            self.rewinds_since_progress = 0;
            self.backoff_remaining = 0;
        }
    }

    /// The neighbour rejected the word with sequence `seq` (corrupt frame):
    /// rewind so everything from `seq` on is retransmitted (go-back-N).
    pub fn on_reject(&mut self, seq: u64) {
        if self.dead {
            return;
        }
        if let Some(pos) = self.window.iter().position(|&(s, _)| s == seq) {
            // Only an actual rewind charges the retry budget: a stale
            // duplicate reject that finds the cursor already at (or
            // before) `pos` changes nothing and costs nothing.
            if pos < self.in_flight {
                self.in_flight = pos;
                self.register_rewind();
            }
        }
    }

    fn register_rewind(&mut self) {
        self.rewinds_since_progress += 1;
        if self.rewinds_since_progress > self.policy.budget {
            self.dead = true;
            self.backoff_remaining = 0;
        } else if self.policy.backoff_base > 0 {
            let shift = (self.rewinds_since_progress - 1).min(20);
            let wait = (self.policy.backoff_base as u64) << shift;
            self.backoff_remaining = wait.min(self.policy.backoff_cap as u64);
            self.backoff_delays.observe(self.backoff_remaining);
        }
    }

    /// The retry policy's judgement of this unit.
    pub fn verdict(&self) -> LinkVerdict {
        if self.dead {
            LinkVerdict::Dead
        } else if self.resends > 0 || self.rewinds_since_progress > 0 || self.block_replays > 0 {
            LinkVerdict::Degraded
        } else {
            LinkVerdict::Healthy
        }
    }

    /// Whether the retry budget is exhausted (the unit stopped sending).
    pub fn retry_exhausted(&self) -> bool {
        self.dead
    }

    /// Pump rounds spent holding the wire in backoff.
    pub fn backoff_waits(&self) -> u64 {
        self.backoff_waits
    }

    /// Distribution of backoff delays granted by [`RetryPolicy`], one
    /// observation per rewind that earned a hold-off.
    pub fn backoff_delays(&self) -> &Histogram {
        &self.backoff_delays
    }

    /// Whether the normal-data staging queue is empty.
    pub fn queue_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of unacknowledged words in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// True when data is queued but the window is full and fully in flight.
    pub fn stalled(&self) -> bool {
        self.window.len() >= WINDOW
            && self.in_flight == self.window.len()
            && !(self.queue.is_empty() && self.supervisor_queue.is_empty())
    }

    /// Whether every queued word has been sent and acknowledged.
    pub fn drained(&self) -> bool {
        self.window.is_empty()
            && self.queue.is_empty()
            && self.supervisor_queue.is_empty()
            && self.irq_queue.is_empty()
    }

    /// End-of-run checksum of all data words queued on this end.
    pub fn checksum(&self) -> LinkChecksum {
        self.checksum
    }

    /// Number of go-back retransmissions performed.
    pub fn resends(&self) -> u64 {
        self.resends
    }

    /// Total distinct data words sent.
    pub fn sent_words(&self) -> u64 {
        self.sent_words
    }

    /// Restore the end-of-run checksum to a snapshot taken at a block
    /// boundary. A checked-block replay re-enqueues every payload word
    /// (plus a fresh trailer), so without the restore the failed attempt
    /// would stay folded into the sender's checksum and the end-of-run
    /// comparison would disagree even after a successful heal.
    pub fn restore_checksum(&mut self, snapshot: LinkChecksum) {
        self.checksum = snapshot;
    }

    /// Charge one block-level retry (a [`RecvOutcome::BlockCorrupt`]
    /// replay) against the retry budget. Block retries keep their own
    /// consecutive-failure count: a parity-evading burst is *accepted*
    /// word by word, so the per-word acks keep resetting the go-back-N
    /// budget — only a verified block ([`SendUnit::block_progress`])
    /// counts as progress here. Once the budget is exceeded the unit goes
    /// dead without performing the replay.
    pub fn charge_block_retry(&mut self) {
        if self.dead {
            return;
        }
        self.block_retries_since_ok += 1;
        if self.block_retries_since_ok > self.policy.budget {
            self.dead = true;
            self.backoff_remaining = 0;
            return;
        }
        self.block_replays += 1;
        if self.policy.backoff_base > 0 {
            let shift = (self.block_retries_since_ok - 1).min(20);
            let wait = (self.policy.backoff_base as u64) << shift;
            self.backoff_remaining = wait.min(self.policy.backoff_cap as u64);
        }
    }

    /// A block verified end to end: reset the consecutive block-retry
    /// count (the block-level analogue of an ack resetting the go-back-N
    /// budget).
    pub fn block_progress(&mut self) {
        self.block_retries_since_ok = 0;
    }

    /// Whole-block replays performed after block-checksum rejects.
    pub fn block_replays(&self) -> u64 {
        self.block_replays
    }
}

/// What the receive unit did with an incoming frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvOutcome {
    /// Data word consumed; an acknowledgement should be returned.
    Accepted,
    /// Data word held in the idle-receive register; **no acknowledgement**
    /// (the sender will stall once the window fills — §2.2).
    Held,
    /// Frame corrupt or out of sequence; a reject for `seq` should be
    /// returned so the sender rewinds.
    Rejected {
        /// The sequence number the receiver expected.
        seq: u64,
    },
    /// Duplicate of an already-accepted word (late retransmission); re-ack
    /// without consuming.
    Duplicate,
    /// The trailing block-checksum word of a checked receive matched the
    /// payload that landed: acknowledge it *and* return a block
    /// acknowledgement so the sender may retire the transfer.
    BlockOk,
    /// The trailing block-checksum word did **not** match: a multi-bit
    /// burst evaded the per-frame parity and a wrong word is sitting in
    /// memory. The unit has already rewound its DMA to the block start and
    /// restored its end-of-run checksum; the sender must replay the whole
    /// block (see [`crate::scu::WireMsg::BlockReject`]).
    BlockCorrupt,
    /// A supervisor word: deliver to the SCU register and raise a CPU
    /// interrupt.
    Supervisor(u64),
    /// A partition-interrupt byte for the flood-forwarding logic.
    PartitionIrq(u8),
}

/// State of one end-to-end checked block receive (§2.2's "checksums" made
/// per-transfer): the payload words are checksummed as they land and the
/// sender's trailing checksum word must match before the block is retired.
#[derive(Debug, Clone, Copy)]
struct CheckedBlock {
    /// Descriptor to re-arm on a mismatch — the whole block replays.
    desc: DmaDescriptor,
    /// End-of-run checksum at the block boundary, restored on a mismatch
    /// so a healed replay leaves both link ends agreeing.
    snapshot: LinkChecksum,
    /// `received_words` at the block boundary, restored alongside.
    received_snapshot: u64,
    /// Running checksum over this attempt's landed payload words.
    sum: LinkChecksum,
}

/// The receive unit of one direction.
#[derive(Debug, Clone)]
pub struct RecvUnit {
    trained: bool,
    expected_seq: u64,
    hold: VecDeque<(u64, u64)>,
    dma: Option<DmaEngine>,
    checksum: LinkChecksum,
    received_words: u64,
    rejects: u64,
    /// Sequence numbers of words accepted from the hold buffer when the
    /// DMA was armed late; their acks are owed to the sender.
    pending_acks: Vec<u64>,
    /// Active checked-block state (`None` for plain receives).
    checked: Option<CheckedBlock>,
    /// Block-checksum mismatches observed (each forced a block replay).
    block_rejects: u64,
    /// Block verdict produced while draining the hold buffer in a late
    /// [`RecvUnit::arm_checked`] (the trailer was already parked there).
    pending_block: Option<(u64, bool)>,
}

impl Default for RecvUnit {
    fn default() -> Self {
        RecvUnit::new()
    }
}

impl RecvUnit {
    /// A fresh, untrained receive unit in idle-receive mode.
    pub fn new() -> RecvUnit {
        RecvUnit {
            trained: false,
            expected_seq: 0,
            hold: VecDeque::with_capacity(IDLE_HOLD),
            dma: None,
            checksum: LinkChecksum::default(),
            received_words: 0,
            rejects: 0,
            pending_acks: Vec::new(),
            checked: None,
            block_rejects: 0,
            pending_block: None,
        }
    }

    /// Complete HSSL training.
    pub fn train(&mut self) {
        self.trained = true;
    }

    /// Whether training completed.
    pub fn trained(&self) -> bool {
        self.trained
    }

    /// Arm the receive DMA with a destination descriptor. Words parked in
    /// the idle-receive register drain to memory immediately and their
    /// withheld acknowledgements become [`RecvUnit::take_pending_acks`].
    pub fn arm(&mut self, desc: DmaDescriptor, mem: &mut NodeMemory) -> Result<(), LinkError> {
        let mut engine = DmaEngine::start(desc);
        while let Some((seq, word)) = self.hold.pop_front() {
            let addr = engine
                .next_address()
                .expect("descriptor shorter than idle-receive hold");
            mem.write_word(addr, word)
                .map_err(|e| LinkError::Memory(e.to_string()))?;
            self.received_words += 1;
            self.checksum.update(word);
            self.pending_acks.push(seq);
        }
        self.dma = Some(engine);
        Ok(())
    }

    /// Arm a *checked* receive: like [`RecvUnit::arm`], but the sender is
    /// expected to append a trailing checksum word after the `desc`
    /// payload, and the block is only retired once it matches. Held words
    /// past the payload length are the trailer of a block that arrived
    /// entirely before the arm; its verdict is left in
    /// [`RecvUnit::take_pending_block`].
    pub fn arm_checked(
        &mut self,
        desc: DmaDescriptor,
        mem: &mut NodeMemory,
    ) -> Result<(), LinkError> {
        self.checked = Some(CheckedBlock {
            desc,
            snapshot: self.checksum,
            received_snapshot: self.received_words,
            sum: LinkChecksum::default(),
        });
        let mut engine = DmaEngine::start(desc);
        while let Some((seq, word)) = self.hold.pop_front() {
            self.pending_acks.push(seq);
            match engine.next_address() {
                Some(addr) => {
                    mem.write_word(addr, word)
                        .map_err(|e| LinkError::Memory(e.to_string()))?;
                    self.received_words += 1;
                    self.checksum.update(word);
                    if let Some(cb) = &mut self.checked {
                        cb.sum.update(word);
                    }
                }
                None => {
                    // The held word past the payload is the block trailer.
                    self.dma = Some(engine);
                    let ok = matches!(self.verify_trailer(word), RecvOutcome::BlockOk);
                    self.pending_block = Some((seq, ok));
                    return Ok(());
                }
            }
        }
        self.dma = Some(engine);
        Ok(())
    }

    /// Compare the just-arrived trailer word against the running block
    /// checksum; on a mismatch rewind the DMA to the block start and
    /// restore the end-of-run state so the replay heals cleanly.
    fn verify_trailer(&mut self, word: u64) -> RecvOutcome {
        let cb = self
            .checked
            .as_mut()
            .expect("trailer without checked block");
        if word == cb.sum.value() {
            self.received_words += 1;
            self.checksum.update(word);
            self.checked = None;
            RecvOutcome::BlockOk
        } else {
            self.checksum = cb.snapshot;
            self.received_words = cb.received_snapshot;
            cb.sum = LinkChecksum::default();
            let desc = cb.desc;
            self.block_rejects += 1;
            self.dma = Some(DmaEngine::start(desc));
            RecvOutcome::BlockCorrupt
        }
    }

    /// Whether the armed receive descriptor has been fully written (and,
    /// for a checked receive, the trailing block checksum verified).
    pub fn complete(&self) -> bool {
        self.dma.as_ref().is_some_and(|d| d.done()) && self.checked.is_none()
    }

    /// Whether the unit is in idle-receive mode (no DMA armed).
    pub fn idle(&self) -> bool {
        self.dma.is_none()
    }

    /// Acknowledgements released by a late [`RecvUnit::arm`].
    pub fn take_pending_acks(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_acks)
    }

    /// Process one incoming frame.
    pub fn on_frame(
        &mut self,
        wf: &WireFrame,
        mem: &mut NodeMemory,
    ) -> Result<RecvOutcome, LinkError> {
        if !self.trained {
            return Err(LinkError::NotTrained);
        }
        let pkt = match wf.frame.decode() {
            Ok(p) => p,
            Err(_) => {
                // Bit error detected by parity or the distance-3 type
                // codes: automatic resend.
                self.rejects += 1;
                return Ok(RecvOutcome::Rejected {
                    seq: self.expected_seq,
                });
            }
        };
        match pkt {
            Packet::PartitionIrq(bits) => Ok(RecvOutcome::PartitionIrq(bits)),
            Packet::Idle | Packet::Train(_) | Packet::Ack => Ok(RecvOutcome::Duplicate),
            Packet::Normal(word) | Packet::Supervisor(word) => {
                if wf.seq < self.expected_seq {
                    // Late retransmission of something already accepted.
                    return Ok(RecvOutcome::Duplicate);
                }
                if wf.seq > self.expected_seq {
                    // Gap after a rejected frame: rewind the sender.
                    self.rejects += 1;
                    return Ok(RecvOutcome::Rejected {
                        seq: self.expected_seq,
                    });
                }
                if let Packet::Supervisor(_) = pkt {
                    self.expected_seq += 1;
                    self.received_words += 1;
                    self.checksum.update(word);
                    return Ok(RecvOutcome::Supervisor(word));
                }
                match &mut self.dma {
                    Some(engine) if !engine.done() => {
                        let addr = engine.next_address().expect("checked not done");
                        mem.write_word(addr, word)
                            .map_err(|e| LinkError::Memory(e.to_string()))?;
                        self.expected_seq += 1;
                        self.received_words += 1;
                        self.checksum.update(word);
                        if let Some(cb) = &mut self.checked {
                            cb.sum.update(word);
                        }
                        Ok(RecvOutcome::Accepted)
                    }
                    Some(_) if self.checked.is_some() => {
                        // Payload complete: this word is the block trailer.
                        self.expected_seq += 1;
                        Ok(self.verify_trailer(word))
                    }
                    _ => {
                        // Idle receive: hold without acknowledging. The
                        // checksum and word count are deferred to the drain
                        // in [`RecvUnit::arm`]/[`RecvUnit::arm_checked`] —
                        // the holding register has not *accepted* anything
                        // yet, and a checked block must be able to restore
                        // to its boundary state.
                        if self.hold.len() < IDLE_HOLD {
                            self.hold.push_back((wf.seq, word));
                            self.expected_seq += 1;
                            Ok(RecvOutcome::Held)
                        } else {
                            // The window should have stalled the sender
                            // before a fourth unacknowledged word.
                            self.rejects += 1;
                            Ok(RecvOutcome::Rejected {
                                seq: self.expected_seq,
                            })
                        }
                    }
                }
            }
        }
    }

    /// End-of-run checksum of all data words accepted on this end.
    pub fn checksum(&self) -> LinkChecksum {
        self.checksum
    }

    /// Total distinct data words accepted.
    pub fn received_words(&self) -> u64 {
        self.received_words
    }

    /// Number of frames rejected (each one forced a hardware resend).
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Number of block-checksum mismatches (each forced a block replay).
    pub fn block_rejects(&self) -> u64 {
        self.block_rejects
    }

    /// Block verdict `(trailer_seq, ok)` produced by a late
    /// [`RecvUnit::arm_checked`] that found the trailer already parked in
    /// the idle-receive hold.
    pub fn take_pending_block(&mut self) -> Option<(u64, bool)> {
        self.pending_block.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_pair() -> (SendUnit, RecvUnit) {
        let mut s = SendUnit::new();
        let mut r = RecvUnit::new();
        s.train();
        r.train();
        (s, r)
    }

    #[test]
    fn duplicate_acks_from_a_rewind_storm_are_no_ops() {
        // The interleaving that livelocks an unkeyed-ack protocol: the
        // receiver rejects a corrupt frame once per delivery attempt, and
        // the second (stale) reject reaches the sender after it already
        // resent the window — so the whole volley goes out twice, the
        // receiver acks the duplicates too, and the sender sees six acks
        // for three words. Seq-keyed cumulative acks make the extra three
        // pop nothing; an unkeyed ack would pop an empty window.
        let (mut s, mut r) = trained_pair();
        let mut m = mem();
        r.arm(DmaDescriptor::contiguous(0x6000, 3), &mut m).unwrap();
        for w in [5, 6, 7] {
            s.enqueue_word(w);
        }
        // First volley fills the window; frame 0 is corrupted in flight.
        let mut first: Vec<WireFrame> = Vec::new();
        while let Some(wf) = s.next_frame().unwrap() {
            first.push(wf);
        }
        assert_eq!(first.len(), WINDOW);
        first[0].frame.corrupt_bit(17);
        // The receiver rejects all three: parity on frame 0, then a
        // sequence gap for frames 1 and 2.
        for wf in &first {
            assert!(matches!(
                r.on_frame(wf, &mut m).unwrap(),
                RecvOutcome::Rejected { seq: 0 }
            ));
        }
        // The first reject rewinds and the volley is resent ...
        s.on_reject(0);
        let second: Vec<WireFrame> = std::iter::from_fn(|| s.next_frame().unwrap()).collect();
        assert_eq!(second.len(), WINDOW);
        // ... and the second, stale reject lands only now, rewinding again
        // and producing a duplicate volley.
        s.on_reject(0);
        let third: Vec<WireFrame> = std::iter::from_fn(|| s.next_frame().unwrap()).collect();
        assert_eq!(third.len(), WINDOW);
        // The receiver accepts the clean volley and acks the duplicate one
        // as well (it cannot know the sender already heard the first acks).
        let mut acks = Vec::new();
        for wf in second.iter().chain(&third) {
            match r.on_frame(wf, &mut m).unwrap() {
                RecvOutcome::Accepted | RecvOutcome::Duplicate => acks.push(wf.seq),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(acks, vec![0, 1, 2, 0, 1, 2]);
        for seq in acks {
            s.on_ack(seq);
        }
        assert!(r.complete());
        assert_eq!(m.read_block(0x6000, 3).unwrap(), vec![5, 6, 7]);
        assert_eq!(s.window_len(), 0, "every word acknowledged exactly once");
        assert_eq!(r.rejects(), 3);
        assert_eq!(s.resends(), 6);
        assert_eq!(s.checksum(), r.checksum());
    }

    fn mem() -> NodeMemory {
        NodeMemory::with_128mb_dimm()
    }

    /// Drive send/recv to completion over a perfect wire, returning acks
    /// seen.
    fn pump(s: &mut SendUnit, r: &mut RecvUnit, m: &mut NodeMemory) -> u64 {
        let mut acks = 0;
        while let Some(wf) = s.next_frame().unwrap() {
            match r.on_frame(&wf, m).unwrap() {
                RecvOutcome::Accepted | RecvOutcome::Duplicate => {
                    s.on_ack(wf.seq);
                    acks += 1;
                }
                RecvOutcome::Held => {}
                RecvOutcome::Rejected { seq } => s.on_reject(seq),
                RecvOutcome::Supervisor(_) | RecvOutcome::PartitionIrq(_) => {
                    acks += 1;
                    s.on_ack(wf.seq);
                }
                RecvOutcome::BlockOk | RecvOutcome::BlockCorrupt => {
                    unreachable!("plain pump never arms a checked receive")
                }
            }
        }
        acks
    }

    #[test]
    fn untrained_link_refuses_traffic() {
        let mut s = SendUnit::new();
        s.enqueue_word(1);
        assert_eq!(s.next_frame(), Err(LinkError::NotTrained));
    }

    #[test]
    fn simple_transfer_lands_in_memory() {
        let (mut s, mut r) = trained_pair();
        let mut m = mem();
        r.arm(DmaDescriptor::contiguous(0x1000, 4), &mut m).unwrap();
        for w in [10, 20, 30, 40] {
            s.enqueue_word(w);
        }
        pump(&mut s, &mut r, &mut m);
        assert!(r.complete());
        assert_eq!(m.read_block(0x1000, 4).unwrap(), vec![10, 20, 30, 40]);
        assert!(s.drained());
        assert_eq!(
            s.checksum(),
            r.checksum(),
            "end-of-run checksums must agree"
        );
    }

    #[test]
    fn window_stalls_at_three_unacked() {
        let (mut s, mut r) = trained_pair();
        let mut m = mem();
        for w in 0..10 {
            s.enqueue_word(w);
        }
        // Receiver is idle (unarmed): words are held, no acks — after three
        // frames the sender must stall. This is the idle-receive blocking
        // behaviour of §2.2.
        let mut sent = 0;
        while let Some(wf) = s.next_frame().unwrap() {
            assert_eq!(r.on_frame(&wf, &mut m).unwrap(), RecvOutcome::Held);
            sent += 1;
            assert!(
                sent <= WINDOW,
                "sender exceeded the three-in-the-air window"
            );
        }
        assert_eq!(sent, 3);
        assert!(s.stalled());
    }

    #[test]
    fn arming_late_releases_held_words_and_acks() {
        let (mut s, mut r) = trained_pair();
        let mut m = mem();
        for w in [7, 8, 9, 10, 11] {
            s.enqueue_word(w);
        }
        // Send until stalled (3 held words, no acks).
        while let Some(wf) = s.next_frame().unwrap() {
            r.on_frame(&wf, &mut m).unwrap();
        }
        // Now the application on the receiving node posts its receive.
        r.arm(DmaDescriptor::contiguous(0x2000, 5), &mut m).unwrap();
        let released = r.take_pending_acks();
        assert_eq!(released.len(), 3);
        for seq in released {
            s.on_ack(seq);
        }
        pump(&mut s, &mut r, &mut m);
        assert_eq!(m.read_block(0x2000, 5).unwrap(), vec![7, 8, 9, 10, 11]);
        assert_eq!(s.checksum(), r.checksum());
    }

    #[test]
    fn corrupt_frame_triggers_resend_and_checksums_still_agree() {
        let (mut s, mut r) = trained_pair();
        let mut m = mem();
        r.arm(DmaDescriptor::contiguous(0x3000, 4), &mut m).unwrap();
        for w in [100, 200, 300, 400] {
            s.enqueue_word(w);
        }
        let mut corrupted = false;
        while let Some(mut wf) = s.next_frame().unwrap() {
            if !corrupted && wf.seq == 1 {
                wf.frame.corrupt_bit(20);
                corrupted = true;
            }
            match r.on_frame(&wf, &mut m).unwrap() {
                RecvOutcome::Accepted | RecvOutcome::Duplicate => s.on_ack(wf.seq),
                RecvOutcome::Held => {}
                RecvOutcome::Rejected { seq } => s.on_reject(seq),
                _ => unreachable!(),
            }
        }
        assert!(corrupted);
        assert!(r.rejects() >= 1);
        assert_eq!(m.read_block(0x3000, 4).unwrap(), vec![100, 200, 300, 400]);
        assert_eq!(s.checksum(), r.checksum(), "resend must leave data intact");
    }

    #[test]
    fn supervisor_takes_priority_over_normal_data() {
        let (mut s, mut r) = trained_pair();
        let mut m = mem();
        r.arm(DmaDescriptor::contiguous(0x100, 2), &mut m).unwrap();
        s.enqueue_word(1);
        s.enqueue_word(2);
        s.enqueue_supervisor(0xFEED);
        let wf = s.next_frame().unwrap().unwrap();
        match r.on_frame(&wf, &mut m).unwrap() {
            RecvOutcome::Supervisor(w) => assert_eq!(w, 0xFEED),
            other => panic!("expected supervisor first, got {other:?}"),
        }
    }

    #[test]
    fn partition_irq_bypasses_data_window() {
        let (mut s, mut r) = trained_pair();
        let mut m = mem();
        // Fill and stall the data window.
        for w in 0..5 {
            s.enqueue_word(w);
        }
        while let Some(wf) = s.next_frame().unwrap() {
            r.on_frame(&wf, &mut m).unwrap();
        }
        assert!(s.stalled());
        // An interrupt still gets through.
        s.enqueue_irq(0b0000_0001);
        let wf = s
            .next_frame()
            .unwrap()
            .expect("irq must bypass the stalled window");
        assert_eq!(
            r.on_frame(&wf, &mut m).unwrap(),
            RecvOutcome::PartitionIrq(1)
        );
    }

    #[test]
    fn duplicate_after_rewind_is_reacked_not_rewritten() {
        let (mut s, mut r) = trained_pair();
        let mut m = mem();
        r.arm(DmaDescriptor::contiguous(0x500, 2), &mut m).unwrap();
        s.enqueue_word(42);
        s.enqueue_word(43);
        let wf0 = s.next_frame().unwrap().unwrap();
        assert_eq!(r.on_frame(&wf0, &mut m).unwrap(), RecvOutcome::Accepted);
        // Deliver the same frame again (late retransmission).
        assert_eq!(r.on_frame(&wf0, &mut m).unwrap(), RecvOutcome::Duplicate);
        assert_eq!(r.received_words(), 1);
    }

    #[test]
    fn out_of_sequence_frame_is_rejected() {
        let (mut s, mut r) = trained_pair();
        let mut m = mem();
        r.arm(DmaDescriptor::contiguous(0x600, 3), &mut m).unwrap();
        for w in [1, 2, 3] {
            s.enqueue_word(w);
        }
        let wf0 = s.next_frame().unwrap().unwrap();
        let wf1 = s.next_frame().unwrap().unwrap();
        // Drop wf0; deliver wf1 first.
        assert_eq!(
            r.on_frame(&wf1, &mut m).unwrap(),
            RecvOutcome::Rejected { seq: 0 }
        );
        s.on_reject(0);
        // Sender rewinds and retransmits from seq 0.
        let again = s.next_frame().unwrap().unwrap();
        assert_eq!(again.seq, 0);
        assert_eq!(again.frame, wf0.frame);
    }

    #[test]
    fn tap_injected_bit_error_rewinds_sender_and_still_delivers() {
        // A WireTap flips one payload bit of the frame carrying word seq 2
        // on its first transmission. The receiver's parity check must
        // reject it, the sender must rewind (go-back-N), and the retry —
        // which the tap leaves alone — must land every word intact with
        // agreeing end-of-run checksums.
        struct FlipOnce {
            hit: bool,
        }
        impl WireTap for FlipOnce {
            fn on_frame(&mut self, _link: usize, wf: &mut WireFrame) -> WireVerdict {
                if !self.hit && wf.seq == 2 {
                    wf.frame.corrupt_bit(33);
                    self.hit = true;
                }
                WireVerdict::Deliver
            }
        }
        let (mut s, mut r) = trained_pair();
        let mut m = mem();
        let mut tap = FlipOnce { hit: false };
        r.arm(DmaDescriptor::contiguous(0x4000, 6), &mut m).unwrap();
        for w in [11, 22, 33, 44, 55, 66] {
            s.enqueue_word(w);
        }
        while let Some(mut wf) = s.next_frame().unwrap() {
            if tap.on_frame(0, &mut wf) == WireVerdict::Drop {
                continue;
            }
            match r.on_frame(&wf, &mut m).unwrap() {
                RecvOutcome::Accepted | RecvOutcome::Duplicate => s.on_ack(wf.seq),
                RecvOutcome::Held => {}
                RecvOutcome::Rejected { seq } => s.on_reject(seq),
                _ => unreachable!(),
            }
        }
        assert!(tap.hit, "the tap must have fired");
        assert!(s.resends() >= 1, "the sender must have rewound");
        assert!(
            r.rejects() >= 1,
            "the receiver must have rejected the frame"
        );
        assert_eq!(
            m.read_block(0x4000, 6).unwrap(),
            vec![11, 22, 33, 44, 55, 66]
        );
        assert_eq!(s.checksum(), r.checksum(), "healed run must checksum clean");
    }

    #[test]
    fn undetected_double_flip_is_caught_only_by_end_of_run_checksums() {
        // §2.2's layered defence: two flipped payload bits in the *same*
        // parity class (bits 8 and 10 are both even-position bits of the
        // first payload byte) cancel in the parity check, so the frame
        // decodes "successfully" into a wrong word and no resend fires.
        // The end-of-run checksum comparison is what catches it.
        let (mut s, mut r) = trained_pair();
        let mut m = mem();
        r.arm(DmaDescriptor::contiguous(0x5000, 4), &mut m).unwrap();
        for w in [1000, 2000, 3000, 4000] {
            s.enqueue_word(w);
        }
        let mut corrupted = false;
        while let Some(mut wf) = s.next_frame().unwrap() {
            if !corrupted && wf.seq == 1 {
                wf.frame.corrupt_bit(8);
                wf.frame.corrupt_bit(10);
                assert!(wf.frame.decode().is_ok(), "double flip must evade parity");
                corrupted = true;
            }
            match r.on_frame(&wf, &mut m).unwrap() {
                RecvOutcome::Accepted | RecvOutcome::Duplicate => s.on_ack(wf.seq),
                RecvOutcome::Held => {}
                RecvOutcome::Rejected { seq } => s.on_reject(seq),
                _ => unreachable!(),
            }
        }
        assert!(corrupted);
        assert_eq!(
            r.rejects(),
            0,
            "the corruption must go undetected in flight"
        );
        let landed = m.read_block(0x5000, 4).unwrap();
        assert_ne!(landed[1], 2000, "the wrong word must have landed");
        assert_eq!(landed[0], 1000);
        assert_ne!(
            s.checksum(),
            r.checksum(),
            "only the end-of-run checksum comparison exposes the corruption"
        );
    }

    #[test]
    fn null_tap_delivers_everything() {
        let mut tap = NullTap;
        let mut wf = WireFrame {
            seq: 0,
            frame: Frame::encode(Packet::Normal(9)),
        };
        let before = wf.clone();
        assert_eq!(tap.on_frame(3, &mut wf), WireVerdict::Deliver);
        assert_eq!(wf, before, "NullTap must not touch the frame");
    }

    /// Window bookkeeping must stay internally consistent after any
    /// ack/reject sequence: the in-flight cursor can never pass the
    /// window, and the window can never exceed the protocol limit.
    fn assert_window_consistent(s: &SendUnit) {
        assert!(s.in_flight <= s.window.len());
        assert!(s.window.len() <= WINDOW);
    }

    #[test]
    fn stale_ack_below_window_is_a_no_op() {
        let (mut s, mut r) = trained_pair();
        let mut m = mem();
        r.arm(DmaDescriptor::contiguous(0x7000, 4), &mut m).unwrap();
        for w in [1, 2, 3, 4] {
            s.enqueue_word(w);
        }
        // Deliver and ack the first two words.
        for _ in 0..2 {
            let wf = s.next_frame().unwrap().unwrap();
            assert_eq!(r.on_frame(&wf, &mut m).unwrap(), RecvOutcome::Accepted);
            s.on_ack(wf.seq);
        }
        let before = s.window_len();
        // Acks for long-gone sequence numbers change nothing.
        s.on_ack(0);
        s.on_ack(1);
        assert_eq!(s.window_len(), before);
        assert_window_consistent(&s);
        pump(&mut s, &mut r, &mut m);
        assert!(s.drained());
        assert_eq!(m.read_block(0x7000, 4).unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn ack_beyond_window_drains_it_and_stays_consistent() {
        let (mut s, _r) = trained_pair();
        for w in [1, 2, 3] {
            s.enqueue_word(w);
        }
        while s.next_frame().unwrap().is_some() {}
        assert_eq!(s.window_len(), WINDOW);
        // A (corrupt or misrouted) cumulative ack far past anything sent
        // can only drain the window, never wrap or underflow it.
        s.on_ack(u64::MAX - 1);
        assert_eq!(s.window_len(), 0);
        assert_window_consistent(&s);
        // And a fresh word still flows normally afterwards.
        s.enqueue_word(9);
        let wf = s.next_frame().unwrap().unwrap();
        assert_eq!(wf.seq, 3);
    }

    #[test]
    fn reject_for_unknown_seq_is_a_no_op() {
        let (mut s, _r) = trained_pair();
        for w in [1, 2, 3] {
            s.enqueue_word(w);
        }
        while s.next_frame().unwrap().is_some() {}
        // Rejects for sequence numbers not in the window (already acked,
        // never sent, or garbage) must not move the in-flight cursor.
        s.on_reject(99);
        s.on_reject(u64::MAX - 7);
        assert!(s.next_frame().unwrap().is_none(), "no spurious resend");
        assert_window_consistent(&s);
    }

    #[test]
    fn duplicate_rejects_with_cursor_at_zero_do_not_charge_the_budget() {
        // Two stale rejects for the same seq arrive back to back; only the
        // first actually rewinds. With a budget of 1, the second must not
        // kill the link.
        let (mut s, _r) = trained_pair();
        s.set_retry_policy(RetryPolicy::bounded(1, 0, 0));
        for w in [1, 2, 3] {
            s.enqueue_word(w);
        }
        while s.next_frame().unwrap().is_some() {}
        s.on_reject(0);
        s.on_reject(0); // cursor already at 0: no rewind, no charge
        s.on_reject(0);
        assert_eq!(s.verdict(), LinkVerdict::Degraded);
        assert!(!s.retry_exhausted());
        // The resend volley still goes out in full.
        let volley: Vec<WireFrame> = std::iter::from_fn(|| s.next_frame().unwrap()).collect();
        assert_eq!(volley.len(), WINDOW);
        assert_window_consistent(&s);
    }

    #[test]
    fn ack_progress_resets_the_retry_budget() {
        let (mut s, mut r) = trained_pair();
        s.set_retry_policy(RetryPolicy::bounded(2, 0, 0));
        let mut m = mem();
        r.arm(DmaDescriptor::contiguous(0x7100, 6), &mut m).unwrap();
        for w in [1, 2, 3, 4, 5, 6] {
            s.enqueue_word(w);
        }
        // Three separate corrupt-then-heal cycles: each burns one rewind,
        // but the ack in between resets the budget, so the link survives
        // more total rewinds than its consecutive budget.
        for round in 0..3 {
            let mut wf = s.next_frame().unwrap().unwrap();
            wf.frame.corrupt_bit(17);
            match r.on_frame(&wf, &mut m).unwrap() {
                RecvOutcome::Rejected { seq } => s.on_reject(seq),
                other => panic!("round {round}: expected reject, got {other:?}"),
            }
            let wf = s.next_frame().unwrap().unwrap();
            assert_eq!(r.on_frame(&wf, &mut m).unwrap(), RecvOutcome::Accepted);
            s.on_ack(wf.seq);
            assert!(!s.retry_exhausted(), "round {round} must not kill the link");
        }
        pump(&mut s, &mut r, &mut m);
        assert_eq!(m.read_block(0x7100, 6).unwrap(), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(s.checksum(), r.checksum());
    }

    #[test]
    fn exhausted_budget_kills_the_link_deterministically() {
        let (mut s, mut r) = trained_pair();
        s.set_retry_policy(RetryPolicy::bounded(4, 0, 0));
        let mut m = mem();
        r.arm(DmaDescriptor::contiguous(0x7200, 3), &mut m).unwrap();
        for w in [1, 2, 3] {
            s.enqueue_word(w);
        }
        // A broken transmitter: every frame arrives corrupt, every volley
        // is rejected. Count frames until the sender gives up.
        let mut frames = 0u64;
        loop {
            match s.next_frame().unwrap() {
                Some(mut wf) => {
                    frames += 1;
                    wf.frame.corrupt_bit(11);
                    if let RecvOutcome::Rejected { seq } = r.on_frame(&wf, &mut m).unwrap() {
                        s.on_reject(seq);
                    }
                }
                None => {
                    if s.retry_exhausted() {
                        break;
                    }
                    // Backoff disabled and window non-empty: None without
                    // death would be a livelock bug.
                    panic!("sender idle without exhausting its budget");
                }
            }
            assert!(frames < 100, "resend storm must be bounded");
        }
        assert_eq!(s.verdict(), LinkVerdict::Dead);
        // Budget 4 with a full window: the initial volley (3 frames), then
        // 4 tolerated rewinds. Each rewind happens after the first frame of
        // a volley is rejected, and frames 2,3 of the volley are rejected
        // as gaps against the already-rewound cursor (no extra charge), so
        // each rewind costs at most a window of frames.
        assert!(frames <= 3 + 5 * WINDOW as u64);
        // Dead means silent: no more frames, ever.
        for _ in 0..8 {
            assert!(s.next_frame().unwrap().is_none());
        }
        assert!(!s.drained(), "undelivered words remain — the run is lost");
        assert_window_consistent(&s);
    }

    #[test]
    fn backoff_holds_the_wire_and_doubles_per_rewind() {
        let (mut s, _r) = trained_pair();
        s.set_retry_policy(RetryPolicy::bounded(u32::MAX, 2, 16));
        for w in [1, 2, 3] {
            s.enqueue_word(w);
        }
        while s.next_frame().unwrap().is_some() {}
        // First rewind: hold-off of 2 pump rounds before the resend.
        s.on_reject(0);
        assert!(s.next_frame().unwrap().is_none());
        assert!(s.next_frame().unwrap().is_none());
        let wf = s.next_frame().unwrap().expect("backoff expired");
        assert_eq!(wf.seq, 0);
        while s.next_frame().unwrap().is_some() {}
        // Second consecutive rewind: hold-off doubles to 4.
        s.on_reject(0);
        for i in 0..4 {
            assert!(s.next_frame().unwrap().is_none(), "round {i} still held");
        }
        assert!(s.next_frame().unwrap().is_some());
        assert_eq!(s.backoff_waits(), 6);
        // Third: capped at 16, not 8*... unbounded growth.
        while s.next_frame().unwrap().is_some() {}
        for _ in 0..10 {
            s.on_reject(0);
            while s.next_frame().unwrap().is_none() && !s.retry_exhausted() {}
        }
        assert!(s.backoff_waits() <= 6 + 10 * 16);
    }

    #[test]
    fn default_policy_is_the_hardware_discipline() {
        let s = SendUnit::new();
        assert_eq!(s.retry_policy(), RetryPolicy::unlimited());
        assert_eq!(s.verdict(), LinkVerdict::Healthy);
        assert_eq!(s.backoff_waits(), 0);
    }

    #[test]
    fn bounded_policy_still_heals_a_one_shot_error_bit_identically() {
        // The acceptance property in miniature: with a bounded policy, a
        // transient corruption heals exactly as under the unlimited one —
        // same landed data, agreeing checksums, bounded resends per word.
        let (mut s, mut r) = trained_pair();
        s.set_retry_policy(RetryPolicy::bounded(8, 1, 64));
        let mut m = mem();
        r.arm(DmaDescriptor::contiguous(0x7300, 5), &mut m).unwrap();
        for w in [10, 20, 30, 40, 50] {
            s.enqueue_word(w);
        }
        let mut corrupted = false;
        let mut rounds = 0;
        while !s.drained() {
            rounds += 1;
            assert!(rounds < 200, "must terminate");
            let Some(mut wf) = s.next_frame().unwrap() else {
                continue; // backing off
            };
            if !corrupted && wf.seq == 2 {
                wf.frame.corrupt_bit(29);
                corrupted = true;
            }
            match r.on_frame(&wf, &mut m).unwrap() {
                RecvOutcome::Accepted | RecvOutcome::Duplicate => s.on_ack(wf.seq),
                RecvOutcome::Held => {}
                RecvOutcome::Rejected { seq } => s.on_reject(seq),
                _ => unreachable!(),
            }
        }
        assert!(corrupted);
        assert_eq!(m.read_block(0x7300, 5).unwrap(), vec![10, 20, 30, 40, 50]);
        assert_eq!(s.checksum(), r.checksum());
        assert_eq!(s.verdict(), LinkVerdict::Degraded);
        // Go-back-N bounds: one error rewinds at most a window's worth.
        assert!(s.resends() <= WINDOW as u64);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let mut a = LinkChecksum::default();
        let mut b = LinkChecksum::default();
        a.update(1);
        a.update(2);
        b.update(2);
        b.update(1);
        assert_ne!(a.value(), b.value());
    }
}
