//! Per-link statistics readout: the SCU's contribution to the diagnostics
//! view the host daemon scrapes over the Ethernet/JTAG network (§2.2).
//!
//! [`Scu::stats`] snapshots every link's protocol counters;
//! [`ScuStats::export_metrics`] publishes them into a
//! [`MetricsRegistry`] under the same series names the fault subsystem's
//! `HealthLedger` uses, so the two sources present one consistent view.

use crate::scu::{Scu, LINKS};
use qcdoc_telemetry::MetricsRegistry;

/// Protocol counters of one link direction (send + receive unit pair).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Distinct data words the send unit put on the wire.
    pub sent_words: u64,
    /// Distinct data words the receive unit accepted.
    pub received_words: u64,
    /// Go-back retransmissions performed by the send unit.
    pub resends: u64,
    /// Frames the receive unit rejected (each forced a resend).
    pub rejects: u64,
    /// End-of-run checksum over words sent on this direction.
    pub send_checksum: u64,
    /// End-of-run checksum over words received on this direction.
    pub recv_checksum: u64,
    /// Pump rounds the send unit spent holding the wire in retry backoff.
    pub backoff_waits: u64,
    /// Whether the send unit exhausted its retry budget and went silent.
    pub retry_exhausted: bool,
    /// End-to-end block-checksum mismatches at the receive unit (each one
    /// forced a whole-block replay — a burst evaded the frame parity).
    pub block_rejects: u64,
    /// Whole-block replays performed by the send side after a
    /// block-checksum reject.
    pub block_resends: u64,
}

/// Snapshot of all 12 link directions of one node's SCU.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScuStats {
    /// One entry per link direction.
    pub links: [LinkStats; LINKS],
}

impl Scu {
    /// Snapshot the protocol counters of every link direction.
    pub fn stats(&self) -> ScuStats {
        let mut stats = ScuStats::default();
        for (link, entry) in stats.links.iter_mut().enumerate() {
            let s = self.send_unit(link);
            let r = self.recv_unit(link);
            *entry = LinkStats {
                sent_words: s.sent_words(),
                received_words: r.received_words(),
                resends: s.resends(),
                rejects: r.rejects(),
                send_checksum: s.checksum().value(),
                recv_checksum: r.checksum().value(),
                backoff_waits: s.backoff_waits(),
                retry_exhausted: s.retry_exhausted(),
                block_rejects: r.block_rejects(),
                block_resends: self.block_resends(link),
            };
        }
        stats
    }
}

impl ScuStats {
    /// Total words moved over all links (sent + received).
    pub fn total_words(&self) -> u64 {
        self.links
            .iter()
            .map(|l| l.sent_words + l.received_words)
            .sum()
    }

    /// Total resends over all links.
    pub fn total_resends(&self) -> u64 {
        self.links.iter().map(|l| l.resends).sum()
    }

    /// Publish per-link gauges for node `node` into `reg`. Links with no
    /// activity are skipped to keep the registry sparse. Gauges (not
    /// counters) so a re-export of the same snapshot is idempotent.
    pub fn export_metrics(&self, node: u32, reg: &mut MetricsRegistry) {
        for (link, l) in self.links.iter().enumerate() {
            if l.sent_words == 0 && l.received_words == 0 && l.resends == 0 && l.rejects == 0 {
                continue;
            }
            let labels = [("node", node.to_string()), ("link", link.to_string())];
            reg.gauge_set("scu_link_sent_words", &labels, l.sent_words as f64);
            reg.gauge_set("scu_link_received_words", &labels, l.received_words as f64);
            reg.gauge_set("scu_link_resends", &labels, l.resends as f64);
            reg.gauge_set("scu_link_rejects", &labels, l.rejects as f64);
            // Recovery-path series stay out of the registry on healthy
            // links so the common case remains four series per link.
            if l.backoff_waits > 0 {
                reg.gauge_set("scu_link_backoff_waits", &labels, l.backoff_waits as f64);
            }
            if l.retry_exhausted {
                reg.gauge_set("scu_link_retry_exhausted", &labels, 1.0);
            }
            if l.block_rejects > 0 {
                reg.gauge_set("scu_link_block_rejects", &labels, l.block_rejects as f64);
            }
            if l.block_resends > 0 {
                reg.gauge_set("scu_link_block_resends", &labels, l.block_resends as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::DmaDescriptor;
    use qcdoc_asic::memory::NodeMemory;

    #[test]
    fn stats_snapshot_counts_a_transfer() {
        let mut a = Scu::new();
        let mut b = Scu::new();
        a.train_all();
        b.train_all();
        let mut am = NodeMemory::with_128mb_dimm();
        let mut bm = NodeMemory::with_128mb_dimm();
        am.write_block(0x1000, &[1, 2, 3, 4]).unwrap();
        a.start_send(0, DmaDescriptor::contiguous(0x1000, 4));
        b.start_recv(1, DmaDescriptor::contiguous(0x2000, 4), &mut bm)
            .unwrap();
        loop {
            let mut progressed = false;
            if let Some(msg) = a.tx_next(0, &mut am).unwrap() {
                b.rx(1, msg, &mut bm).unwrap();
                progressed = true;
            }
            if let Some(msg) = b.tx_next(1, &mut bm).unwrap() {
                a.rx(0, msg, &mut am).unwrap();
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        let sa = a.stats();
        let sb = b.stats();
        assert_eq!(sa.links[0].sent_words, 4);
        assert_eq!(sb.links[1].received_words, 4);
        assert_eq!(sa.links[0].resends, 0);
        assert_eq!(sa.links[0].send_checksum, sb.links[1].recv_checksum);
        assert_eq!(sa.total_words(), 4);
        assert_eq!(sb.total_words(), 4);
    }

    #[test]
    fn export_skips_idle_links_and_is_idempotent() {
        let mut stats = ScuStats::default();
        stats.links[3].sent_words = 7;
        stats.links[3].resends = 2;
        let mut reg = MetricsRegistry::new();
        stats.export_metrics(5, &mut reg);
        stats.export_metrics(5, &mut reg); // re-export must not double
        let labels = [("node", "5".to_string()), ("link", "3".to_string())];
        assert_eq!(reg.gauge("scu_link_sent_words", &labels), Some(7.0));
        assert_eq!(reg.gauge("scu_link_resends", &labels), Some(2.0));
        // Only link 3 was active: 4 series for it, nothing else.
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn recovery_series_export_only_when_active() {
        let mut stats = ScuStats::default();
        stats.links[2].sent_words = 1;
        stats.links[2].backoff_waits = 9;
        stats.links[2].retry_exhausted = true;
        stats.links[2].block_rejects = 2;
        stats.links[2].block_resends = 2;
        let mut reg = MetricsRegistry::new();
        stats.export_metrics(1, &mut reg);
        let labels = [("node", "1".to_string()), ("link", "2".to_string())];
        assert_eq!(reg.gauge("scu_link_backoff_waits", &labels), Some(9.0));
        assert_eq!(reg.gauge("scu_link_retry_exhausted", &labels), Some(1.0));
        assert_eq!(reg.gauge("scu_link_block_rejects", &labels), Some(2.0));
        assert_eq!(reg.gauge("scu_link_block_resends", &labels), Some(2.0));
        assert_eq!(reg.len(), 8);
    }
}
