//! The Serial Communications Unit (SCU) and its link protocol.
//!
//! The SCU is the custom block of the QCDOC ASIC that turns isolated nodes
//! into a tightly coupled machine (§2.2). Per node it manages 24 concurrent
//! uni-directional channels — a send and a receive unit for each of the 12
//! nearest-neighbour directions of the 6-D mesh — over bit-serial HSSL
//! links clocked at the processor frequency.
//!
//! The protocol features reproduced here, all from §2.2:
//!
//! * three packet classes multiplexed per link: **normal** 64-bit data
//!   words moved by DMA engines with block-strided descriptors,
//!   **supervisor** packets (a 64-bit word landing in a neighbour's SCU
//!   register and raising a CPU interrupt), and 8-bit **partition
//!   interrupt** packets flood-forwarded across a partition under the slow
//!   global clock;
//! * an 8-bit packet header whose type codes have pairwise Hamming distance
//!   ≥ 3 (a single bit error cannot re-type a packet) carrying two parity
//!   bits for the payload; a parity failure triggers an automatic hardware
//!   resend;
//! * per-end link checksums compared at the end of a calculation;
//! * the **three-in-the-air** acknowledgement window that amortises the
//!   round-trip handshake and sustains full bandwidth;
//! * **idle receive**: an unprogrammed receiver holds up to three words and
//!   withholds acknowledgement, blocking the sender — so sends and receives
//!   need no temporal ordering, and the machine is self-synchronizing at
//!   the link level;
//! * pass-through **global sums and broadcasts** that forward after only 8
//!   bits have arrived, with a doubled mode using two disjoint link sets.
//!
//! Timing constants live in [`timing`]; they reproduce the paper's 600 ns
//! nearest-neighbour memory-to-memory latency, the 3.3 µs tail of a
//! 24-word transfer, and the 1.3 GB/s aggregate node bandwidth.

#![warn(missing_docs)]

pub mod dma;
pub mod global;
pub mod hssl;
pub mod link;
pub mod packet;
pub mod scu;
pub mod stats;
pub mod timing;

pub use dma::DmaDescriptor;
pub use link::{
    LinkError, LinkVerdict, NullTap, RecvUnit, RetryPolicy, SendUnit, WireTap, WireVerdict,
};
pub use packet::{Frame, Packet};
pub use scu::{Scu, ScuEvent};
pub use stats::{LinkStats, ScuStats};
