//! The calibrated performance model — the machinery behind every
//! §4 efficiency figure.
//!
//! One CG iteration on one node decomposes into:
//!
//! * **FPU issue time** — the operator and linear-algebra flops divided by
//!   the per-action *issue density* (flops retired per FPU instruction in
//!   the hand-tuned assembly kernels; 2.0 would be pure FMA), inflated by
//!   a single machine-wide issue-overhead factor for the integer/branch
//!   code that cannot dual-issue;
//! * **memory time** — streaming traffic through the prefetching EDRAM
//!   port (16 B/cycle) while the working set fits in 4 MB, or through the
//!   DDR controller (≈5.8 B/cycle at 450 MHz) once it spills — the origin
//!   of the ~30% figure for large local volumes;
//! * **mesh time** — face exchanges on the 12 concurrent links, each a
//!   600 ns fixed path plus 72 bits/word serialization;
//! * **global-sum time** — two reductions per iteration on the hardware
//!   pass-through tree.
//!
//! The issue densities and overlap factors are the model's calibration
//! (five constants, fixed once); everything else — flop counts, byte
//! counts, surface areas, halo depths, link rates — is derived from the
//! implementations in `qcdoc-lattice`, `qcdoc-asic` and `qcdoc-scu`. The
//! efficiency *ordering* (clover > Wilson > ASQTAD) and the EDRAM cliff
//! are structural; the calibration only pins the absolute scale.

use crate::config::MachineConfig;
use qcdoc_asic::clock::Cycles;
use qcdoc_asic::edram::PORT_BYTES_PER_CYCLE;
use qcdoc_lattice::counts::{cg_linear_algebra_counts_in, operator_counts_in, Action, Prec};
use serde::{Deserialize, Serialize};

/// Arithmetic precision of the solve. §4: "performance for single
/// precision is slightly higher due to the decreased bandwidth to local
/// memory that is needed in this case."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// 64-bit IEEE (the paper's quoted numbers).
    Double,
    /// 32-bit.
    Single,
}

impl Precision {
    /// The storage width the byte ledgers are computed at.
    pub fn counts_width(self) -> Prec {
        match self {
            Precision::Double => Prec::Double,
            Precision::Single => Prec::Single,
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        self.counts_width().name()
    }
}

/// The model's calibration constants (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Extra issue cycles per FPU instruction (integer/branch overhead).
    pub issue_overhead: f64,
    /// Fraction of EDRAM streaming hidden under FPU time by the
    /// prefetching controller.
    pub mem_overlap_edram: f64,
    /// Fraction of DDR streaming hidden (no prefetch streams: much lower).
    pub mem_overlap_ddr: f64,
    /// Fraction of link time hidden under local work.
    pub comm_overlap: f64,
    /// Software cycles around each hardware global sum.
    pub global_sum_sw_cycles: u64,
    /// Fraction of peak DDR bandwidth sustained by the mixed strided
    /// accesses of a Dirac kernel (no prefetch streams on the DDR path,
    /// plus PLB arbitration).
    pub ddr_stream_efficiency: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            issue_overhead: 0.705,
            mem_overlap_edram: 0.75,
            mem_overlap_ddr: 0.30,
            comm_overlap: 0.35,
            global_sum_sw_cycles: 2_000,
            ddr_stream_efficiency: 0.55,
        }
    }
}

/// Flops retired per FPU instruction by the tuned kernel of each action
/// (2.0 = pure FMA). Clover's dense 6×6 blocks are the most FMA-friendly;
/// the staggered accumulate/phase structure the least.
pub fn issue_density(action: Action) -> f64 {
    match action {
        Action::Wilson => 1.55,
        Action::Clover => 1.80,
        Action::Staggered => 1.60,
        Action::Asqtad => 1.60,
        // The 5-D kernel streams each gauge link once per Ls slices and
        // runs the longest unbroken FMA chains of the suite — the reason
        // §4 expects it to "surpass the performance of the clover improved
        // Wilson operator".
        Action::Dwf { .. } => 1.82,
    }
}

/// The full per-iteration cycle breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyReport {
    /// The action measured.
    pub action: Action,
    /// FPU issue cycles per CG iteration.
    pub fpu_cycles: u64,
    /// Local memory cycles.
    pub mem_cycles: u64,
    /// Worst-direction link cycles.
    pub comm_cycles: u64,
    /// Global-sum cycles.
    pub gsum_cycles: u64,
    /// Combined cycles per iteration after overlap.
    pub total_cycles: u64,
    /// Flops per iteration per node.
    pub flops_per_iteration: u64,
    /// Sustained fraction of peak.
    pub efficiency: f64,
    /// Sustained Gflops per node.
    pub sustained_gflops_per_node: f64,
    /// Working set per node in bytes.
    pub resident_bytes: u64,
    /// Whether the working set fits the 4 MB EDRAM.
    pub fits_edram: bool,
    /// Time per CG iteration in microseconds.
    pub iteration_us: f64,
}

/// The Dirac-solver performance model for one machine + workload.
#[derive(Debug, Clone)]
pub struct DiracPerf {
    /// Machine configuration.
    pub machine: MachineConfig,
    /// Logical 4-D machine dims the solve runs on (product = nodes used).
    pub logical_dims: [usize; 4],
    /// Local volume per node.
    pub local_dims: [usize; 4],
    /// Precision.
    pub precision: Precision,
    /// Calibration constants.
    pub calibration: Calibration,
}

impl DiracPerf {
    /// The paper's benchmark setup: 128 nodes as a 4×4×4×2 logical torus,
    /// 4⁴ local volume, double precision, 450 MHz.
    pub fn paper_bench() -> DiracPerf {
        DiracPerf {
            machine: MachineConfig::bench_128(),
            logical_dims: [4, 4, 4, 2],
            local_dims: [4, 4, 4, 4],
            precision: Precision::Double,
            calibration: Calibration::default(),
        }
    }

    /// Local sites per node.
    pub fn local_sites(&self) -> u64 {
        self.local_dims.iter().product::<usize>() as u64
    }

    /// Evaluate the model for one action.
    pub fn evaluate(&self, action: Action) -> EfficiencyReport {
        let cal = self.calibration;
        let sites = self.local_sites() as f64;
        let width = self.precision.counts_width();
        let op = operator_counts_in(action, width);
        let la = cg_linear_algebra_counts_in(action, width);
        let clock = self.machine.node.clock;

        // --- FPU issue time (2 operator applications + linear algebra).
        let op_instr = 2.0 * op.flops as f64 / issue_density(action);
        let la_instr = la.flops as f64 / 2.0; // axpy/dot are pure FMA
        let fpu_cycles = sites * (op_instr + la_instr) * (1.0 + cal.issue_overhead);

        // --- Local memory time.
        let bytes_per_site =
            2.0 * (op.read_bytes + op.write_bytes) as f64 + (la.read_bytes + la.write_bytes) as f64;
        let bytes = sites * bytes_per_site;
        let resident = sites as u64 * op.resident_bytes;
        let fits_edram = qcdoc_asic::memory::fits_edram(resident);
        let (mem_cycles, mem_overlap) = if fits_edram {
            (bytes / PORT_BYTES_PER_CYCLE as f64, cal.mem_overlap_edram)
        } else {
            let ddr_bpc =
                qcdoc_asic::ddr::DDR_BYTES_PER_SEC / clock.hz() as f64 * cal.ddr_stream_efficiency;
            (bytes / ddr_bpc, cal.mem_overlap_ddr)
        };

        // --- Local combined time (prefetch overlap).
        let local = fpu_cycles.max(mem_cycles) + (1.0 - mem_overlap) * fpu_cycles.min(mem_cycles);

        // --- Mesh time: worst direction, both operator applications. The
        // twelve links run concurrently, so only the busiest direction
        // matters; M and M† each exchange every face once.
        let mut comm_cycles = 0.0f64;
        for (axis, &ext) in self.logical_dims.iter().enumerate() {
            if ext <= 1 {
                continue; // neighbour is self: no off-node traffic
            }
            let face_sites = self.local_sites() / self.local_dims[axis] as u64;
            let bytes_dir = face_sites as f64 * op.face_bytes as f64 * op.halo_depth as f64;
            let words = (bytes_dir / 8.0).ceil() as u64;
            let t = self.machine.link.transfer_cycles(words).count() as f64;
            comm_cycles = comm_cycles.max(2.0 * t);
        }

        // --- Global sums: two per iteration on the pass-through tree.
        let hw = self
            .machine
            .global
            .global_sum_cycles(&self.logical_dims, true, true)
            .count() as f64;
        let gsum = 2.0 * (hw + cal.global_sum_sw_cycles as f64);

        // --- Combine: comm partially overlaps local work.
        let total =
            local.max(comm_cycles) + (1.0 - cal.comm_overlap) * local.min(comm_cycles) + gsum;

        let flops_iter = (sites * (2.0 * op.flops as f64 + la.flops as f64)) as u64;
        let efficiency = flops_iter as f64 / (2.0 * total);
        EfficiencyReport {
            action,
            fpu_cycles: fpu_cycles as u64,
            mem_cycles: mem_cycles as u64,
            comm_cycles: comm_cycles as u64,
            gsum_cycles: gsum as u64,
            total_cycles: total as u64,
            flops_per_iteration: flops_iter,
            efficiency,
            sustained_gflops_per_node: efficiency * clock.peak_flops() / 1e9,
            resident_bytes: resident,
            fits_edram,
            iteration_us: clock.cycles_to_ns(Cycles(total as u64)) / 1000.0,
        }
    }

    /// Evaluate domain-wall fermions with the fifth dimension spread over
    /// `s_nodes` machine nodes — the workload the sixth mesh axis exists
    /// for (§2.2: QCD has "four- and five-dimensional formulations").
    ///
    /// Each node keeps `ls / s_nodes` slices; the s-direction boundary
    /// exchanges one chiral half-spinor per 4-D site per operator
    /// application in each sense. The gauge field is replicated along s
    /// (it carries no s-dependence), so the 4-D comm and gauge traffic are
    /// unchanged while flops and spinor traffic divide by `s_nodes`.
    pub fn evaluate_dwf_5d(&self, ls: u32, s_nodes: usize) -> EfficiencyReport {
        assert!(
            s_nodes >= 1 && (ls as usize).is_multiple_of(s_nodes),
            "Ls must divide over s_nodes"
        );
        let local_ls = ls / s_nodes as u32;
        let mut report = self.evaluate(Action::Dwf { ls: local_ls });
        if s_nodes > 1 {
            // Add the s-axis face exchange: one half-spinor (6 complex) per
            // 4-D site per sense per operator application, at the model's
            // storage width.
            let half_spinor = 6 * self.precision.counts_width().complex_bytes();
            let bytes = self.local_sites() as f64 * half_spinor as f64;
            let words = (bytes / 8.0).ceil() as u64;
            let t = 2.0 * self.machine.link.transfer_cycles(words).count() as f64;
            let comm = (report.comm_cycles as f64).max(t);
            // Rebuild local time from the recorded FPU/memory pieces with
            // the same overlap rule as `evaluate`.
            let fpu = report.fpu_cycles as f64;
            let mem = report.mem_cycles as f64;
            let mo = if report.fits_edram {
                self.calibration.mem_overlap_edram
            } else {
                self.calibration.mem_overlap_ddr
            };
            let local = fpu.max(mem) + (1.0 - mo) * fpu.min(mem);
            let total = local.max(comm)
                + (1.0 - self.calibration.comm_overlap) * local.min(comm)
                + report.gsum_cycles as f64;
            report.comm_cycles = comm as u64;
            report.total_cycles = total as u64;
            report.efficiency = report.flops_per_iteration as f64 / (2.0 * total);
            report.sustained_gflops_per_node =
                report.efficiency * self.machine.node.clock.peak_flops() / 1e9;
            report.iteration_us =
                self.machine.node.clock.cycles_to_ns(Cycles(total as u64)) / 1000.0;
        }
        report
    }

    /// Evaluate the paper's three benchmark actions plus domain wall.
    pub fn evaluate_suite(&self) -> Vec<EfficiencyReport> {
        [
            Action::Wilson,
            Action::Asqtad,
            Action::Clover,
            Action::Dwf { ls: 8 },
        ]
        .into_iter()
        .map(|a| self.evaluate(a))
        .collect()
    }

    /// Evaluate one action at both storage widths — same machine, same
    /// calibration, only the byte ledgers change. Returns
    /// `(double, single)`.
    pub fn evaluate_both_precisions(&self, action: Action) -> (EfficiencyReport, EfficiencyReport) {
        let mut model = self.clone();
        model.precision = Precision::Double;
        let dp = model.evaluate(action);
        model.precision = Precision::Single;
        let sp = model.evaluate(action);
        (dp, sp)
    }

    /// Render the single- vs double-precision sustained-performance table —
    /// §4's "performance for single precision is slightly higher" made
    /// quantitative. One row per suite action: efficiency and sustained
    /// Mflops per node at each width, plus the uplift.
    pub fn render_precision_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<10} {:>10} {:>10} {:>12} {:>12} {:>9}\n",
            "action", "dp eff %", "sp eff %", "dp MF/node", "sp MF/node", "uplift"
        ));
        for action in [
            Action::Wilson,
            Action::Asqtad,
            Action::Clover,
            Action::Dwf { ls: 8 },
        ] {
            let (dp, sp) = self.evaluate_both_precisions(action);
            s.push_str(&format!(
                "{:<10} {:>10.1} {:>10.1} {:>12.0} {:>12.0} {:>8.1}%\n",
                action.name(),
                100.0 * dp.efficiency,
                100.0 * sp.efficiency,
                1000.0 * dp.sustained_gflops_per_node,
                1000.0 * sp.sustained_gflops_per_node,
                100.0 * (sp.efficiency - dp.efficiency),
            ));
        }
        s
    }

    /// Render the §4 benchmark table.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<10} {:>8} {:>10} {:>12} {:>10} {:>8}\n",
            "action", "eff %", "GF/node", "iter (us)", "EDRAM?", "Mcyc"
        ));
        for r in self.evaluate_suite() {
            s.push_str(&format!(
                "{:<10} {:>8.1} {:>10.3} {:>12.1} {:>10} {:>8.2}\n",
                r.action.name(),
                100.0 * r.efficiency,
                r.sustained_gflops_per_node,
                r.iteration_us,
                if r.fits_edram { "yes" } else { "no" },
                r.total_cycles as f64 / 1e6,
            ));
        }
        s
    }
}

/// The paper's quoted double-precision efficiencies at 4⁴ local volume.
pub const PAPER_EFFICIENCIES: [(Action, f64); 3] = [
    (Action::Wilson, 0.40),
    (Action::Asqtad, 0.38),
    (Action::Clover, 0.465),
];

/// §4 quotes no single-precision table — only that sustained performance
/// "is slightly higher due to the decreased bandwidth to local memory".
/// The regression band asserted by the paper-numbers tests: at the 4⁴
/// benchmark volume the single-precision sustained fraction must exceed
/// the double-precision one, by at most this many absolute efficiency
/// points ("slightly", not dramatically — the kernels stay issue-bound).
pub const PAPER_SINGLE_PRECISION_MAX_UPLIFT: f64 = 0.15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_efficiencies_at_4x4() {
        // E1: Wilson 40%, ASQTAD 38%, clover 46.5% — the model must land
        // within 2.5 percentage points of each.
        let perf = DiracPerf::paper_bench();
        for (action, paper) in PAPER_EFFICIENCIES {
            let got = perf.evaluate(action).efficiency;
            assert!(
                (got - paper).abs() < 0.025,
                "{}: model {:.3} vs paper {:.3}",
                action.name(),
                got,
                paper
            );
        }
    }

    #[test]
    fn efficiency_ordering_matches_paper() {
        let perf = DiracPerf::paper_bench();
        let w = perf.evaluate(Action::Wilson).efficiency;
        let a = perf.evaluate(Action::Asqtad).efficiency;
        let c = perf.evaluate(Action::Clover).efficiency;
        assert!(
            c > w && w > a,
            "clover {c:.3} > wilson {w:.3} > asqtad {a:.3}"
        );
    }

    #[test]
    fn dwf_surpasses_clover() {
        // §4: the domain-wall kernel "we expect will surpass the
        // performance of the clover improved Wilson operator".
        let perf = DiracPerf::paper_bench();
        let dwf = perf.evaluate(Action::Dwf { ls: 8 }).efficiency;
        let clover = perf.evaluate(Action::Clover).efficiency;
        assert!(dwf > clover - 0.01, "dwf {dwf:.3} vs clover {clover:.3}");
    }

    #[test]
    fn single_precision_is_slightly_higher() {
        let perf = DiracPerf::paper_bench();
        for action in [Action::Wilson, Action::Asqtad, Action::Clover] {
            let (dp, sp) = perf.evaluate_both_precisions(action);
            assert!(
                sp.efficiency > dp.efficiency,
                "{}: single {:.3} must beat double {:.3}",
                action.name(),
                sp.efficiency,
                dp.efficiency
            );
            assert!(
                sp.efficiency - dp.efficiency < PAPER_SINGLE_PRECISION_MAX_UPLIFT,
                "{}: only *slightly* higher: {:.3} vs {:.3}",
                action.name(),
                sp.efficiency,
                dp.efficiency
            );
        }
    }

    #[test]
    fn precision_table_lists_both_widths() {
        let t = DiracPerf::paper_bench().render_precision_table();
        for col in ["dp eff %", "sp eff %", "uplift"] {
            assert!(t.contains(col), "{t}");
        }
        for name in ["wilson", "asqtad", "clover", "dwf"] {
            assert!(t.contains(name), "{t}");
        }
    }

    #[test]
    fn ddr_spill_drops_to_thirty_percent_band() {
        // E2: 6^4 still fits EDRAM; 8^4 spills and lands near 30%.
        let mut perf = DiracPerf::paper_bench();
        perf.local_dims = [6, 6, 6, 6];
        let r6 = perf.evaluate(Action::Clover);
        assert!(r6.fits_edram, "6^4 must fit the 4 MB EDRAM");
        perf.local_dims = [8, 8, 8, 8];
        for action in [Action::Wilson, Action::Clover] {
            let r8 = perf.evaluate(action);
            assert!(!r8.fits_edram, "8^4 must spill to DDR");
            assert!(
                (0.26..0.36).contains(&r8.efficiency),
                "{}: DDR-resident efficiency {:.3} outside the ~30% band",
                action.name(),
                r8.efficiency
            );
        }
        assert!(r6.efficiency > perf.evaluate(Action::Clover).efficiency);
    }

    #[test]
    fn hard_scaling_holds_to_small_volumes() {
        // Shrinking the local volume (more nodes on a fixed problem) costs
        // some efficiency but QCDOC stays usable — the design goal.
        let mut perf = DiracPerf::paper_bench();
        perf.local_dims = [2, 2, 2, 2];
        let tiny = perf.evaluate(Action::Wilson).efficiency;
        assert!(tiny > 0.2, "2^4 local volume efficiency {tiny:.3}");
    }

    #[test]
    fn breakdown_is_self_consistent() {
        let perf = DiracPerf::paper_bench();
        let r = perf.evaluate(Action::Wilson);
        assert!(r.total_cycles >= r.fpu_cycles.max(r.comm_cycles));
        assert!(r.efficiency > 0.0 && r.efficiency < 1.0);
        assert!(r.iteration_us > 0.0);
        assert_eq!(
            r.flops_per_iteration,
            256 * (2 * 1368 + 384),
            "Wilson CG iteration flop ledger"
        );
    }

    #[test]
    fn dwf_5d_decomposition_rescues_the_edram_fit() {
        // Ls = 16 at 4^4 per node does not fit the 4 MB EDRAM (16 x 6
        // solver vectors of spinors), so a node-local fifth dimension runs
        // at DDR speed. Spreading s over 2 or 4 machine nodes — what the
        // fifth/sixth mesh axes are for — brings the working set back on
        // chip and restores full efficiency, at the price of a modest
        // s-face exchange.
        let perf = DiracPerf::paper_bench();
        let local_s = perf.evaluate_dwf_5d(16, 1);
        let spread2 = perf.evaluate_dwf_5d(16, 2);
        let spread4 = perf.evaluate_dwf_5d(16, 4);
        assert!(!local_s.fits_edram, "Ls=16 node-local must spill");
        assert!(spread2.fits_edram && spread4.fits_edram);
        assert!(spread2.efficiency > local_s.efficiency + 0.05);
        assert!(spread4.efficiency > 0.4, "{}", spread4.efficiency);
        // And the iteration gets faster as s is spread.
        assert!(spread4.iteration_us < local_s.iteration_us);
    }

    #[test]
    fn dwf_5d_single_s_node_matches_plain_evaluate() {
        let perf = DiracPerf::paper_bench();
        let a = perf.evaluate_dwf_5d(8, 1);
        let b = perf.evaluate(Action::Dwf { ls: 8 });
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn render_table_lists_all_actions() {
        let t = DiracPerf::paper_bench().render_table();
        for name in ["wilson", "asqtad", "clover", "dwf"] {
            assert!(t.contains(name), "{t}");
        }
    }
}
