//! Lattice QCD distributed over the functional machine.
//!
//! Each node owns a hyper-rectangular block of the global lattice (§1:
//! "each processor becomes responsible for the local variables associated
//! with a space-time hypercube"). A Wilson dslash then needs, from each of
//! the eight neighbours, the spin-projected half-spinors of the adjacent
//! face — 12 complex numbers per face site, staged into node memory and
//! moved by the SCU DMA engines over the real link protocol.
//!
//! The arithmetic is ordered so that the distributed operator is **bitwise
//! identical** to the single-node reference in `qcdoc-lattice`: the same
//! project → SU(3)-multiply → reconstruct → accumulate sequence runs for
//! every site, only the *location* of the data differs. That is the
//! property behind the §4 reproducibility result, and the integration
//! tests assert it — including under injected link faults, where the
//! hardware resend makes corruption invisible to the physics.

use crate::comm::{global_sum_f64, global_sum_f64_async, COMM_SCRATCH_BASE};
use crate::functional::NodeCtx;
use qcdoc_geometry::{Axis, NodeId, TorusShape};
use qcdoc_lattice::checkpoint::CgCheckpoint;
use qcdoc_lattice::complex::C64;
use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc_lattice::spinor::{HalfSpinor, ProjSign, Spinor};
use qcdoc_lattice::su3::Su3;
use qcdoc_scu::dma::DmaDescriptor;
use qcdoc_telemetry::Phase;

/// Words per half-spinor on the wire (12 complex = 24 × u64).
const HALF_WORDS: u64 = 24;

/// Wilson hopping-term floating-point operations per site (§4: the
/// familiar 1320-flop dslash figure — 8 directions of SU(3) half-spinor
/// multiply, project and reconstruct).
const WILSON_FLOPS_PER_SITE: u64 = 1320;

/// Naive staggered floating-point operations per site (8 SU(3)
/// colour-vector multiplies plus phase/accumulate arithmetic).
const STAGGERED_FLOPS_PER_SITE: u64 = 570;

/// Clover-term floating-point operations per site (two dense 6×6 complex
/// matrix–vector products).
const CLOVER_FLOPS_PER_SITE: u64 = 576;

/// Logical compute cycles for `sites` lattice sites at `flops` per site,
/// assuming the paper's two floating-point operations per cycle (one
/// fused multiply-add per clock, §3.1).
fn compute_cycles(sites: usize, flops: u64) -> u64 {
    (sites as u64 * flops) / 2
}

/// The block decomposition seen from one node.
#[derive(Debug, Clone)]
pub struct BlockGeom {
    /// The global lattice.
    pub global: Lattice,
    /// The local block.
    pub local: Lattice,
    /// Logical machine extents (padded to 4 axes).
    pub mdims: [usize; 4],
    /// This node's machine coordinate.
    pub mcoord: [usize; 4],
}

impl BlockGeom {
    /// Build the decomposition for this node. The machine's logical rank
    /// must be ≤ 4 and each global extent divisible by the machine extent.
    pub fn new(ctx: &NodeCtx, global: Lattice) -> BlockGeom {
        BlockGeom::for_node(&ctx.shape, ctx.id, global)
    }

    /// Ctx-free decomposition for any node of a shape — what a host-side
    /// recovery planner uses to place per-node blocks into a global
    /// checkpoint without running on the machine.
    pub fn for_node(shape: &TorusShape, node: NodeId, global: Lattice) -> BlockGeom {
        assert!(
            shape.rank() <= 4,
            "lattice decomposition uses at most 4 machine axes"
        );
        let coord = shape.coord_of(node);
        let mut mdims = [1usize; 4];
        let mut mcoord = [0usize; 4];
        for a in 0..shape.rank() {
            mdims[a] = shape.extent(a);
            mcoord[a] = coord.get(a);
        }
        let gd = global.dims();
        let mut ld = [0usize; 4];
        for a in 0..4 {
            assert_eq!(
                gd[a] % mdims[a],
                0,
                "lattice extent not divisible on axis {a}"
            );
            ld[a] = gd[a] / mdims[a];
        }
        BlockGeom {
            global,
            local: Lattice::new(ld),
            mdims,
            mcoord,
        }
    }

    /// Global site index of a local site.
    pub fn global_site(&self, local_idx: usize) -> usize {
        let lc = self.local.coord(local_idx);
        let ld = self.local.dims();
        let mut gc = [0usize; 4];
        for a in 0..4 {
            gc[a] = self.mcoord[a] * ld[a] + lc[a];
        }
        self.global.index(gc)
    }

    /// Extract this node's gauge block from a global field.
    pub fn extract_gauge(&self, g: &GaugeField) -> Vec<[Su3; 4]> {
        assert_eq!(g.lattice(), self.global);
        self.local
            .sites()
            .map(|l| {
                let gsite = self.global_site(l);
                [
                    *g.link(gsite, 0),
                    *g.link(gsite, 1),
                    *g.link(gsite, 2),
                    *g.link(gsite, 3),
                ]
            })
            .collect()
    }

    /// Extract this node's fermion block from a global field.
    pub fn extract_fermion(&self, f: &FermionField) -> Vec<Spinor> {
        assert_eq!(f.lattice(), self.global);
        self.local
            .sites()
            .map(|l| *f.site(self.global_site(l)))
            .collect()
    }

    /// Number of sites on the face normal to `mu`.
    pub fn face_sites(&self, mu: usize) -> usize {
        self.local.volume() / self.local.dims()[mu]
    }

    /// Dense index of a site within the face normal to `mu` (lexicographic
    /// over the other axes, x fastest).
    pub fn face_index(&self, lc: [usize; 4], mu: usize) -> usize {
        let ld = self.local.dims();
        let mut idx = 0usize;
        for a in (0..4).rev() {
            if a == mu {
                continue;
            }
            idx = idx * ld[a] + lc[a];
        }
        idx
    }

    /// Whether hops along `mu` leave the node (machine spans the axis).
    pub fn off_node(&self, mu: usize) -> bool {
        self.mdims[mu] > 1
    }
}

/// Staging layout inside EDRAM: 16 slots (8 send + 8 receive, one per
/// signed direction), sized for the largest face, below the comm scratch.
fn staging(geom: &BlockGeom, slot: usize) -> u64 {
    let max_face = (0..4).map(|m| geom.face_sites(m)).max().unwrap() as u64;
    let slot_bytes = max_face * HALF_WORDS * 8;
    let total = 16 * slot_bytes;
    let base = COMM_SCRATCH_BASE - total;
    base + slot as u64 * slot_bytes
}

/// Pack both faces of every spanned axis into the staging slots and arm
/// all sends/receives; returns the direction lists a completion wait
/// needs. The wait itself (blocking or cooperative) is the caller's.
fn arm_face_exchange(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    psi: &[Spinor],
) -> (
    Vec<qcdoc_geometry::Direction>,
    Vec<qcdoc_geometry::Direction>,
) {
    let ld = geom.local.dims();
    let mut sends = Vec::new();
    let mut recvs = Vec::new();
    for mu in 0..4 {
        if !geom.off_node(mu) {
            continue;
        }
        let faces = geom.face_sites(mu) as u64;
        // Pack the low face (x_mu = 0): P− ψ, wanted by the −μ neighbour.
        let send_lo = staging(geom, 2 * mu);
        // Pack the high face: U†_μ (1+γ_μ) ψ, wanted by the +μ neighbour.
        let send_hi = staging(geom, 2 * mu + 1);
        for l in geom.local.sites() {
            let lc = geom.local.coord(l);
            if lc[mu] == 0 {
                let h = psi[l].project(mu, ProjSign::Minus);
                let base = send_lo + geom.face_index(lc, mu) as u64 * HALF_WORDS * 8;
                ctx.mem.write_block(base, &h.to_words()).unwrap();
            }
            if lc[mu] == ld[mu] - 1 {
                let h = psi[l]
                    .project(mu, ProjSign::Plus)
                    .adj_mul_su3(&gauge[l][mu]);
                let base = send_hi + geom.face_index(lc, mu) as u64 * HALF_WORDS * 8;
                ctx.mem.write_block(base, &h.to_words()).unwrap();
            }
        }
        let axis = Axis(mu as u8);
        // Receives: from +μ (their low face) and from −μ (their high face).
        let recv_plus = staging(geom, 8 + 2 * mu);
        let recv_minus = staging(geom, 8 + 2 * mu + 1);
        ctx.start_recv(
            axis.plus(),
            DmaDescriptor::contiguous(recv_plus, (faces * HALF_WORDS) as u32),
        );
        ctx.start_recv(
            axis.minus(),
            DmaDescriptor::contiguous(recv_minus, (faces * HALF_WORDS) as u32),
        );
        // Sends: low face toward −μ, high face toward +μ.
        ctx.start_send(
            axis.minus(),
            DmaDescriptor::contiguous(send_lo, (faces * HALF_WORDS) as u32),
        );
        ctx.start_send(
            axis.plus(),
            DmaDescriptor::contiguous(send_hi, (faces * HALF_WORDS) as u32),
        );
        sends.push(axis.plus());
        sends.push(axis.minus());
        recvs.push(axis.plus());
        recvs.push(axis.minus());
    }
    (sends, recvs)
}

/// Unpack the received half-spinor faces out of the staging slots — the
/// read-side counterpart of [`arm_face_exchange`], run after completion.
#[allow(clippy::type_complexity)]
fn unpack_faces(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
) -> ([Vec<HalfSpinor>; 4], [Vec<HalfSpinor>; 4]) {
    let mut from_plus: [Vec<HalfSpinor>; 4] = Default::default();
    let mut from_minus: [Vec<HalfSpinor>; 4] = Default::default();
    for mu in 0..4 {
        if !geom.off_node(mu) {
            continue;
        }
        let faces = geom.face_sites(mu);
        let recv_plus = staging(geom, 8 + 2 * mu);
        let recv_minus = staging(geom, 8 + 2 * mu + 1);
        for f in 0..faces {
            let wp: Vec<u64> = ctx
                .mem
                .read_block(recv_plus + f as u64 * HALF_WORDS * 8, 24)
                .unwrap();
            let wm: Vec<u64> = ctx
                .mem
                .read_block(recv_minus + f as u64 * HALF_WORDS * 8, 24)
                .unwrap();
            from_plus[mu].push(HalfSpinor::from_words(&wp.try_into().unwrap()));
            from_minus[mu].push(HalfSpinor::from_words(&wm.try_into().unwrap()));
        }
    }
    (from_plus, from_minus)
}

/// Exchange all faces of `psi`: returns, per axis, the half-spinors
/// arriving from the +μ neighbour (their projected low face) and from the
/// −μ neighbour (their `U†(1+γ)ψ` high face). Axes the machine does not
/// span return empty vectors.
pub fn exchange_faces(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    psi: &[Spinor],
) -> ([Vec<HalfSpinor>; 4], [Vec<HalfSpinor>; 4]) {
    let (sends, recvs) = arm_face_exchange(ctx, geom, gauge, psi);
    ctx.complete(&sends, &recvs);
    unpack_faces(ctx, geom)
}

/// Cooperative form of [`exchange_faces`] for the sharded engine: the same
/// packing, arming and unpacking code, only the wait yields.
pub async fn exchange_faces_async(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    psi: &[Spinor],
) -> ([Vec<HalfSpinor>; 4], [Vec<HalfSpinor>; 4]) {
    let (sends, recvs) = arm_face_exchange(ctx, geom, gauge, psi);
    ctx.complete_async(&sends, &recvs).await;
    unpack_faces(ctx, geom)
}

/// The site loop of the Wilson hopping term, shared verbatim by the
/// blocking and cooperative entry points: per site, for each μ, forward
/// project → SU(3) multiply → reconstruct, then backward — the exact
/// order the single-node reference uses, so both engines stay bitwise
/// identical to it.
fn dslash_compute(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    psi: &[Spinor],
    from_plus: &[Vec<HalfSpinor>; 4],
    from_minus: &[Vec<HalfSpinor>; 4],
) -> Vec<Spinor> {
    let token = ctx.telem.begin();
    let local = geom.local;
    let ld = local.dims();
    let mut out = vec![Spinor::ZERO; local.volume()];
    for l in local.sites() {
        let lc = local.coord(l);
        let mut acc = Spinor::ZERO;
        for mu in 0..4 {
            // Forward hop: U_mu(x) (1-gamma) psi(x+mu).
            let hf = if geom.off_node(mu) && lc[mu] == ld[mu] - 1 {
                from_plus[mu][geom.face_index(lc, mu)]
            } else {
                let xf = local.neighbour(l, mu, true);
                psi[xf].project(mu, ProjSign::Minus)
            };
            acc += Spinor::reconstruct(&hf.mul_su3(&gauge[l][mu]), mu, ProjSign::Minus);
            // Backward hop: U_mu(x-mu)^dag (1+gamma) psi(x-mu).
            let hb = if geom.off_node(mu) && lc[mu] == 0 {
                from_minus[mu][geom.face_index(lc, mu)]
            } else {
                let xb = local.neighbour(l, mu, false);
                psi[xb]
                    .project(mu, ProjSign::Plus)
                    .adj_mul_su3(&gauge[xb][mu])
            };
            acc += Spinor::reconstruct(&hb, mu, ProjSign::Plus);
        }
        out[l] = acc;
    }
    ctx.telem
        .advance(compute_cycles(local.volume(), WILSON_FLOPS_PER_SITE));
    ctx.telem.end_with(
        token,
        "dslash.compute",
        Phase::Compute,
        local.volume() as u64,
    );
    ctx.telem.counter_add("dslash_applications", 1);
    out
}

/// Distributed Wilson hopping term on this node's block.
pub fn dslash_local(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    psi: &[Spinor],
) -> Vec<Spinor> {
    let (from_plus, from_minus) = exchange_faces(ctx, geom, gauge, psi);
    dslash_compute(ctx, geom, gauge, psi, &from_plus, &from_minus)
}

/// Cooperative form of [`dslash_local`] for the sharded engine.
pub async fn dslash_local_async(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    psi: &[Spinor],
) -> Vec<Spinor> {
    let (from_plus, from_minus) = exchange_faces_async(ctx, geom, gauge, psi).await;
    dslash_compute(ctx, geom, gauge, psi, &from_plus, &from_minus)
}

/// `M ψ` from an already-exchanged hopping term: the κ recurrence shared
/// by the blocking and cooperative operator entry points.
fn wilson_combine(hop: Vec<Spinor>, psi: &[Spinor], kappa: f64) -> Vec<Spinor> {
    let mut out = hop;
    let mk = C64::real(-kappa);
    for (o, p) in out.iter_mut().zip(psi) {
        *o = p.axpy(mk, o);
    }
    out
}

/// Distributed Wilson operator `M = 1 − κ D`.
pub fn wilson_apply(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    psi: &[Spinor],
    kappa: f64,
) -> Vec<Spinor> {
    wilson_combine(dslash_local(ctx, geom, gauge, psi), psi, kappa)
}

/// Cooperative form of [`wilson_apply`] for the sharded engine.
pub async fn wilson_apply_async(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    psi: &[Spinor],
    kappa: f64,
) -> Vec<Spinor> {
    wilson_combine(dslash_local_async(ctx, geom, gauge, psi).await, psi, kappa)
}

/// Distributed `M† = γ₅ M γ₅`.
pub fn wilson_apply_dagger(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    psi: &[Spinor],
    kappa: f64,
) -> Vec<Spinor> {
    let g5: Vec<Spinor> = psi.iter().map(|s| s.apply_gamma5()).collect();
    let mid = wilson_apply(ctx, geom, gauge, &g5, kappa);
    mid.iter().map(|s| s.apply_gamma5()).collect()
}

/// Cooperative form of [`wilson_apply_dagger`] for the sharded engine.
pub async fn wilson_apply_dagger_async(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    psi: &[Spinor],
    kappa: f64,
) -> Vec<Spinor> {
    let g5: Vec<Spinor> = psi.iter().map(|s| s.apply_gamma5()).collect();
    let mid = wilson_apply_async(ctx, geom, gauge, &g5, kappa).await;
    mid.iter().map(|s| s.apply_gamma5()).collect()
}

/// Block vector helpers with machine-wide reductions.
fn axpy(x: &mut [Spinor], a: f64, y: &[Spinor]) {
    let ac = C64::real(a);
    for (xi, yi) in x.iter_mut().zip(y) {
        *xi = xi.axpy(ac, yi);
    }
}

fn xpay(p: &mut [Spinor], a: f64, r: &[Spinor]) {
    let ac = C64::real(a);
    for (pi, ri) in p.iter_mut().zip(r) {
        *pi = ri.axpy(ac, pi);
    }
}

fn local_norm_sqr(x: &[Spinor]) -> f64 {
    x.iter().map(|s| s.norm_sqr()).sum()
}

fn local_dot_re(x: &[Spinor], y: &[Spinor]) -> f64 {
    x.iter().zip(y).map(|(a, b)| a.dot(b).re).sum()
}

/// Result of a distributed CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DistCgReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub final_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Link-level rejects this node observed (0 on a clean run).
    pub link_errors: u64,
}

/// Distributed CGNE for the Wilson operator: solves `M x = b`; `x` starts
/// zero. The two inner products per iteration are machine-wide
/// dimension-ordered global sums — the operations §2.2's hardware global
/// mode exists for.
pub fn wilson_solve_cg(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    b: &[Spinor],
    kappa: f64,
    tolerance: f64,
    max_iterations: usize,
) -> (Vec<Spinor>, DistCgReport) {
    let n = b.len();
    let mut x = vec![Spinor::ZERO; n];
    // r = M† b (x0 = 0).
    let mut r = wilson_apply_dagger(ctx, geom, gauge, b, kappa);
    let bref = global_sum_f64(ctx, local_norm_sqr(&r)).max(f64::MIN_POSITIVE);
    let mut p = r.clone();
    let mut rsq = global_sum_f64(ctx, local_norm_sqr(&r));
    let mut iterations = 0;
    let mut converged = (rsq / bref).sqrt() <= tolerance;
    while !converged && iterations < max_iterations {
        let t = wilson_apply(ctx, geom, gauge, &p, kappa);
        let q = wilson_apply_dagger(ctx, geom, gauge, &t, kappa);
        let pq = global_sum_f64(ctx, local_dot_re(&p, &q));
        if pq <= 0.0 {
            break;
        }
        let alpha = rsq / pq;
        axpy(&mut x, alpha, &p);
        axpy(&mut r, -alpha, &q);
        let new_rsq = global_sum_f64(ctx, local_norm_sqr(&r));
        iterations += 1;
        converged = (new_rsq / bref).sqrt() <= tolerance;
        let beta = new_rsq / rsq;
        xpay(&mut p, beta, &r);
        rsq = new_rsq;
        ctx.telem.counter_add("cg_iterations", 1);
    }
    ctx.telem
        .gauge_set("cg_final_residual", (rsq / bref).sqrt());
    ctx.telem
        .gauge_set("cg_converged", if converged { 1.0 } else { 0.0 });
    let report = DistCgReport {
        iterations,
        final_residual: (rsq / bref).sqrt(),
        converged,
        link_errors: ctx.link_errors(),
    };
    (x, report)
}

/// Cooperative form of [`wilson_solve_cg`] for the sharded engine. The
/// recurrence is line-for-line the blocking solver's — same operator
/// applications, same dimension-ordered reductions in the same order — so
/// the two engines produce bit-identical solutions.
pub async fn wilson_solve_cg_async(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    b: &[Spinor],
    kappa: f64,
    tolerance: f64,
    max_iterations: usize,
) -> (Vec<Spinor>, DistCgReport) {
    let n = b.len();
    let mut x = vec![Spinor::ZERO; n];
    let mut r = wilson_apply_dagger_async(ctx, geom, gauge, b, kappa).await;
    let bref = global_sum_f64_async(ctx, local_norm_sqr(&r))
        .await
        .max(f64::MIN_POSITIVE);
    let mut p = r.clone();
    let mut rsq = global_sum_f64_async(ctx, local_norm_sqr(&r)).await;
    let mut iterations = 0;
    let mut converged = (rsq / bref).sqrt() <= tolerance;
    while !converged && iterations < max_iterations {
        let t = wilson_apply_async(ctx, geom, gauge, &p, kappa).await;
        let q = wilson_apply_dagger_async(ctx, geom, gauge, &t, kappa).await;
        let pq = global_sum_f64_async(ctx, local_dot_re(&p, &q)).await;
        if pq <= 0.0 {
            break;
        }
        let alpha = rsq / pq;
        axpy(&mut x, alpha, &p);
        axpy(&mut r, -alpha, &q);
        let new_rsq = global_sum_f64_async(ctx, local_norm_sqr(&r)).await;
        iterations += 1;
        converged = (new_rsq / bref).sqrt() <= tolerance;
        let beta = new_rsq / rsq;
        xpay(&mut p, beta, &r);
        rsq = new_rsq;
        ctx.telem.counter_add("cg_iterations", 1);
    }
    ctx.telem
        .gauge_set("cg_final_residual", (rsq / bref).sqrt());
    ctx.telem
        .gauge_set("cg_converged", if converged { 1.0 } else { 0.0 });
    let report = DistCgReport {
        iterations,
        final_residual: (rsq / bref).sqrt(),
        converged,
        link_errors: ctx.link_errors(),
    };
    (x, report)
}

/// Loop-carried CG state handed into [`wilson_cg_segment`] when resuming
/// from a checkpoint: the three block vectors plus the scalar recurrence.
#[derive(Debug, Clone)]
pub struct CgResume<'a> {
    /// Solution block.
    pub x: &'a [Spinor],
    /// Residual block.
    pub r: &'a [Spinor],
    /// Search-direction block.
    pub p: &'a [Spinor],
    /// `‖r‖²` (exact bits from the checkpoint).
    pub rsq: f64,
    /// Reference scale `‖M†b‖²`.
    pub bref: f64,
    /// Iterations already completed.
    pub iterations: usize,
}

/// The state a CG segment hands back: everything needed to checkpoint or
/// continue, plus whether the segment ended by wedging on dead hardware.
#[derive(Debug, Clone)]
pub struct CgSegmentOut {
    /// Solution block after this segment.
    pub x: Vec<Spinor>,
    /// Residual block.
    pub r: Vec<Spinor>,
    /// Search-direction block.
    pub p: Vec<Spinor>,
    /// `‖r‖²` after this segment.
    pub rsq: f64,
    /// Reference scale.
    pub bref: f64,
    /// Total iterations completed (across all segments).
    pub iterations: usize,
    /// Relative residuals of the iterations this segment performed.
    pub new_residuals: Vec<f64>,
    /// Whether the tolerance is met.
    pub converged: bool,
    /// Whether this node gave up on a silent wire mid-segment; the state
    /// above is then garbage and the segment must be discarded.
    pub wedged: bool,
}

/// One bounded segment of the distributed Wilson CGNE: at most
/// `segment_iters` iterations, starting fresh (`resume = None`, exactly
/// [`wilson_solve_cg`]'s setup sequence) or from restored checkpoint
/// state. Chaining segments is **bit-identical** to one uninterrupted
/// solve — the same dimension-ordered global sums run in the same order,
/// only control returns to the caller between segments.
#[allow(clippy::too_many_arguments)]
pub fn wilson_cg_segment(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    b: &[Spinor],
    kappa: f64,
    tolerance: f64,
    max_iterations: usize,
    resume: Option<CgResume<'_>>,
    segment_iters: usize,
) -> CgSegmentOut {
    let n = b.len();
    let mut iterations;
    let (mut x, mut r, mut p, mut rsq, bref) = match resume {
        None => {
            iterations = 0;
            let x = vec![Spinor::ZERO; n];
            let r = wilson_apply_dagger(ctx, geom, gauge, b, kappa);
            let bref = global_sum_f64(ctx, local_norm_sqr(&r)).max(f64::MIN_POSITIVE);
            let p = r.clone();
            let rsq = global_sum_f64(ctx, local_norm_sqr(&r));
            (x, r, p, rsq, bref)
        }
        Some(res) => {
            iterations = res.iterations;
            (
                res.x.to_vec(),
                res.r.to_vec(),
                res.p.to_vec(),
                res.rsq,
                res.bref,
            )
        }
    };
    let mut new_residuals = Vec::new();
    let mut converged = (rsq / bref).sqrt() <= tolerance;
    let mut done_here = 0usize;
    while !ctx.wedged() && !converged && iterations < max_iterations && done_here < segment_iters {
        let t = wilson_apply(ctx, geom, gauge, &p, kappa);
        let q = wilson_apply_dagger(ctx, geom, gauge, &t, kappa);
        let pq = global_sum_f64(ctx, local_dot_re(&p, &q));
        if ctx.wedged() {
            break;
        }
        if pq <= 0.0 {
            break;
        }
        let alpha = rsq / pq;
        axpy(&mut x, alpha, &p);
        axpy(&mut r, -alpha, &q);
        let new_rsq = global_sum_f64(ctx, local_norm_sqr(&r));
        if ctx.wedged() {
            break;
        }
        iterations += 1;
        done_here += 1;
        let rel = (new_rsq / bref).sqrt();
        new_residuals.push(rel);
        converged = rel <= tolerance;
        let beta = new_rsq / rsq;
        xpay(&mut p, beta, &r);
        rsq = new_rsq;
        ctx.telem.counter_add("cg_iterations", 1);
    }
    CgSegmentOut {
        x,
        r,
        p,
        rsq,
        bref,
        iterations,
        new_residuals,
        converged,
        wedged: ctx.wedged(),
    }
}

/// Cooperative form of [`wilson_cg_segment`] for the sharded engine —
/// same recurrence, same wedge short-circuits, bit-identical chaining.
#[allow(clippy::too_many_arguments)]
pub async fn wilson_cg_segment_async(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    b: &[Spinor],
    kappa: f64,
    tolerance: f64,
    max_iterations: usize,
    resume: Option<CgResume<'_>>,
    segment_iters: usize,
) -> CgSegmentOut {
    let n = b.len();
    let mut iterations;
    let (mut x, mut r, mut p, mut rsq, bref) = match resume {
        None => {
            iterations = 0;
            let x = vec![Spinor::ZERO; n];
            let r = wilson_apply_dagger_async(ctx, geom, gauge, b, kappa).await;
            let bref = global_sum_f64_async(ctx, local_norm_sqr(&r))
                .await
                .max(f64::MIN_POSITIVE);
            let p = r.clone();
            let rsq = global_sum_f64_async(ctx, local_norm_sqr(&r)).await;
            (x, r, p, rsq, bref)
        }
        Some(res) => {
            iterations = res.iterations;
            (
                res.x.to_vec(),
                res.r.to_vec(),
                res.p.to_vec(),
                res.rsq,
                res.bref,
            )
        }
    };
    let mut new_residuals = Vec::new();
    let mut converged = (rsq / bref).sqrt() <= tolerance;
    let mut done_here = 0usize;
    while !ctx.wedged() && !converged && iterations < max_iterations && done_here < segment_iters {
        let t = wilson_apply_async(ctx, geom, gauge, &p, kappa).await;
        let q = wilson_apply_dagger_async(ctx, geom, gauge, &t, kappa).await;
        let pq = global_sum_f64_async(ctx, local_dot_re(&p, &q)).await;
        if ctx.wedged() {
            break;
        }
        if pq <= 0.0 {
            break;
        }
        let alpha = rsq / pq;
        axpy(&mut x, alpha, &p);
        axpy(&mut r, -alpha, &q);
        let new_rsq = global_sum_f64_async(ctx, local_norm_sqr(&r)).await;
        if ctx.wedged() {
            break;
        }
        iterations += 1;
        done_here += 1;
        let rel = (new_rsq / bref).sqrt();
        new_residuals.push(rel);
        converged = rel <= tolerance;
        let beta = new_rsq / rsq;
        xpay(&mut p, beta, &r);
        rsq = new_rsq;
        ctx.telem.counter_add("cg_iterations", 1);
    }
    CgSegmentOut {
        x,
        r,
        p,
        rsq,
        bref,
        iterations,
        new_residuals,
        converged,
        wedged: ctx.wedged(),
    }
}

fn pack_spinor(sp: &Spinor, out: &mut [u64]) {
    let mut i = 0;
    for s in 0..4 {
        for c in 0..3 {
            out[i] = sp.0[s].0[c].re.to_bits();
            out[i + 1] = sp.0[s].0[c].im.to_bits();
            i += 2;
        }
    }
}

fn unpack_spinor(words: &[u64]) -> Spinor {
    let mut sp = Spinor::ZERO;
    let mut i = 0;
    for s in 0..4 {
        for c in 0..3 {
            sp.0[s].0[c] = C64::new(f64::from_bits(words[i]), f64::from_bits(words[i + 1]));
            i += 2;
        }
    }
    sp
}

/// Words per spinor in a checkpoint payload (matches
/// `FermionField::to_bits`: spin-major, then color, re before im).
const SPINOR_WORDS: usize = 24;

/// Gather per-node segment outputs into one global [`CgCheckpoint`], in
/// the exact bit layout `FermionField::to_bits` uses — so the checkpoint
/// is portable across machine shapes (and down to a single-node resume).
/// `prior_residuals` carries the history from before this segment; the
/// scalars are taken from node 0 (the global sums make them identical on
/// every node).
pub fn assemble_checkpoint(
    shape: &TorusShape,
    global: Lattice,
    outs: &[CgSegmentOut],
    prior_residuals: &[f64],
) -> CgCheckpoint {
    assert_eq!(outs.len(), shape.node_count());
    let words = global.volume() * SPINOR_WORDS;
    let mut x = vec![0u64; words];
    let mut r = vec![0u64; words];
    let mut p = vec![0u64; words];
    for (node, out) in outs.iter().enumerate() {
        let geom = BlockGeom::for_node(shape, NodeId(node as u32), global);
        for l in geom.local.sites() {
            let g = geom.global_site(l) * SPINOR_WORDS;
            pack_spinor(&out.x[l], &mut x[g..g + SPINOR_WORDS]);
            pack_spinor(&out.r[l], &mut r[g..g + SPINOR_WORDS]);
            pack_spinor(&out.p[l], &mut p[g..g + SPINOR_WORDS]);
        }
    }
    let head = &outs[0];
    let mut residuals = prior_residuals.to_vec();
    residuals.extend_from_slice(&head.new_residuals);
    CgCheckpoint {
        operator: "wilson".into(),
        iterations: head.iterations,
        converged: head.converged,
        rsq: head.rsq,
        bref: head.bref,
        residuals,
        // Deterministic functions of the iteration count for the
        // distributed recurrence: one M† in setup, M and M† per iteration;
        // two setup reductions, two per iteration.
        applications: 1 + 2 * head.iterations,
        reductions: 2 + 2 * head.iterations,
        x,
        r,
        p,
    }
}

/// Extract this node's `(x, r, p)` blocks from a global checkpoint — the
/// inverse of [`assemble_checkpoint`] for an arbitrary (possibly
/// different) machine shape.
pub fn resume_blocks(
    geom: &BlockGeom,
    ckpt: &CgCheckpoint,
) -> (Vec<Spinor>, Vec<Spinor>, Vec<Spinor>) {
    assert_eq!(ckpt.x.len(), geom.global.volume() * SPINOR_WORDS);
    let mut x = Vec::with_capacity(geom.local.volume());
    let mut r = Vec::with_capacity(geom.local.volume());
    let mut p = Vec::with_capacity(geom.local.volume());
    for l in geom.local.sites() {
        let g = geom.global_site(l) * SPINOR_WORDS;
        x.push(unpack_spinor(&ckpt.x[g..g + SPINOR_WORDS]));
        r.push(unpack_spinor(&ckpt.r[g..g + SPINOR_WORDS]));
        p.push(unpack_spinor(&ckpt.p[g..g + SPINOR_WORDS]));
    }
    (x, r, p)
}

/// Distributed naive staggered dslash. Face payloads are color vectors
/// (3 complex = 6 words per site): the low face travels raw (the −μ
/// neighbour multiplies by its own fat/thin link), the high face travels
/// pre-multiplied by `U†` exactly like the Wilson backward hop.
pub fn staggered_dslash_local(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    chi: &[qcdoc_lattice::colorvec::ColorVec],
) -> Vec<qcdoc_lattice::colorvec::ColorVec> {
    use qcdoc_lattice::colorvec::ColorVec;
    use qcdoc_lattice::staggered::eta;
    const VEC_WORDS: u64 = 6;
    let ld = geom.local.dims();
    // Exchange faces (raw low face, U†-multiplied high face).
    let mut sends = Vec::new();
    let mut recvs = Vec::new();
    for mu in 0..4 {
        if !geom.off_node(mu) {
            continue;
        }
        let faces = geom.face_sites(mu) as u64;
        let send_lo = staging(geom, 2 * mu);
        let send_hi = staging(geom, 2 * mu + 1);
        for l in geom.local.sites() {
            let lc = geom.local.coord(l);
            let pack = |v: &ColorVec| -> [u64; 6] {
                let mut w = [0u64; 6];
                for c in 0..3 {
                    w[2 * c] = v.0[c].re.to_bits();
                    w[2 * c + 1] = v.0[c].im.to_bits();
                }
                w
            };
            if lc[mu] == 0 {
                let base = send_lo + geom.face_index(lc, mu) as u64 * VEC_WORDS * 8;
                ctx.mem.write_block(base, &pack(&chi[l])).unwrap();
            }
            if lc[mu] == ld[mu] - 1 {
                let v = gauge[l][mu].adj_mul_vec(&chi[l]);
                let base = send_hi + geom.face_index(lc, mu) as u64 * VEC_WORDS * 8;
                ctx.mem.write_block(base, &pack(&v)).unwrap();
            }
        }
        let axis = Axis(mu as u8);
        let recv_plus = staging(geom, 8 + 2 * mu);
        let recv_minus = staging(geom, 8 + 2 * mu + 1);
        ctx.start_recv(
            axis.plus(),
            DmaDescriptor::contiguous(recv_plus, (faces * VEC_WORDS) as u32),
        );
        ctx.start_recv(
            axis.minus(),
            DmaDescriptor::contiguous(recv_minus, (faces * VEC_WORDS) as u32),
        );
        ctx.start_send(
            axis.minus(),
            DmaDescriptor::contiguous(send_lo, (faces * VEC_WORDS) as u32),
        );
        ctx.start_send(
            axis.plus(),
            DmaDescriptor::contiguous(send_hi, (faces * VEC_WORDS) as u32),
        );
        sends.push(axis.plus());
        sends.push(axis.minus());
        recvs.push(axis.plus());
        recvs.push(axis.minus());
    }
    ctx.complete(&sends, &recvs);
    let unpack = |ctx: &mut NodeCtx, base: u64, f: usize| -> ColorVec {
        let w: Vec<u64> = ctx
            .mem
            .read_block(base + f as u64 * VEC_WORDS * 8, 6)
            .unwrap();
        let mut v = ColorVec::ZERO;
        for c in 0..3 {
            v.0[c] = C64::new(f64::from_bits(w[2 * c]), f64::from_bits(w[2 * c + 1]));
        }
        v
    };
    let token = ctx.telem.begin();
    let mut out = vec![ColorVec::ZERO; chi.len()];
    for l in geom.local.sites() {
        let lc = geom.local.coord(l);
        // Staggered phases depend on the *global* coordinate.
        let gc = geom.global.coord(geom.global_site(l));
        let mut acc = ColorVec::ZERO;
        for mu in 0..4 {
            let phase = eta(gc, mu) * 0.5;
            let fwd = if geom.off_node(mu) && lc[mu] == ld[mu] - 1 {
                unpack(ctx, staging(geom, 8 + 2 * mu), geom.face_index(lc, mu))
            } else {
                *chi.get(geom.local.neighbour(l, mu, true))
                    .expect("local site")
            };
            acc += gauge[l][mu].mul_vec(&fwd) * phase;
            let bwd = if geom.off_node(mu) && lc[mu] == 0 {
                unpack(ctx, staging(geom, 8 + 2 * mu + 1), geom.face_index(lc, mu))
            } else {
                let xb = geom.local.neighbour(l, mu, false);
                gauge[xb][mu].adj_mul_vec(&chi[xb])
            };
            acc -= bwd * phase;
        }
        out[l] = acc;
    }
    ctx.telem.advance(compute_cycles(
        geom.local.volume(),
        STAGGERED_FLOPS_PER_SITE,
    ));
    ctx.telem.end_with(
        token,
        "staggered.compute",
        Phase::Compute,
        geom.local.volume() as u64,
    );
    ctx.telem.counter_add("dslash_applications", 1);
    out
}

/// Distributed clover operator: the hopping term needs the same halo
/// exchange as Wilson; the clover term `A(x)` is strictly site-local, so
/// each node applies its own precomputed blocks. `clover` must be built on
/// the *global* gauge field (the field-strength leaves reach one site out,
/// which the global construction handles; each node then extracts its
/// sites' blocks).
pub fn clover_apply(
    ctx: &mut NodeCtx,
    geom: &BlockGeom,
    gauge: &[[Su3; 4]],
    clover: &qcdoc_lattice::clover::CloverDirac<'_>,
    psi: &[Spinor],
    kappa: f64,
) -> Vec<Spinor> {
    let hop = dslash_local(ctx, geom, gauge, psi);
    let token = ctx.telem.begin();
    let mut out = vec![Spinor::ZERO; psi.len()];
    let mk = C64::real(-kappa);
    for l in geom.local.sites() {
        let gsite = geom.global_site(l);
        let t = clover.site_term(gsite);
        // Apply the two chirality blocks (same arithmetic as the
        // single-node CloverDirac::apply_clover_term).
        let s = &psi[l];
        let mut o = Spinor::ZERO;
        for row in 0..6 {
            let (rs, rc) = (row / 3, row % 3);
            let mut up = C64::ZERO;
            let mut lo = C64::ZERO;
            for col in 0..6 {
                let (cs, cc) = (col / 3, col % 3);
                up = up.madd(t.upper[row][col], s.0[cs].0[cc]);
                lo = lo.madd(t.lower[row][col], s.0[cs + 2].0[cc]);
            }
            o.0[rs].0[rc] = up;
            o.0[rs + 2].0[rc] = lo;
        }
        out[l] = o.axpy(mk, &hop[l]);
    }
    ctx.telem
        .advance(compute_cycles(geom.local.volume(), CLOVER_FLOPS_PER_SITE));
    ctx.telem.end_with(
        token,
        "clover.compute",
        Phase::Compute,
        geom.local.volume() as u64,
    );
    out
}

/// Bitwise fingerprint of a spinor block.
pub fn block_fingerprint(block: &[Spinor]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for sp in block {
        for s in 0..4 {
            for c in 0..3 {
                for bits in [sp.0[s].0[c].re.to_bits(), sp.0[s].0[c].im.to_bits()] {
                    h ^= bits;
                    h = h.wrapping_mul(0x100000001B3);
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::{FaultEvent, FaultPlan, FunctionalMachine};
    use qcdoc_geometry::TorusShape;
    use qcdoc_lattice::wilson::WilsonDirac;

    const KAPPA: f64 = 0.12;

    fn reference_dslash(global: Lattice, gauge: &GaugeField, psi: &FermionField) -> FermionField {
        let d = WilsonDirac::new(gauge, KAPPA);
        let mut out = FermionField::zero(global);
        d.dslash(&mut out, psi);
        out
    }

    #[test]
    fn distributed_dslash_is_bitwise_identical_to_reference() {
        let global = Lattice::new([4, 4, 4, 4]);
        let gauge = GaugeField::hot(global, 314);
        let psi = FermionField::gaussian(global, 315);
        let reference = reference_dslash(global, &gauge, &psi);
        let shape = TorusShape::new(&[2, 2, 2]);
        let machine = FunctionalMachine::new(shape);
        let results = machine.run(|ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lp = geom.extract_fermion(&psi);
            let out = dslash_local(ctx, &geom, &lg, &lp);
            // Compare against the reference block, bit for bit.
            let mut identical = true;
            for l in geom.local.sites() {
                let want = reference.site(geom.global_site(l));
                for s in 0..4 {
                    for c in 0..3 {
                        identical &= out[l].0[s].0[c].re.to_bits() == want.0[s].0[c].re.to_bits()
                            && out[l].0[s].0[c].im.to_bits() == want.0[s].0[c].im.to_bits();
                    }
                }
            }
            identical
        });
        assert!(
            results.iter().all(|&ok| ok),
            "distributed dslash diverged from reference"
        );
    }

    #[test]
    fn distributed_dslash_survives_link_faults_bitwise() {
        // E7 in miniature: corrupt frames on two links; the hardware
        // resend must make the result bit-identical anyway.
        let global = Lattice::new([4, 4, 2, 2]);
        let gauge = GaugeField::hot(global, 50);
        let psi = FermionField::gaussian(global, 51);
        let reference = reference_dslash(global, &gauge, &psi);
        let plan = FaultPlan::new(0)
            .with_event(FaultEvent::bit_flip(0, 0, 3, 17))
            .with_event(FaultEvent::bit_flip(1, 1, 7, 40));
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 2])).with_faults(plan);
        let results = machine.run(|ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lp = geom.extract_fermion(&psi);
            let out = dslash_local(ctx, &geom, &lg, &lp);
            let mut identical = true;
            for l in geom.local.sites() {
                let want = reference.site(geom.global_site(l));
                for s in 0..4 {
                    for c in 0..3 {
                        identical &= out[l].0[s].0[c].re.to_bits() == want.0[s].0[c].re.to_bits();
                    }
                }
            }
            (identical, ctx.link_errors())
        });
        assert!(results.iter().all(|(ok, _)| *ok));
        let total_errors: u64 = results.iter().map(|(_, e)| e).sum();
        assert!(
            total_errors >= 2,
            "both injected faults must be detected, got {total_errors}"
        );
    }

    #[test]
    fn distributed_staggered_is_bitwise_identical_to_reference() {
        use qcdoc_lattice::field::StaggeredField;
        use qcdoc_lattice::staggered::StaggeredDirac;
        let global = Lattice::new([4, 4, 2, 2]);
        let gauge = GaugeField::hot(global, 600);
        let chi = StaggeredField::gaussian(global, 601);
        let op = StaggeredDirac::new(&gauge, 0.1);
        let mut reference = StaggeredField::zero(global);
        op.dslash(&mut reference, &chi);
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 2]));
        let results = machine.run(|ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lc: Vec<_> = geom
                .local
                .sites()
                .map(|l| *chi.site(geom.global_site(l)))
                .collect();
            let out = staggered_dslash_local(ctx, &geom, &lg, &lc);
            geom.local.sites().all(|l| {
                let want = reference.site(geom.global_site(l));
                (0..3).all(|c| {
                    out[l].0[c].re.to_bits() == want.0[c].re.to_bits()
                        && out[l].0[c].im.to_bits() == want.0[c].im.to_bits()
                })
            })
        });
        assert!(
            results.iter().all(|&ok| ok),
            "distributed staggered diverged from reference"
        );
    }

    #[test]
    fn distributed_clover_is_bitwise_identical_to_reference() {
        let global = Lattice::new([4, 4, 2, 2]);
        let gauge = GaugeField::hot(global, 500);
        let psi = FermionField::gaussian(global, 501);
        let clover = qcdoc_lattice::clover::CloverDirac::new(&gauge, KAPPA, 1.0);
        let mut reference = FermionField::zero(global);
        clover.apply(&mut reference, &psi);
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 2]));
        let results = machine.run(|ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lp = geom.extract_fermion(&psi);
            let out = clover_apply(ctx, &geom, &lg, &clover, &lp, KAPPA);
            geom.local.sites().all(|l| {
                let want = reference.site(geom.global_site(l));
                (0..4).all(|s| {
                    (0..3).all(|c| {
                        out[l].0[s].0[c].re.to_bits() == want.0[s].0[c].re.to_bits()
                            && out[l].0[s].0[c].im.to_bits() == want.0[s].0[c].im.to_bits()
                    })
                })
            })
        });
        assert!(
            results.iter().all(|&ok| ok),
            "distributed clover diverged from reference"
        );
    }

    #[test]
    fn distributed_cg_converges_and_matches_reference_solution() {
        let global = Lattice::new([4, 4, 2, 2]);
        let gauge = GaugeField::hot(global, 60);
        let b = FermionField::gaussian(global, 61);
        // Reference solve.
        let op = WilsonDirac::new(&gauge, KAPPA);
        let mut xref = FermionField::zero(global);
        let _ = qcdoc_lattice::solver::solve_cgne(
            &op,
            &mut xref,
            &b,
            qcdoc_lattice::solver::CgParams {
                tolerance: 1e-10,
                max_iterations: 5000,
            },
        );
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 2]));
        let results = machine.run(|ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lb = geom.extract_fermion(&b);
            let (x, report) = wilson_solve_cg(ctx, &geom, &lg, &lb, KAPPA, 1e-10, 5000);
            // Distance to the reference solution block.
            let mut dist = 0.0;
            let mut norm = 0.0;
            for l in geom.local.sites() {
                let want = xref.site(geom.global_site(l));
                let mut d = x[l];
                d = d.axpy(C64::real(-1.0), want);
                dist += d.norm_sqr();
                norm += want.norm_sqr();
            }
            (report, dist, norm)
        });
        for (report, dist, norm) in &results {
            assert!(
                report.converged,
                "distributed CG did not converge: {report:?}"
            );
            assert_eq!(report.link_errors, 0, "clean run must see no link errors");
            assert!(
                dist / norm < 1e-12,
                "distributed solution differs from reference: {}",
                dist / norm
            );
        }
    }

    #[test]
    fn distributed_cg_is_bit_reproducible_across_runs() {
        let global = Lattice::new([4, 2, 2, 2]);
        let gauge = GaugeField::hot(global, 70);
        let b = FermionField::gaussian(global, 71);
        let run = || {
            let machine = FunctionalMachine::new(TorusShape::new(&[2, 2]));
            machine.run(|ctx| {
                let geom = BlockGeom::new(ctx, global);
                let lg = geom.extract_gauge(&gauge);
                let lb = geom.extract_fermion(&b);
                let (x, r) = wilson_solve_cg(ctx, &geom, &lg, &lb, KAPPA, 1e-8, 2000);
                (block_fingerprint(&x), r.iterations)
            })
        };
        let a = run();
        let c = run();
        assert_eq!(a, c, "the same solve must be bit-identical across runs");
    }

    #[test]
    fn sharded_dslash_matches_thread_engine_bitwise() {
        let global = Lattice::new([4, 4, 2, 2]);
        let gauge = GaugeField::hot(global, 314);
        let psi = FermionField::gaussian(global, 315);
        let shape = TorusShape::new(&[2, 2]);
        let threaded = FunctionalMachine::new(shape.clone());
        let reference = threaded.run(|ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lp = geom.extract_fermion(&psi);
            block_fingerprint(&dslash_local(ctx, &geom, &lg, &lp))
        });
        let sharded = crate::ShardedMachine::new(shape).with_workers(2);
        let results = sharded.run(async |ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lp = geom.extract_fermion(&psi);
            block_fingerprint(&dslash_local_async(ctx, &geom, &lg, &lp).await)
        });
        assert_eq!(results, reference, "sharded dslash diverged from threaded");
    }

    #[test]
    fn sharded_cg_matches_thread_engine_bitwise() {
        // The full solve through both engines on one worker thread: same
        // iterations, same solution bits. This is the acceptance property
        // the sharded engine exists to preserve.
        let global = Lattice::new([4, 2, 2, 2]);
        let gauge = GaugeField::hot(global, 70);
        let b = FermionField::gaussian(global, 71);
        let shape = TorusShape::new(&[2, 2]);
        let threaded = FunctionalMachine::new(shape.clone());
        let reference = threaded.run(|ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lb = geom.extract_fermion(&b);
            let (x, r) = wilson_solve_cg(ctx, &geom, &lg, &lb, KAPPA, 1e-8, 2000);
            (block_fingerprint(&x), r.iterations, r.converged)
        });
        let sharded = crate::ShardedMachine::new(shape).with_workers(1);
        let results = sharded.run(async |ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lb = geom.extract_fermion(&b);
            let (x, r) = wilson_solve_cg_async(ctx, &geom, &lg, &lb, KAPPA, 1e-8, 2000).await;
            (block_fingerprint(&x), r.iterations, r.converged)
        });
        assert!(
            results.iter().all(|&(_, _, c)| c),
            "sharded CG must converge"
        );
        assert_eq!(results, reference, "sharded CG diverged from threaded");
    }

    #[test]
    fn segmented_cg_with_checkpoints_matches_the_uninterrupted_solve() {
        let global = Lattice::new([4, 2, 2, 2]);
        let gauge = GaugeField::hot(global, 70);
        let b = FermionField::gaussian(global, 71);
        let shape = TorusShape::new(&[2, 2]);
        let machine = FunctionalMachine::new(shape.clone());
        let reference = machine.run(|ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lb = geom.extract_fermion(&b);
            let (x, r) = wilson_solve_cg(ctx, &geom, &lg, &lb, KAPPA, 1e-8, 2000);
            (block_fingerprint(&x), r.iterations)
        });
        // The same solve, 7 iterations at a time, with the state passed
        // between segments through the byte-serialized checkpoint.
        let mut ckpt: Option<CgCheckpoint> = None;
        for _ in 0..100 {
            let machine = FunctionalMachine::new(shape.clone());
            let carried = ckpt.clone();
            let outs = machine.run(|ctx| {
                let geom = BlockGeom::new(ctx, global);
                let lg = geom.extract_gauge(&gauge);
                let lb = geom.extract_fermion(&b);
                match carried.as_ref() {
                    None => wilson_cg_segment(ctx, &geom, &lg, &lb, KAPPA, 1e-8, 2000, None, 7),
                    Some(k) => {
                        let (x, r, p) = resume_blocks(&geom, k);
                        let resume = CgResume {
                            x: &x,
                            r: &r,
                            p: &p,
                            rsq: k.rsq,
                            bref: k.bref,
                            iterations: k.iterations,
                        };
                        wilson_cg_segment(ctx, &geom, &lg, &lb, KAPPA, 1e-8, 2000, Some(resume), 7)
                    }
                }
            });
            assert!(outs.iter().all(|o| !o.wedged));
            let prior: Vec<f64> = ckpt.map(|k| k.residuals).unwrap_or_default();
            let next = assemble_checkpoint(&shape, global, &outs, &prior);
            // Persist through bytes each segment, like a crashed run would.
            let bytes = qcdoc_lattice::checkpoint::write_checkpoint(&next);
            let restored = qcdoc_lattice::checkpoint::read_checkpoint(&bytes).unwrap();
            assert_eq!(restored.digest(), next.digest());
            let done = outs[0].converged;
            ckpt = Some(restored);
            if done {
                for (node, out) in outs.iter().enumerate() {
                    assert_eq!(
                        (block_fingerprint(&out.x), out.iterations),
                        reference[node],
                        "segmented solve diverged on node {node}"
                    );
                }
                return;
            }
        }
        panic!("segmented solve did not converge in 100 segments");
    }
}
