//! Node-side collectives built from link transfers — the software face of
//! the SCU's global operations (§2.2, §3.3).
//!
//! The global sum follows the hardware algorithm exactly: axis by axis,
//! every node launches its current value around the ring and accumulates
//! the `N−1` values it relays, then sums the ring's contributions in
//! ascending-coordinate order. Because that order is the same on every
//! node, all nodes finish with **bitwise identical** results — the
//! property the machine-wide reproducibility test of §4 rests on. The
//! functional result is checked against the closed-form
//! [`qcdoc_scu::global::dimension_ordered_sum`] in the tests.

use crate::functional::NodeCtx;
use qcdoc_geometry::Axis;
use qcdoc_scu::dma::DmaDescriptor;
use qcdoc_telemetry::Phase;

/// Comm scratch area: the top 64 kB of EDRAM are reserved for staging
/// buffers (the application owns the rest).
pub const COMM_SCRATCH_BASE: u64 = qcdoc_asic::memory::EDRAM_SIZE - 64 * 1024;

const GSUM_SEND: u64 = COMM_SCRATCH_BASE;
const GSUM_RECV: u64 = COMM_SCRATCH_BASE + 8;

/// Dimension-ordered global sum of one `f64` per node. Every node returns
/// the same bit pattern.
pub fn global_sum_f64(ctx: &mut NodeCtx, value: f64) -> f64 {
    if !ctx.telem.is_enabled() {
        return global_sum_inner(ctx, value);
    }
    // The ring shifts inside the sum are comms on the wire, but the §4
    // decomposition charges them to the global-sum term: reclassify every
    // nested span while the sum runs.
    let token = ctx.telem.begin();
    let prev = ctx.telem.set_phase_override(Some(Phase::GlobalSum));
    let result = global_sum_inner(ctx, value);
    ctx.telem.set_phase_override(prev);
    let cycles = ctx
        .telem
        .end_with(token, "comm.global_sum", Phase::GlobalSum, 0);
    ctx.telem.counter_add("comm_global_sums", 1);
    ctx.telem.observe("comm_global_sum_cycles", cycles);
    result
}

/// Cooperative form of [`global_sum_f64`] for the sharded engine: same
/// ring algorithm, same accumulation order, same bits — only the wait
/// inside each shift yields instead of blocking.
pub async fn global_sum_f64_async(ctx: &mut NodeCtx, value: f64) -> f64 {
    if !ctx.telem.is_enabled() {
        return global_sum_inner_async(ctx, value).await;
    }
    let token = ctx.telem.begin();
    let prev = ctx.telem.set_phase_override(Some(Phase::GlobalSum));
    let result = global_sum_inner_async(ctx, value).await;
    ctx.telem.set_phase_override(prev);
    let cycles = ctx
        .telem
        .end_with(token, "comm.global_sum", Phase::GlobalSum, 0);
    ctx.telem.counter_add("comm_global_sums", 1);
    ctx.telem.observe("comm_global_sum_cycles", cycles);
    result
}

fn global_sum_inner(ctx: &mut NodeCtx, value: f64) -> f64 {
    let mut acc = value;
    let rank = ctx.shape.rank();
    for axis in 0..rank {
        let n = ctx.shape.extent(axis);
        if n <= 1 {
            continue;
        }
        let my_x = ctx.coord.get(axis);
        let mut ring = vec![0.0f64; n];
        ring[my_x] = acc;
        let mut carry = acc;
        for step in 1..n {
            ctx.mem.write_f64(GSUM_SEND, carry).unwrap();
            ctx.shift(
                Axis(axis as u8).plus(),
                DmaDescriptor::contiguous(GSUM_SEND, 1),
                DmaDescriptor::contiguous(GSUM_RECV, 1),
            );
            carry = ctx.mem.read_f64(GSUM_RECV).unwrap();
            // The value arriving at step k originated k hops in the -axis
            // direction.
            ring[(my_x + n - step) % n] = carry;
        }
        // Canonical (node-independent) accumulation order.
        acc = 0.0;
        for &v in &ring {
            acc += v;
        }
    }
    acc
}

/// The same recurrence as [`global_sum_inner`], awaiting each shift. The
/// two bodies must stay line-for-line parallel: the bit-reproducibility
/// guarantee across engines rests on identical accumulation order.
async fn global_sum_inner_async(ctx: &mut NodeCtx, value: f64) -> f64 {
    let mut acc = value;
    let rank = ctx.shape.rank();
    for axis in 0..rank {
        let n = ctx.shape.extent(axis);
        if n <= 1 {
            continue;
        }
        let my_x = ctx.coord.get(axis);
        let mut ring = vec![0.0f64; n];
        ring[my_x] = acc;
        let mut carry = acc;
        for step in 1..n {
            ctx.mem.write_f64(GSUM_SEND, carry).unwrap();
            ctx.shift_async(
                Axis(axis as u8).plus(),
                DmaDescriptor::contiguous(GSUM_SEND, 1),
                DmaDescriptor::contiguous(GSUM_RECV, 1),
            )
            .await;
            carry = ctx.mem.read_f64(GSUM_RECV).unwrap();
            ring[(my_x + n - step) % n] = carry;
        }
        acc = 0.0;
        for &v in &ring {
            acc += v;
        }
    }
    acc
}

/// Dimension-ordered global sum of a small vector of `f64`s (used for the
/// paired CG reductions).
pub fn global_sum_vec(ctx: &mut NodeCtx, values: &[f64]) -> Vec<f64> {
    values.iter().map(|&v| global_sum_f64(ctx, v)).collect()
}

/// Broadcast one 64-bit word from `root` to every node: ring relays, axis
/// by axis, exactly the hardware's dimension-ordered flood. Non-holders
/// drive the zero word (the functional stand-in for idle bytes), so a
/// broadcast *of* zero is trivially correct and any non-zero word on the
/// wire is the root's.
pub fn broadcast_u64(ctx: &mut NodeCtx, root_value: u64, root: u32) -> u64 {
    let mut value = if ctx.id.0 == root { root_value } else { 0 };
    for axis in 0..ctx.shape.rank() {
        let n = ctx.shape.extent(axis);
        if n <= 1 {
            continue;
        }
        let mut carry = value;
        for _ in 1..n {
            ctx.mem.write_word(GSUM_SEND, carry).unwrap();
            ctx.shift(
                Axis(axis as u8).plus(),
                DmaDescriptor::contiguous(GSUM_SEND, 1),
                DmaDescriptor::contiguous(GSUM_RECV, 1),
            );
            carry = ctx.mem.read_word(GSUM_RECV).unwrap();
            if carry != 0 {
                value = carry;
            }
        }
    }
    value
}

/// Cooperative form of [`broadcast_u64`] for the sharded engine.
pub async fn broadcast_u64_async(ctx: &mut NodeCtx, root_value: u64, root: u32) -> u64 {
    let mut value = if ctx.id.0 == root { root_value } else { 0 };
    for axis in 0..ctx.shape.rank() {
        let n = ctx.shape.extent(axis);
        if n <= 1 {
            continue;
        }
        let mut carry = value;
        for _ in 1..n {
            ctx.mem.write_word(GSUM_SEND, carry).unwrap();
            ctx.shift_async(
                Axis(axis as u8).plus(),
                DmaDescriptor::contiguous(GSUM_SEND, 1),
                DmaDescriptor::contiguous(GSUM_RECV, 1),
            )
            .await;
            carry = ctx.mem.read_word(GSUM_RECV).unwrap();
            if carry != 0 {
                value = carry;
            }
        }
    }
    value
}

/// Barrier: a throwaway global sum (every node must contribute before any
/// node can finish).
pub fn barrier(ctx: &mut NodeCtx) {
    let _ = global_sum_f64(ctx, 0.0);
}

/// Cooperative form of [`barrier`] for the sharded engine.
pub async fn barrier_async(ctx: &mut NodeCtx) {
    let _ = global_sum_f64_async(ctx, 0.0).await;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::FunctionalMachine;
    use qcdoc_geometry::TorusShape;
    use qcdoc_scu::global::{all_nodes_agree, dimension_ordered_sum};

    #[test]
    fn global_sum_matches_closed_form_bitwise() {
        let shape = TorusShape::new(&[4, 2, 2]);
        let values: Vec<f64> = (0..16)
            .map(|i| 1.0e15 / (i as f64 + 1.0) + 1e-3 * i as f64)
            .collect();
        let expected = dimension_ordered_sum(&shape, &values);
        let machine = FunctionalMachine::new(shape);
        let results = machine.run(|ctx| {
            global_sum_f64(ctx, {
                let i = ctx.id.0 as usize;
                1.0e15 / (i as f64 + 1.0) + 1e-3 * i as f64
            })
        });
        assert!(all_nodes_agree(&results), "nodes disagree: {results:?}");
        for (got, want) in results.iter().zip(&expected) {
            assert_eq!(got.to_bits(), want.to_bits(), "functional vs closed form");
        }
    }

    #[test]
    fn global_sum_is_the_true_sum_for_exact_values() {
        let shape = TorusShape::new(&[2, 2, 2]);
        let machine = FunctionalMachine::new(shape);
        let results = machine.run(|ctx| global_sum_f64(ctx, ctx.id.0 as f64 + 1.0));
        // 1 + 2 + ... + 8 = 36 exactly.
        assert!(results.iter().all(|&r| r == 36.0), "{results:?}");
    }

    #[test]
    fn global_sum_on_ring() {
        let machine = FunctionalMachine::new(TorusShape::new(&[8]));
        let results = machine.run(|ctx| global_sum_f64(ctx, 2.0f64.powi(ctx.id.0 as i32)));
        assert!(results.iter().all(|&r| r == 255.0), "{results:?}");
    }

    #[test]
    fn barrier_completes() {
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 2]));
        let results = machine.run(|ctx| {
            barrier(ctx);
            true
        });
        assert_eq!(results, vec![true; 4]);
    }

    #[test]
    fn broadcast_reaches_every_node() {
        let machine = FunctionalMachine::new(TorusShape::new(&[4, 2]));
        let results = machine.run(|ctx| broadcast_u64(ctx, 0xABCD_EF01, 5));
        assert!(
            results.iter().all(|&r| r == 0xABCD_EF01),
            "broadcast failed: {results:x?}"
        );
    }

    #[test]
    fn sharded_global_sum_matches_thread_engine_bitwise() {
        // The same awkward (rounding-sensitive) values through both
        // engines: every node of both runs must produce the same bits,
        // and they must equal the closed form.
        let shape = TorusShape::new(&[4, 2, 2]);
        let value = |i: usize| 1.0e15 / (i as f64 + 1.0) + 1e-3 * i as f64;
        let values: Vec<f64> = (0..16).map(value).collect();
        let expected = dimension_ordered_sum(&shape, &values);
        let sharded = crate::ShardedMachine::new(shape.clone()).with_workers(3);
        let s_results =
            sharded.run(async |ctx| global_sum_f64_async(ctx, value(ctx.id.0 as usize)).await);
        let threaded = FunctionalMachine::new(shape);
        let t_results = threaded.run(|ctx| global_sum_f64(ctx, value(ctx.id.0 as usize)));
        assert!(all_nodes_agree(&s_results));
        for ((s, t), want) in s_results.iter().zip(&t_results).zip(&expected) {
            assert_eq!(s.to_bits(), t.to_bits(), "sharded vs threaded");
            assert_eq!(s.to_bits(), want.to_bits(), "sharded vs closed form");
        }
    }

    #[test]
    fn sharded_broadcast_and_barrier() {
        let machine = crate::ShardedMachine::new(TorusShape::new(&[4, 2])).with_workers(2);
        let results = machine.run(async |ctx| {
            barrier_async(ctx).await;
            broadcast_u64_async(ctx, 0xABCD_EF01, 5).await
        });
        assert!(results.iter().all(|&r| r == 0xABCD_EF01), "{results:x?}");
    }

    #[test]
    fn vector_sum_sums_each_component() {
        let machine = FunctionalMachine::new(TorusShape::new(&[4]));
        let results = machine.run(|ctx| global_sum_vec(ctx, &[1.0, ctx.id.0 as f64]));
        for r in &results {
            assert_eq!(r[0], 4.0);
            assert_eq!(r[1], 6.0); // 0+1+2+3
        }
    }
}
