//! Quarantine-and-resume orchestration: segment a run, watch the health
//! ledger, repartition around broken hardware, and continue from the last
//! checkpoint.
//!
//! This is the software shape of the paper's operating story: the
//! Ethernet/JTAG diagnostics network "allows the host computer to
//! diagnose any fault" while the partitioned torus lets an operator carve
//! the faulty daughterboard out and keep the campaign going. Here the
//! host is [`run_with_recovery`](crate::FunctionalMachine::run_with_recovery):
//! it runs the application one bounded *segment* at a time, sweeps the
//! [`HealthLedger`] after each, and on evidence of hardware failure
//! discards the tainted segment, asks a planner for a replacement
//! partition, and re-runs the segment from checkpointed state. With a
//! deterministic application (checkpoints carry exact bits, global sums
//! are dimension-ordered), the recovered run is **bit-identical** to one
//! that never faulted — the property `tests/recovery.rs` proves end to
//! end.

use crate::functional::{FaultPlan, FunctionalMachine, HealthLedger, NodeCtx};
use crate::sharded::ShardedMachine;
use qcdoc_geometry::TorusShape;
use qcdoc_telemetry::{MetricsRegistry, NodeTelemetry, Phase, Span};

/// Knobs for the recovery controller.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Maximum repartitions before the run is abandoned. Each recovery
    /// costs one discarded segment, so this bounds the wasted work.
    pub max_recoveries: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { max_recoveries: 4 }
    }
}

/// A replacement fabric proposed by the planner after a quarantine.
#[derive(Debug, Clone)]
pub struct Replacement {
    /// Logical shape of the replacement partition.
    pub shape: TorusShape,
    /// Machine faults translated into the replacement's logical ranks.
    pub faults: FaultPlan,
    /// Whether the replacement is smaller than the original request
    /// (graceful degradation: no spare of the full size was available).
    pub degraded: bool,
}

/// What the reduction step decides after a clean segment.
pub enum SegmentVerdict<S, T> {
    /// Not finished: checkpoint this state and run another segment.
    Continue(S),
    /// The application completed with this result.
    Done(T),
}

/// Why a recovered run gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The recovery budget ran out with hardware still failing.
    Exhausted {
        /// Repartitions performed before giving up.
        recoveries: usize,
    },
    /// The planner found no replacement partition (no spares, and
    /// degradation disallowed or impossible).
    Unreplaceable,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Exhausted { recoveries } => {
                write!(
                    f,
                    "recovery budget exhausted after {recoveries} repartitions"
                )
            }
            RecoveryError::Unreplaceable => write!(f, "no replacement partition available"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What a recovered run went through, with the controller's own
/// cycle-stamped spans and counters for the telemetry exporters.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Clean segments reduced into the result.
    pub segments: usize,
    /// Repartitions performed.
    pub recoveries: usize,
    /// Whether the run finished on a degraded (smaller) partition.
    pub degraded: bool,
    /// Controller counters (`recovery_*`).
    pub metrics: MetricsRegistry,
    /// One `recovery.segment` span per attempt, one `recovery.repartition`
    /// span per quarantine.
    pub spans: Vec<Span>,
}

/// What the recovery controller needs from an execution engine: run one
/// segment under health surveillance, expose the current shape, and swap
/// the fabric for a replacement. Both engines implement it, so a single
/// controller body serves thread-per-node and sharded runs — they cannot
/// drift apart.
trait RecoverableMachine {
    fn current_shape(&self) -> &TorusShape;
    fn swap_fabric(&mut self, shape: TorusShape, faults: FaultPlan);
}

impl RecoverableMachine for FunctionalMachine {
    fn current_shape(&self) -> &TorusShape {
        self.shape()
    }
    fn swap_fabric(&mut self, shape: TorusShape, faults: FaultPlan) {
        self.replace_fabric(shape, faults);
    }
}

impl RecoverableMachine for ShardedMachine {
    fn current_shape(&self) -> &TorusShape {
        self.shape()
    }
    fn swap_fabric(&mut self, shape: TorusShape, faults: FaultPlan) {
        self.replace_fabric(shape, faults);
    }
}

/// The engine-agnostic quarantine-and-resume loop behind both
/// `run_with_recovery` entry points.
fn recovery_loop<M, S, T, R, G, H>(
    machine: &mut M,
    cfg: RecoveryConfig,
    initial: S,
    run_segment: impl Fn(&M, &S) -> (Vec<R>, HealthLedger),
    mut reduce: G,
    mut replan: H,
) -> Result<(T, RecoveryReport), RecoveryError>
where
    M: RecoverableMachine,
    G: FnMut(&TorusShape, Vec<R>) -> SegmentVerdict<S, T>,
    H: FnMut(&HealthLedger) -> Option<Replacement>,
{
    let mut telem = NodeTelemetry::with_ring(0, 4096);
    let mut state = initial;
    let mut segments = 0usize;
    let mut recoveries = 0usize;
    let mut degraded = false;
    loop {
        let token = telem.begin();
        let (results, ledger) = run_segment(machine, &state);
        telem.advance(1);
        telem.end_with(token, "recovery.segment", Phase::Host, 1);
        if ledger.unhealthy_nodes().is_empty() {
            segments += 1;
            telem.counter_add("recovery_segments", 1);
            match reduce(machine.current_shape(), results) {
                SegmentVerdict::Done(result) => {
                    telem.gauge_set("recovery_degraded", if degraded { 1.0 } else { 0.0 });
                    let (metrics, spans) = telem.take_parts();
                    return Ok((
                        result,
                        RecoveryReport {
                            segments,
                            recoveries,
                            degraded,
                            metrics,
                            spans,
                        },
                    ));
                }
                SegmentVerdict::Continue(next) => {
                    state = next;
                    telem.counter_add("recovery_checkpoint_writes", 1);
                }
            }
        } else {
            // Tainted segment: drop the results on the floor.
            drop(results);
            if recoveries >= cfg.max_recoveries {
                return Err(RecoveryError::Exhausted { recoveries });
            }
            let token = telem.begin();
            telem.counter_add(
                "recovery_quarantines",
                ledger.culprit_nodes().len().max(1) as u64,
            );
            let Some(replacement) = replan(&ledger) else {
                return Err(RecoveryError::Unreplaceable);
            };
            recoveries += 1;
            degraded |= replacement.degraded;
            machine.swap_fabric(replacement.shape, replacement.faults);
            telem.counter_add("recovery_repartitions", 1);
            telem.counter_add("recovery_checkpoint_restores", 1);
            telem.advance(1);
            telem.end_with(token, "recovery.repartition", Phase::Host, 1);
        }
    }
}

impl FunctionalMachine {
    /// Run `app` in bounded segments with quarantine-and-resume recovery.
    ///
    /// Each round runs `app(ctx, &state)` on every node of the current
    /// fabric and sweeps the health ledger. A clean sweep hands the
    /// per-node results to `reduce`, which either finishes the run
    /// ([`SegmentVerdict::Done`]) or yields the next checkpointed state.
    /// On evidence of failure the tainted results are **discarded**,
    /// `replan` proposes a replacement fabric (quarantining culprits on
    /// the host side), and the same state — the last good checkpoint —
    /// re-runs on the new fabric. `app` must therefore be a deterministic
    /// function of `(ctx.shape, state)`; everything it learned during a
    /// tainted segment is forgotten.
    pub fn run_with_recovery<S, T, R, F, G, H>(
        mut self,
        cfg: RecoveryConfig,
        initial: S,
        app: F,
        reduce: G,
        replan: H,
    ) -> Result<(T, RecoveryReport), RecoveryError>
    where
        S: Sync,
        R: Send,
        F: Fn(&mut NodeCtx, &S) -> R + Sync,
        G: FnMut(&TorusShape, Vec<R>) -> SegmentVerdict<S, T>,
        H: FnMut(&HealthLedger) -> Option<Replacement>,
    {
        recovery_loop(
            &mut self,
            cfg,
            initial,
            |machine, state| machine.run_with_health(|ctx| app(ctx, state)),
            reduce,
            replan,
        )
    }
}

impl ShardedMachine {
    /// Quarantine-and-resume recovery on the sharded engine — the same
    /// controller as [`FunctionalMachine::run_with_recovery`] (identical
    /// segment/ledger/repartition semantics and telemetry), driving an
    /// async node program.
    pub fn run_with_recovery<S, T, R, F, G, H>(
        mut self,
        cfg: RecoveryConfig,
        initial: S,
        app: F,
        reduce: G,
        replan: H,
    ) -> Result<(T, RecoveryReport), RecoveryError>
    where
        S: Sync,
        R: Send,
        F: AsyncFn(&mut NodeCtx, &S) -> R + Sync,
        G: FnMut(&TorusShape, Vec<R>) -> SegmentVerdict<S, T>,
        H: FnMut(&HealthLedger) -> Option<Replacement>,
    {
        recovery_loop(
            &mut self,
            cfg,
            initial,
            |machine, state| machine.run_with_health(async |ctx| app(ctx, state).await),
            reduce,
            replan,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::FaultEvent;
    use qcdoc_geometry::Axis;
    use qcdoc_scu::dma::DmaDescriptor;

    fn ring4() -> TorusShape {
        TorusShape::new(&[4])
    }

    /// One segment of a toy application: every node shifts its rank one
    /// hop +x and returns what arrived.
    fn shift_app(ctx: &mut NodeCtx, _state: &usize) -> u64 {
        ctx.mem.write_word(0x100, 1000 + ctx.id.0 as u64).unwrap();
        ctx.shift(
            Axis(0).plus(),
            DmaDescriptor::contiguous(0x100, 1),
            DmaDescriptor::contiguous(0x200, 1),
        );
        ctx.mem.read_word(0x200).unwrap()
    }

    #[test]
    fn faulty_segment_is_discarded_and_rerun_on_the_replacement() {
        let plan = FaultPlan::new(0).with_event(FaultEvent::dead_link(1, 0, 0));
        let machine = FunctionalMachine::new(ring4())
            .with_faults(plan)
            .with_wedge_timeout(2_000);
        let (rounds, report) = machine
            .run_with_recovery(
                RecoveryConfig::default(),
                0usize,
                shift_app,
                |_, results: Vec<u64>| {
                    // A tainted segment must never reach this reducer with
                    // garbage: the shift pattern must hold exactly.
                    assert_eq!(results, vec![1003, 1000, 1001, 1002]);
                    SegmentVerdict::Done(results.len())
                },
                |ledger| {
                    assert!(ledger.unhealthy_nodes().contains(&1));
                    // "Swap the daughterboard": same shape, clean plan.
                    Some(Replacement {
                        shape: ring4(),
                        faults: FaultPlan::default(),
                        degraded: false,
                    })
                },
            )
            .expect("recovery must succeed");
        assert_eq!(rounds, 4);
        assert_eq!(report.segments, 1);
        assert_eq!(report.recoveries, 1);
        assert!(!report.degraded);
        assert_eq!(report.metrics.counter("recovery_repartitions", &[]), 1);
        assert_eq!(
            report.metrics.counter("recovery_checkpoint_restores", &[]),
            1
        );
        assert!(report.spans.iter().any(|s| s.name == "recovery.segment"));
        assert!(report
            .spans
            .iter()
            .any(|s| s.name == "recovery.repartition"));
    }

    #[test]
    fn multi_segment_state_threads_through_checkpoints() {
        let machine = FunctionalMachine::new(ring4());
        let (total, report) = machine
            .run_with_recovery(
                RecoveryConfig::default(),
                0usize,
                shift_app,
                |_, results: Vec<u64>| {
                    // Static counter via the state: three segments, then done.
                    static ROUND: std::sync::atomic::AtomicUsize =
                        std::sync::atomic::AtomicUsize::new(0);
                    let r = ROUND.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                    if r < 3 {
                        SegmentVerdict::Continue(r)
                    } else {
                        SegmentVerdict::Done(results.iter().sum::<u64>())
                    }
                },
                |_| None,
            )
            .expect("clean run needs no recovery");
        assert_eq!(total, 1000 + 1001 + 1002 + 1003);
        assert_eq!(report.segments, 3);
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.metrics.counter("recovery_checkpoint_writes", &[]), 2);
    }

    #[test]
    fn unreplaceable_fault_surfaces_as_an_error() {
        let plan = FaultPlan::new(0).with_event(FaultEvent::dead_link(1, 0, 0));
        let machine = FunctionalMachine::new(ring4())
            .with_faults(plan)
            .with_wedge_timeout(2_000);
        let err = machine
            .run_with_recovery(
                RecoveryConfig::default(),
                0usize,
                shift_app,
                |_, _: Vec<u64>| SegmentVerdict::Done(()),
                |_| None,
            )
            .unwrap_err();
        assert_eq!(err, RecoveryError::Unreplaceable);
    }

    #[test]
    fn recovery_budget_exhausts_deterministically() {
        let bad_plan = || FaultPlan::new(0).with_event(FaultEvent::dead_link(1, 0, 0));
        let machine = FunctionalMachine::new(ring4())
            .with_faults(bad_plan())
            .with_wedge_timeout(1_000);
        let err = machine
            .run_with_recovery(
                RecoveryConfig { max_recoveries: 2 },
                0usize,
                shift_app,
                |_, _: Vec<u64>| SegmentVerdict::Done(()),
                // A "replacement" that is just as broken: the budget must
                // stop the loop.
                move |_| {
                    Some(Replacement {
                        shape: ring4(),
                        faults: bad_plan(),
                        degraded: false,
                    })
                },
            )
            .unwrap_err();
        assert_eq!(err, RecoveryError::Exhausted { recoveries: 2 });
    }
}
