//! The integrated QCDOC machine: execution engines and the performance
//! model that regenerates the paper's evaluation.
//!
//! * [`config`] — machine configuration: 6-D shape, node parameters, link
//!   timing;
//! * [`functional`] — the thread-per-node engine: every node is an OS
//!   thread running the real SCU link protocol over channels; used for
//!   correctness, bit-reproducibility and fault-injection experiments at
//!   small machine sizes;
//! * [`sharded`] — the sharded engine: the same per-node state driven as
//!   cooperative futures multiplexed onto a few worker threads, lifting
//!   the thread-per-node ceiling so the functional protocol stack runs at
//!   the paper's full 12,288-node scale;
//! * [`comm`] — the node-side communications API (the §3.3 "message
//!   passing API that directly reflects the underlying hardware"),
//!   including dimension-ordered global sums built from link transfers;
//! * [`distributed`] — lattice QCD distributed over the functional
//!   machine: halo exchange of spin-projected faces by SCU DMA, verified
//!   bit-for-bit against the single-node operators;
//! * [`des`] — a discrete-event timing engine: validates the analytic
//!   model and reproduces the self-synchronization behaviour of §2.2;
//! * [`perf`] — the calibrated analytic timing model that reproduces §4's
//!   sustained-efficiency figures (40% Wilson / 38% ASQTAD / 46.5% clover
//!   at 4⁴ local volume, ~30% when spilling to DDR);
//! * [`baseline`] — the commodity-cluster comparison the paper argues
//!   against (5–10 µs message start-up), for the hard-scaling experiment;
//! * [`recovery`] — quarantine-and-resume orchestration: segmented runs,
//!   health-ledger sweeps, repartition around broken hardware, and
//!   bit-identical resume from checkpointed state.

#![warn(missing_docs)]

pub mod baseline;
pub mod comm;
pub mod config;
pub mod des;
pub mod distributed;
pub mod functional;
pub mod perf;
pub mod recovery;
pub mod sharded;

pub use config::MachineConfig;
pub use functional::FunctionalMachine;
pub use perf::{DiracPerf, EfficiencyReport, Precision};
pub use recovery::{RecoveryConfig, RecoveryError, RecoveryReport, Replacement, SegmentVerdict};
pub use sharded::ShardedMachine;
