//! The commodity-cluster baseline — the comparison the paper's whole
//! architecture argument rests on.
//!
//! §1: "commercial cluster solutions have limitations for QCD, since one
//! cannot achieve the required low-latency communications with commodity
//! hardware"; §2.2 quantifies it: "times of 5-10 µs just to begin a
//! transfer when using standard networks like Ethernet." This model gives
//! a cluster node the *same* floating-point and memory system as a QCDOC
//! node (isolating the network), but routes all eight face exchanges and
//! the global reductions through a single Ethernet NIC with the quoted
//! start-up latency — no concurrent links, no hardware global tree, no
//! overlap (early-2000s blocking MPI).

use crate::perf::{issue_density, Calibration, DiracPerf, Precision};
use qcdoc_asic::edram::PORT_BYTES_PER_CYCLE;
use qcdoc_asic::memory::EDRAM_SIZE;
use qcdoc_lattice::counts::{cg_linear_algebra_counts, operator_counts, Action};
use qcdoc_scu::timing::EthernetBaseline;
use serde::{Deserialize, Serialize};

/// The cluster performance model.
#[derive(Debug, Clone)]
pub struct ClusterPerf {
    /// Same workload/geometry description as the QCDOC model.
    pub perf: DiracPerf,
    /// The commodity network.
    pub network: EthernetBaseline,
}

/// A cluster efficiency result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Sustained fraction of node peak.
    pub efficiency: f64,
    /// Time per CG iteration in microseconds.
    pub iteration_us: f64,
    /// Fraction of iteration time spent in the network.
    pub network_fraction: f64,
}

impl ClusterPerf {
    /// A cluster matching the given QCDOC workload description.
    pub fn matching(perf: &DiracPerf) -> ClusterPerf {
        ClusterPerf {
            perf: perf.clone(),
            network: EthernetBaseline::default(),
        }
    }

    /// Evaluate the cluster model for one action.
    pub fn evaluate(&self, action: Action) -> ClusterReport {
        let p = &self.perf;
        let cal: Calibration = p.calibration;
        let sites = p.local_sites() as f64;
        let op = operator_counts(action);
        let la = cg_linear_algebra_counts(action);
        let bscale = match p.precision {
            Precision::Double => 1.0,
            Precision::Single => 0.5,
        };
        let clock = p.machine.node.clock;

        // Identical local model to QCDOC (same CPU + memory).
        let op_instr = 2.0 * op.flops as f64 / issue_density(action);
        let la_instr = la.flops as f64 / 2.0;
        let fpu = sites * (op_instr + la_instr) * (1.0 + cal.issue_overhead);
        let bytes = sites
            * (2.0 * (op.read_bytes + op.write_bytes) as f64
                + (la.read_bytes + la.write_bytes) as f64)
            * bscale;
        let resident = sites * op.resident_bytes as f64 * bscale;
        let (mem, mo) = if resident as u64 <= EDRAM_SIZE {
            (bytes / PORT_BYTES_PER_CYCLE as f64, cal.mem_overlap_edram)
        } else {
            let ddr_bpc =
                qcdoc_asic::ddr::DDR_BYTES_PER_SEC / clock.hz() as f64 * cal.ddr_stream_efficiency;
            (bytes / ddr_bpc, cal.mem_overlap_ddr)
        };
        let local = fpu.max(mem) + (1.0 - mo) * fpu.min(mem);

        // Network: all directions serialized through one NIC, blocking.
        let mut messages = 0u64;
        let mut net_bytes = 0.0f64;
        for (axis, &ext) in p.logical_dims.iter().enumerate() {
            if ext <= 1 {
                continue;
            }
            let face_sites = p.local_sites() / p.local_dims[axis] as u64;
            // Two directions per axis, two operator applications.
            messages += 4;
            net_bytes +=
                4.0 * face_sites as f64 * op.face_bytes as f64 * op.halo_depth as f64 * bscale;
        }
        let net_ns = messages as f64 * self.network.startup_ns
            + net_bytes / self.network.bytes_per_sec * 1e9;
        let net_cycles = net_ns / clock.period_ns();

        // Software global sums: a binary reduction tree of messages, two
        // per iteration.
        let nodes: usize = p.logical_dims.iter().product();
        let tree_depth = (nodes as f64).log2().ceil();
        let gsum_cycles = 2.0 * 2.0 * tree_depth * self.network.startup_ns / clock.period_ns();

        let total = local + net_cycles + gsum_cycles;
        let flops_iter = sites * (2.0 * op.flops as f64 + la.flops as f64);
        ClusterReport {
            efficiency: flops_iter / (2.0 * total),
            iteration_us: total * clock.period_ns() / 1000.0,
            network_fraction: (net_cycles + gsum_cycles) / total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qcdoc_beats_cluster_at_paper_volume() {
        let perf = DiracPerf::paper_bench();
        let qcdoc = perf.evaluate(Action::Wilson).efficiency;
        let cluster = ClusterPerf::matching(&perf)
            .evaluate(Action::Wilson)
            .efficiency;
        assert!(
            qcdoc > 1.35 * cluster,
            "qcdoc {qcdoc:.3} should dominate the cluster {cluster:.3} at 4^4"
        );
    }

    #[test]
    fn cluster_collapses_under_hard_scaling() {
        // Shrinking local volume hurts the cluster much more than QCDOC —
        // the message start-up cost stops amortizing.
        let mut perf = DiracPerf::paper_bench();
        let at = |perf: &DiracPerf| {
            let c = ClusterPerf::matching(perf).evaluate(Action::Wilson);
            let q = perf.evaluate(Action::Wilson);
            (q.efficiency, c.efficiency)
        };
        let (q4, c4) = at(&perf);
        perf.local_dims = [2, 2, 2, 2];
        let (q2, c2) = at(&perf);
        // QCDOC keeps a large fraction of its efficiency; the cluster
        // loses most of what little it had.
        assert!(q2 / q4 > 0.55, "qcdoc retention {:.2}", q2 / q4);
        assert!(c2 / c4 < 0.45, "cluster retention {:.2}", c2 / c4);
        assert!(c2 < 0.12, "cluster at 2^4: {c2:.3}");
    }

    #[test]
    fn cluster_is_network_dominated_at_small_volume() {
        let mut perf = DiracPerf::paper_bench();
        perf.local_dims = [2, 2, 2, 2];
        let r = ClusterPerf::matching(&perf).evaluate(Action::Wilson);
        assert!(
            r.network_fraction > 0.6,
            "network fraction {:.2}",
            r.network_fraction
        );
    }

    #[test]
    fn cluster_catches_up_at_large_local_volume() {
        // With huge local volumes (soft scaling) messages amortize and the
        // gap narrows — the paper's point is about *hard* scaling.
        let mut perf = DiracPerf::paper_bench();
        perf.local_dims = [16, 16, 16, 16];
        let q = perf.evaluate(Action::Wilson).efficiency;
        let c = ClusterPerf::matching(&perf)
            .evaluate(Action::Wilson)
            .efficiency;
        assert!(c / q > 0.6, "large-volume ratio {:.2}", c / q);
    }
}
