//! The functional execution engine: threads as nodes, channels as wires.
//!
//! Every node of a (logical) machine runs as an OS thread with its own
//! [`NodeMemory`] and [`Scu`]; each uni-directional wire is a channel
//! carrying [`WireMsg`]s. All protocol behaviour — DMA descriptors, the
//! three-in-the-air window, idle receive, parity rejects and resends,
//! checksums, partition-interrupt flooding — is the real `qcdoc-scu` state
//! machine; this module only moves messages and schedules threads.
//!
//! Fault injection: a seeded [`FaultPlan`] (from `qcdoc-fault`) corrupts
//! chosen frames in flight through a per-node [`NodeTap`], exercising the
//! automatic-resend path end to end; [`FunctionalMachine::run_with_health`]
//! additionally returns the machine-wide [`HealthLedger`] a host would
//! read out over its diagnostics tree.

use parking_lot::Mutex;
use qcdoc_asic::memory::NodeMemory;
use qcdoc_fault::{FaultClock, Liveness, NodeHealth, NodeTap};
pub use qcdoc_fault::{FaultEvent, FaultPlan, HealthLedger};
use qcdoc_geometry::{Axis, Direction, NodeCoord, NodeId, TorusShape};
use qcdoc_scu::dma::DmaDescriptor;
use qcdoc_scu::link::WireTap;
use qcdoc_scu::scu::{Scu, ScuEvent, WireMsg};
use qcdoc_scu::timing::LinkTimingConfig;
use qcdoc_scu::{RetryPolicy, WireVerdict};
use qcdoc_telemetry::{
    FlightEvent, FlightKind, MachineTelemetry, MetricsRegistry, NodeTelemetry, Phase, Span,
    SpanToken,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// The channel ends owned by one node: senders for its 12 outgoing wires
/// and receivers for its 12 incoming ones.
type NodeWires = (Vec<Option<Sender<WireMsg>>>, Vec<Option<Receiver<WireMsg>>>);

/// Idle pump rounds in [`NodeCtx::complete`] before a node declares its
/// transfer wedged (a dead wire never delivers the data or the ack). At
/// the post-yield backoff of 20 µs per round this is roughly a second of
/// real silence — far beyond any healthy transfer on an oversubscribed
/// host, and short enough that a dead-link run still fails fast.
const WEDGE_IDLE_SPINS: u32 = 50_000;

/// Telemetry knobs for a [`FunctionalMachine`] run.
///
/// The functional engine has no global clock of its own (threads run at
/// host speed), so each node's telemetry clock is advanced by the *link
/// timing model*: a completed transfer of `w` words costs
/// `link.transfer_cycles(w)` logical cycles, the slowest armed link
/// setting the pace — which is exactly how the paper's §4 efficiency
/// model charges communication time.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Per-node span ring-buffer capacity (bounded memory).
    pub ring_capacity: usize,
    /// Link timing used to convert word counts into logical cycles.
    pub link: LinkTimingConfig,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            ring_capacity: 65_536,
            link: LinkTimingConfig::default(),
        }
    }
}

/// One node's execution context: its memory, SCU, and wires.
pub struct NodeCtx {
    /// Logical rank.
    pub id: NodeId,
    /// Logical coordinate.
    pub coord: NodeCoord,
    /// Logical machine shape.
    pub shape: TorusShape,
    /// Node memory (EDRAM + DDR) — the SCU DMA engines address this.
    pub mem: NodeMemory,
    /// Per-node telemetry handle (disabled unless the machine was built
    /// with [`FunctionalMachine::with_telemetry`]).
    pub telem: NodeTelemetry,
    scu: Scu,
    tx: Vec<Option<Sender<WireMsg>>>,
    rx: Vec<Option<Receiver<WireMsg>>>,
    events: Vec<ScuEvent>,
    tap: NodeTap,
    wedged: bool,
    mem_flips: u64,
    /// Whether DMA transfers carry end-to-end block checksums (machine
    /// opt-in via [`FunctionalMachine::with_block_checksums`]).
    block_checksums: bool,
    /// Words armed per link since the last accounted completion, used to
    /// charge the telemetry clock with modeled transfer cycles.
    armed_send_words: [u64; 12],
    armed_recv_words: [u64; 12],
    link_timing: LinkTimingConfig,
    wedge_spins: u32,
    /// SCU counter totals at the last flight check, so each
    /// [`NodeCtx::complete`] logs only the retries it caused.
    flight_resends_seen: u64,
    flight_block_rejects_seen: u64,
    /// Shared wire-activity flag: set whenever [`NodeCtx::progress`] moves
    /// anything. The sharded engine's workers read-and-clear it to decide
    /// when a whole shard has gone idle and should back off; the
    /// thread-per-node engine leaves it `None`.
    pulse: Option<Arc<AtomicBool>>,
}

/// Everything both execution engines need to stamp out one node, minus the
/// wires (which depend on how the engine builds its fabric).
pub(crate) struct NodeCtxConfig {
    pub shape: TorusShape,
    pub ddr_bytes: u64,
    pub telemetry: Option<TelemetryConfig>,
    pub retry_policy: RetryPolicy,
    pub wedge_spins: u32,
    pub block_checksums: bool,
}

/// Outcome of one non-blocking completion attempt ([`NodeCtx::pump_step`]).
enum PumpStep {
    /// Every tracked send and receive has retired.
    Done,
    /// Not done, but at least one wire moved this round.
    Moved,
    /// Not done and nothing moved — a candidate wedge round.
    Idle,
}

impl NodeCtx {
    /// Logical coordinate of the neighbour in `dir`.
    pub fn neighbour(&self, dir: Direction) -> NodeId {
        self.shape.rank_of(self.shape.neighbour(self.coord, dir))
    }

    /// Whether the machine spans more than one node along `axis`.
    pub fn axis_spans(&self, axis: usize) -> bool {
        axis < self.shape.rank() && self.shape.extent(axis) > 1
    }

    /// Start a DMA send toward `dir`. A wedged node refuses: its units
    /// were abandoned mid-transfer when the watchdog fired, and re-arming
    /// them would corrupt protocol state the health readout still needs.
    pub fn start_send(&mut self, dir: Direction, desc: DmaDescriptor) {
        if self.wedged {
            return;
        }
        self.armed_send_words[dir.link_index()] += desc.total_words();
        if self.block_checksums {
            self.scu.start_send_checked(dir.link_index(), desc);
        } else {
            self.scu.start_send(dir.link_index(), desc);
        }
    }

    /// Arm a DMA receive for traffic arriving from `dir` (no-op once the
    /// node has wedged, like [`NodeCtx::start_send`]).
    pub fn start_recv(&mut self, dir: Direction, desc: DmaDescriptor) {
        if self.wedged {
            return;
        }
        self.armed_recv_words[dir.link_index()] += desc.total_words();
        if self.block_checksums {
            self.scu
                .start_recv_checked(dir.link_index(), desc, &mut self.mem)
                .expect("receive DMA arm failed");
        } else {
            self.scu
                .start_recv(dir.link_index(), desc, &mut self.mem)
                .expect("receive DMA arm failed");
        }
    }

    /// Send a supervisor word toward `dir`.
    pub fn send_supervisor(&mut self, dir: Direction, word: u64) {
        self.scu.send_supervisor(dir.link_index(), word);
    }

    /// Raise a partition interrupt from this node.
    pub fn raise_partition_irq(&mut self, bits: u8) {
        self.scu.raise_partition_irq(bits);
    }

    /// Partition-interrupt bits seen so far by this node's SCU.
    pub fn partition_irq_state(&self) -> u8 {
        self.scu.partition_irq_state()
    }

    /// Drain SCU events (supervisor/partition interrupts) observed so far.
    pub fn take_events(&mut self) -> Vec<ScuEvent> {
        std::mem::take(&mut self.events)
    }

    /// Link-level rejects observed by this node's receive units (each one
    /// forced a hardware resend).
    pub fn link_errors(&self) -> u64 {
        (0..12).map(|l| self.scu.recv_unit(l).rejects()).sum()
    }

    /// Whether a transfer on this node gave up waiting on a silent wire.
    pub fn wedged(&self) -> bool {
        self.wedged
    }

    /// One pump of every wire: transmit until each link stalls on its ack
    /// window and drain every arrived message. Returns whether anything
    /// moved.
    pub fn progress(&mut self) -> bool {
        let mut moved = false;
        for link in 0..12 {
            if self.tx[link].is_none() {
                continue;
            }
            while let Some(mut msg) = self
                .scu
                .tx_next(link, &mut self.mem)
                .expect("send DMA memory fault")
            {
                let verdict = match &mut msg {
                    WireMsg::Data(wf) => {
                        let injected_before = self.tap.injected()[link];
                        let v = self.tap.on_frame(link, wf);
                        if self.tap.injected()[link] > injected_before {
                            self.telem.flight(
                                FlightKind::FaultInjected,
                                "frame_corrupt",
                                link as u64,
                                wf.seq,
                            );
                        }
                        v
                    }
                    // Acks and rejects have no frame, but a dead wire
                    // swallows them all the same.
                    _ => {
                        if self.tap.clock().drop_frame(self.id.0, link, u64::MAX) {
                            WireVerdict::Drop
                        } else {
                            WireVerdict::Deliver
                        }
                    }
                };
                if verdict == WireVerdict::Drop {
                    self.telem
                        .flight(FlightKind::FaultInjected, "frame_drop", link as u64, 0);
                }
                if verdict == WireVerdict::Deliver {
                    // Unbounded channel: never blocks the thread
                    // (backpressure is the protocol's ack window, not the
                    // transport).
                    let _ = self.tx[link].as_ref().unwrap().send(msg);
                }
                moved = true;
            }
        }
        for link in 0..12 {
            let Some(rx) = &self.rx[link] else { continue };
            while let Ok(msg) = rx.try_recv() {
                if let Some(ev) = self
                    .scu
                    .rx(link, msg, &mut self.mem)
                    .expect("receive protocol fault")
                {
                    self.events.push(ev);
                }
                moved = true;
            }
        }
        if moved {
            if let Some(pulse) = &self.pulse {
                pulse.store(true, Ordering::Relaxed);
            }
        }
        moved
    }

    /// Pump until the given sends and receives complete. Spins with
    /// `yield` at first, then backs off to short sleeps so a waiting node
    /// doesn't starve the nodes doing real work on an oversubscribed host.
    ///
    /// A wire that has gone permanently silent (dead link, crashed
    /// neighbour) would leave this loop spinning forever; after
    /// `WEDGE_IDLE_SPINS` idle rounds the node gives up, marks itself
    /// wedged, and returns so the run can finish and report the failure
    /// through the health ledger instead of hanging.
    pub fn complete(&mut self, sends: &[Direction], recvs: &[Direction]) {
        if !self.telem.is_enabled() {
            self.complete_inner(sends, recvs);
            self.record_scu_flight();
            return;
        }
        let token = self.telem.begin();
        self.complete_inner(sends, recvs);
        self.record_scu_flight();
        self.account_complete(token, sends, recvs);
    }

    /// Cooperative twin of [`NodeCtx::complete`] for the sharded engine:
    /// identical protocol behaviour, telemetry accounting and wedge
    /// watchdog, but instead of spinning the OS thread it yields back to
    /// the shard worker between pump rounds so the other virtual nodes of
    /// the shard keep running.
    ///
    /// ```no_run
    /// # use qcdoc_core::sharded::ShardedMachine;
    /// # use qcdoc_geometry::{Axis, TorusShape};
    /// # use qcdoc_scu::dma::DmaDescriptor;
    /// let machine = ShardedMachine::new(TorusShape::new(&[4]));
    /// let ranks = machine.run(async |ctx| {
    ///     ctx.mem.write_word(0x100, ctx.id.0 as u64).unwrap();
    ///     ctx.start_recv(Axis(0).minus(), DmaDescriptor::contiguous(0x200, 1));
    ///     ctx.start_send(Axis(0).plus(), DmaDescriptor::contiguous(0x100, 1));
    ///     ctx.complete_async(&[Axis(0).plus()], &[Axis(0).minus()]).await;
    ///     ctx.mem.read_word(0x200).unwrap()
    /// });
    /// assert_eq!(ranks, vec![3, 0, 1, 2]);
    /// ```
    pub async fn complete_async(&mut self, sends: &[Direction], recvs: &[Direction]) {
        if !self.telem.is_enabled() {
            self.complete_inner_async(sends, recvs).await;
            self.record_scu_flight();
            return;
        }
        let token = self.telem.begin();
        self.complete_inner_async(sends, recvs).await;
        self.record_scu_flight();
        self.account_complete(token, sends, recvs);
    }

    /// Charge the logical clock with the modeled wire time: parallel
    /// links overlap, so the slowest one sets the pace (§4's comms
    /// term), while counters see every word moved.
    fn account_complete(&mut self, token: SpanToken, sends: &[Direction], recvs: &[Direction]) {
        let mut send_words = 0u64;
        let mut recv_words = 0u64;
        let mut wire_cycles = 0u64;
        for d in sends {
            let w = std::mem::take(&mut self.armed_send_words[d.link_index()]);
            send_words += w;
            wire_cycles = wire_cycles.max(self.link_timing.transfer_cycles(w).count());
        }
        for d in recvs {
            let w = std::mem::take(&mut self.armed_recv_words[d.link_index()]);
            recv_words += w;
            wire_cycles = wire_cycles.max(self.link_timing.transfer_cycles(w).count());
        }
        self.telem.advance(wire_cycles);
        self.telem.counter_add("dma_send_words", send_words);
        self.telem.counter_add("dma_recv_words", recv_words);
        self.telem
            .counter_add("dma_bytes", (send_words + recv_words) * 8);
        self.telem
            .end_with(token, "scu.complete", Phase::Comms, send_words + recv_words);
    }

    /// Log go-back-N retries and block-checksum replays that happened
    /// since the last check into the flight ring. Exceptional paths only:
    /// a clean transfer leaves no trace.
    fn record_scu_flight(&mut self) {
        let stats = self.scu.stats();
        let resends = stats.total_resends();
        if resends > self.flight_resends_seen {
            self.telem.flight(
                FlightKind::Retry,
                "go_back_n",
                resends - self.flight_resends_seen,
                resends,
            );
            self.flight_resends_seen = resends;
        }
        let block_rejects: u64 = stats.links.iter().map(|l| l.block_rejects).sum();
        if block_rejects > self.flight_block_rejects_seen {
            self.telem.flight(
                FlightKind::BlockReject,
                "block_checksum",
                block_rejects - self.flight_block_rejects_seen,
                block_rejects,
            );
            self.flight_block_rejects_seen = block_rejects;
        }
    }

    /// One non-blocking completion attempt: pump the wires once, then
    /// check whether every tracked transfer has retired. Both engines'
    /// wait loops are built from this single primitive, so the protocol
    /// behaviour cannot drift between them.
    fn pump_step(&mut self, sends: &[Direction], recvs: &[Direction]) -> PumpStep {
        let moved = self.progress();
        let sends_done = sends.iter().all(|d| self.scu.send_complete(d.link_index()));
        let recvs_done = recvs.iter().all(|d| self.scu.recv_complete(d.link_index()));
        if sends_done && recvs_done {
            PumpStep::Done
        } else if moved {
            PumpStep::Moved
        } else {
            PumpStep::Idle
        }
    }

    /// Wedge-watchdog bookkeeping shared by both wait loops: called after
    /// an idle pump round, returns whether the node just gave up.
    fn wedge_after_idle(&mut self, idle_spins: u32, pending: usize) -> bool {
        if idle_spins < self.wedge_spins {
            return false;
        }
        self.wedged = true;
        self.telem.flight(
            FlightKind::Wedge,
            "silent_wire",
            idle_spins as u64,
            pending as u64,
        );
        true
    }

    fn complete_inner(&mut self, sends: &[Direction], recvs: &[Direction]) {
        if self.wedged {
            return;
        }
        let mut idle_spins = 0u32;
        loop {
            match self.pump_step(sends, recvs) {
                PumpStep::Done => return,
                PumpStep::Moved => idle_spins = 0,
                PumpStep::Idle => {
                    idle_spins += 1;
                    if self.wedge_after_idle(idle_spins, sends.len() + recvs.len()) {
                        return;
                    }
                }
            }
            if idle_spins < 256 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(20));
            }
        }
    }

    /// The cooperative wait loop: the same pump/wedge recurrence as
    /// [`NodeCtx::complete_inner`], but idle rounds yield control back to
    /// the shard worker (which backs off on our behalf once every virtual
    /// node of the shard reports idle) instead of sleeping the thread.
    async fn complete_inner_async(&mut self, sends: &[Direction], recvs: &[Direction]) {
        if self.wedged {
            return;
        }
        let mut idle_spins = 0u32;
        let mut idle_since: Option<std::time::Instant> = None;
        // The thread engine's watchdog implies ~20 µs of real time per idle
        // round once it backs off; a shard whose other virtual nodes are
        // still active sweeps much faster than that, so the cooperative
        // loop additionally requires the same *wall-clock* silence before
        // giving up on a wire.
        let quiet_needed = std::time::Duration::from_micros(20) * self.wedge_spins;
        loop {
            match self.pump_step(sends, recvs) {
                PumpStep::Done => return,
                PumpStep::Moved => {
                    idle_spins = 0;
                    idle_since = None;
                }
                PumpStep::Idle => {
                    idle_spins += 1;
                    let since = *idle_since.get_or_insert_with(std::time::Instant::now);
                    if idle_spins >= self.wedge_spins
                        && since.elapsed() >= quiet_needed
                        && self.wedge_after_idle(idle_spins, sends.len() + recvs.len())
                    {
                        return;
                    }
                }
            }
            yield_once().await;
        }
    }

    /// Convenience: exchange one buffer with both neighbours of an axis
    /// and wait for completion.
    pub fn shift(&mut self, dir: Direction, send: DmaDescriptor, recv: DmaDescriptor) {
        // Data sent toward `dir` arrives at the neighbour from
        // `dir.opposite()`; symmetrically we receive from our own
        // `dir.opposite()` link.
        let from = dir.opposite();
        self.start_recv(from, recv);
        self.start_send(dir, send);
        self.complete(&[dir], &[from]);
    }

    /// Cooperative twin of [`NodeCtx::shift`] for the sharded engine.
    pub async fn shift_async(&mut self, dir: Direction, send: DmaDescriptor, recv: DmaDescriptor) {
        let from = dir.opposite();
        self.start_recv(from, recv);
        self.start_send(dir, send);
        self.complete_async(&[dir], &[from]).await;
    }

    /// End-of-run checksum of the send side of a link.
    pub fn send_checksum(&self, dir: Direction) -> u64 {
        self.scu.send_unit(dir.link_index()).checksum().value()
    }

    /// End-of-run checksum of the receive side of a link.
    pub fn recv_checksum(&self, dir: Direction) -> u64 {
        self.scu.recv_unit(dir.link_index()).checksum().value()
    }

    /// Read every SCU counter and checksum into a [`NodeHealth`] record —
    /// the per-node readout the host's diagnostics sweep collects.
    fn health_snapshot(&self) -> NodeHealth {
        let clock = self.tap.clock();
        let mem_stats = self.mem.stats();
        let mut health = NodeHealth {
            node: self.id.0,
            liveness: if self.wedged {
                Liveness::Wedged
            } else if let Some(iteration) = clock.crash_iteration(self.id.0) {
                Liveness::Crashed { iteration }
            } else {
                Liveness::Alive
            },
            links: Vec::with_capacity(12),
            mem_flips: self.mem_flips,
            ecc_corrected: mem_stats.ecc_corrected,
            machine_checks: mem_stats.machine_checks,
        };
        let stats = self.scu.stats();
        for (link, ls) in stats.links.iter().enumerate() {
            health.links.push(qcdoc_fault::LinkHealth {
                sent_words: ls.sent_words,
                received_words: ls.received_words,
                resends: ls.resends,
                rejects: ls.rejects,
                injected: self.tap.injected()[link],
                stall_cycles: 0,
                dead: clock.link_dead_from(self.id.0, link).is_some(),
                send_checksum: ls.send_checksum,
                recv_checksum: ls.recv_checksum,
                checksum_ok: None,
                backoff_waits: ls.backoff_waits,
                retry_exhausted: ls.retry_exhausted,
                block_rejects: ls.block_rejects,
                block_resends: ls.block_resends,
            });
        }
        health
    }

    /// Stamp out one node. Used by both engines so the per-node state
    /// (SCU training, retry policy, tap, telemetry wiring) cannot differ
    /// between the thread-per-node and sharded run loops.
    pub(crate) fn build(
        node: u32,
        cfg: &NodeCtxConfig,
        tx: Vec<Option<Sender<WireMsg>>>,
        rx: Vec<Option<Receiver<WireMsg>>>,
        clock: Arc<FaultClock>,
        pulse: Option<Arc<AtomicBool>>,
    ) -> NodeCtx {
        let mut scu = Scu::new();
        scu.train_all();
        scu.set_retry_policy(cfg.retry_policy);
        NodeCtx {
            id: NodeId(node),
            coord: cfg.shape.coord_of(NodeId(node)),
            shape: cfg.shape.clone(),
            mem: NodeMemory::new(cfg.ddr_bytes),
            telem: match cfg.telemetry {
                Some(t) => NodeTelemetry::with_ring(node, t.ring_capacity),
                None => NodeTelemetry::disabled(node),
            },
            scu,
            tx,
            rx,
            events: Vec::new(),
            tap: NodeTap::new(clock, node),
            wedged: false,
            mem_flips: 0,
            block_checksums: cfg.block_checksums,
            armed_send_words: [0; 12],
            armed_recv_words: [0; 12],
            link_timing: cfg.telemetry.map(|c| c.link).unwrap_or_default(),
            wedge_spins: cfg.wedge_spins,
            flight_resends_seen: 0,
            flight_block_rejects_seen: 0,
            pulse,
        }
    }

    /// Strike this node's scheduled memory soft errors before the
    /// application touches its data (flips outside the address map are
    /// silently out of range, like a flip in unused DRAM).
    pub(crate) fn apply_mem_faults(&mut self) {
        let faults = self.tap.clock().mem_faults(self.id.0);
        for (addr, bit) in faults {
            if self.mem.flip_bit(addr, bit).is_ok() {
                self.mem_flips += 1;
                self.telem
                    .flight(FlightKind::FaultInjected, "mem_flip", addr, bit as u64);
            }
        }
    }

    /// End-of-run epilogue shared by both engines: flight bookkeeping, the
    /// ECC scrub over the touched footprint, memory-profile gauges, and
    /// the health snapshot the host's diagnostics sweep collects.
    pub(crate) fn finish_run(
        &mut self,
    ) -> (NodeHealth, (MetricsRegistry, Vec<Span>), Vec<FlightEvent>) {
        self.record_scu_flight();
        if let Some(iteration) = self.tap.clock().crash_iteration(self.id.0) {
            self.telem
                .flight(FlightKind::Crash, "scheduled", iteration as u64, 0);
        }
        // End-of-run ECC scrub: walk the touched footprint so soft errors
        // the application never read still get corrected (1-bit) or latch
        // a machine check (2-bit) before the health snapshot is taken.
        let scrub = self.mem.scrub();
        {
            let ms = self.mem.stats();
            if ms.machine_checks > 0 {
                self.telem.flight(
                    FlightKind::MachineCheck,
                    "uncorrectable_ecc",
                    ms.machine_checks,
                    ms.ecc_corrected,
                );
            }
        }
        let backoff = self.scu.backoff_delay_histogram();
        if backoff.count() > 0 {
            self.telem
                .merge_histogram("scu_backoff_delay_rounds", &backoff);
        }
        if self.telem.is_enabled() {
            // EDRAM-vs-DDR hit gauges: the end-of-run memory profile the
            // §4 model needs to locate data.
            let ms = self.mem.stats();
            self.telem
                .gauge_set("node_mem_edram_reads", ms.edram_reads as f64);
            self.telem
                .gauge_set("node_mem_edram_writes", ms.edram_writes as f64);
            self.telem
                .gauge_set("node_mem_ddr_reads", ms.ddr_reads as f64);
            self.telem
                .gauge_set("node_mem_ddr_writes", ms.ddr_writes as f64);
            self.telem
                .gauge_set("node_mem_ecc_corrected", ms.ecc_corrected as f64);
            self.telem
                .gauge_set("node_mem_machine_checks", ms.machine_checks as f64);
            self.telem
                .gauge_set("node_mem_scrub_cycles", scrub.cycles as f64);
        }
        let snapshot = self.health_snapshot();
        let flight = self.telem.take_flight();
        let parts = self.telem.take_parts();
        (snapshot, parts, flight)
    }
}

/// A future that returns control to the executor exactly once — the
/// cooperative analogue of [`std::thread::yield_now`]. Shard workers poll
/// every virtual node round-robin, so one yield is one trip through the
/// rest of the shard.
pub(crate) fn yield_once() -> YieldOnce {
    YieldOnce { yielded: false }
}

/// See [`yield_once`].
pub(crate) struct YieldOnce {
    yielded: bool,
}

impl std::future::Future for YieldOnce {
    type Output = ();

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<()> {
        if self.yielded {
            std::task::Poll::Ready(())
        } else {
            self.yielded = true;
            std::task::Poll::Pending
        }
    }
}

/// Build the wire fabric for a logical shape: one unbounded channel per
/// (node, outgoing direction); the receiver half goes to the neighbour's
/// opposite-direction slot. Shared by both execution engines.
#[allow(clippy::type_complexity)]
pub(crate) fn build_fabric(
    shape: &TorusShape,
) -> (
    Vec<Vec<Option<Sender<WireMsg>>>>,
    Vec<Vec<Option<Receiver<WireMsg>>>>,
) {
    let n = shape.node_count();
    let mut txs: Vec<Vec<Option<Sender<WireMsg>>>> = (0..n).map(|_| vec![None; 12]).collect();
    let mut rxs: Vec<Vec<Option<Receiver<WireMsg>>>> = (0..n).map(|_| vec![None; 12]).collect();
    for (node, tx_row) in txs.iter_mut().enumerate() {
        let coord = shape.coord_of(NodeId(node as u32));
        for axis in 0..shape.rank() {
            for dir in [Axis(axis as u8).plus(), Axis(axis as u8).minus()] {
                let (s, r) = unbounded();
                let nb = shape.rank_of(shape.neighbour(coord, dir));
                tx_row[dir.link_index()] = Some(s);
                rxs[nb.index()][dir.opposite().link_index()] = Some(r);
            }
        }
    }
    (txs, rxs)
}

/// The functional machine.
pub struct FunctionalMachine {
    shape: TorusShape,
    faults: FaultPlan,
    ddr_bytes: u64,
    telemetry: Option<TelemetryConfig>,
    retry_policy: RetryPolicy,
    wedge_spins: u32,
    block_checksums: bool,
}

impl FunctionalMachine {
    /// A machine with the given logical shape and 128 MB DIMMs.
    pub fn new(shape: TorusShape) -> FunctionalMachine {
        FunctionalMachine {
            shape,
            faults: FaultPlan::default(),
            ddr_bytes: 128 * 1024 * 1024,
            telemetry: None,
            retry_policy: RetryPolicy::default(),
            wedge_spins: WEDGE_IDLE_SPINS,
            block_checksums: false,
        }
    }

    /// Turn on end-to-end DMA block checksums: every [`NodeCtx::start_send`]
    /// appends a trailing checksum word verified at the receiving SCU
    /// before the block is retired, so multi-bit bursts that evade the
    /// per-frame parity are caught mid-run and healed by a whole-block
    /// replay instead of surfacing only in the end-of-run checksum
    /// comparison (or not at all).
    pub fn with_block_checksums(mut self) -> FunctionalMachine {
        self.block_checksums = true;
        self
    }

    /// Install a fault plan (compiled against this machine when a run
    /// starts).
    pub fn with_faults(mut self, plan: FaultPlan) -> FunctionalMachine {
        self.faults = plan;
        self
    }

    /// Install a link retry policy on every send unit: a bounded budget of
    /// consecutive no-progress rewinds (with exponential backoff) after
    /// which a link declares itself dead instead of resending forever.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> FunctionalMachine {
        self.retry_policy = policy;
        self
    }

    /// Override the wedge watchdog: idle pump rounds a node waits on a
    /// silent wire before giving up. Recovery tests use a short timeout so
    /// a deliberately killed node fails in milliseconds, not a second.
    pub fn with_wedge_timeout(mut self, spins: u32) -> FunctionalMachine {
        self.wedge_spins = spins.max(1);
        self
    }

    /// Enable telemetry: every node gets a cycle clock, a span ring and a
    /// local metrics registry, collected by
    /// [`FunctionalMachine::run_with_telemetry`].
    pub fn with_telemetry(mut self, cfg: TelemetryConfig) -> FunctionalMachine {
        self.telemetry = Some(cfg);
        self
    }

    /// The logical shape.
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }

    /// Swap the fabric under the machine — a recovery repartition: later
    /// runs use the replacement shape and fault plan, keeping the retry
    /// policy, wedge timeout and telemetry configuration.
    pub(crate) fn replace_fabric(&mut self, shape: TorusShape, faults: FaultPlan) {
        self.shape = shape;
        self.faults = faults;
    }

    /// Run `app` on every node concurrently; returns per-node results in
    /// rank order.
    pub fn run<F, R>(&self, app: F) -> Vec<R>
    where
        F: Fn(&mut NodeCtx) -> R + Sync,
        R: Send,
    {
        self.run_inner(app)
            .into_iter()
            .map(|(r, _, _, _)| r)
            .collect()
    }

    /// Like [`FunctionalMachine::run`], but also collect every node's SCU
    /// counters and checksums into a finalized [`HealthLedger`] — the
    /// software analogue of the host sweeping its Ethernet/JTAG tree after
    /// a job.
    pub fn run_with_health<F, R>(&self, app: F) -> (Vec<R>, HealthLedger)
    where
        F: Fn(&mut NodeCtx) -> R + Sync,
        R: Send,
    {
        let mut ledger = HealthLedger::new(self.shape.node_count());
        let mut results = Vec::with_capacity(self.shape.node_count());
        for (node, (r, health, _, _)) in self.run_inner(app).into_iter().enumerate() {
            results.push(r);
            *ledger.node_mut(node as u32) = health;
        }
        ledger.finalize(&self.shape);
        (results, ledger)
    }

    /// Like [`FunctionalMachine::run_with_health`], but additionally
    /// collect every node's metrics (stamped with `node="N"` labels) and
    /// cycle-stamped spans. The finalized ledger is also exported into the
    /// returned registry, so metrics and health present one view.
    pub fn run_with_telemetry<F, R>(&self, app: F) -> (Vec<R>, HealthLedger, MachineTelemetry)
    where
        F: Fn(&mut NodeCtx) -> R + Sync,
        R: Send,
    {
        let mut ledger = HealthLedger::new(self.shape.node_count());
        let mut telemetry = MachineTelemetry::new();
        let mut results = Vec::with_capacity(self.shape.node_count());
        for (node, (r, health, (metrics, spans), flight)) in
            self.run_inner(app).into_iter().enumerate()
        {
            results.push(r);
            *ledger.node_mut(node as u32) = health;
            telemetry.absorb_node(node as u32, metrics, spans);
            telemetry.absorb_flight(flight);
        }
        ledger.finalize(&self.shape);
        ledger.export_metrics(&mut telemetry.metrics);
        (results, ledger, telemetry)
    }

    #[allow(clippy::type_complexity)]
    fn run_inner<F, R>(
        &self,
        app: F,
    ) -> Vec<(
        R,
        NodeHealth,
        (MetricsRegistry, Vec<Span>),
        Vec<FlightEvent>,
    )>
    where
        F: Fn(&mut NodeCtx) -> R + Sync,
        R: Send,
    {
        let n = self.shape.node_count();
        let (mut txs, mut rxs) = build_fabric(&self.shape);
        let clock = Arc::new(FaultClock::resolve(
            &self.faults,
            n as u32,
            2 * self.shape.rank(),
        ));
        type NodeOutput<R> = (
            R,
            NodeHealth,
            (MetricsRegistry, Vec<Span>),
            Vec<FlightEvent>,
        );
        let results: Vec<Mutex<Option<NodeOutput<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let telemetry = self.telemetry;
        // Nodes that finish keep pumping the wires until *everyone* has
        // finished — otherwise a neighbour could stall waiting for an ack
        // from a thread that already exited. The count must rise even when
        // an application panics, or the surviving nodes pump forever and
        // the panic never surfaces; the guard counts on unwind too.
        let done = std::sync::atomic::AtomicUsize::new(0);
        struct DoneGuard<'a>(&'a std::sync::atomic::AtomicUsize);
        impl Drop for DoneGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let cfg = NodeCtxConfig {
            shape: self.shape.clone(),
            ddr_bytes: self.ddr_bytes,
            telemetry,
            retry_policy: self.retry_policy,
            wedge_spins: self.wedge_spins,
            block_checksums: self.block_checksums,
        };
        std::thread::scope(|scope| {
            let mut pairs: Vec<NodeWires> = txs.drain(..).zip(rxs.drain(..)).collect();
            for (node, (tx, rx)) in pairs.drain(..).enumerate().rev() {
                let app = &app;
                let results = &results;
                let done = &done;
                let cfg = &cfg;
                let clock = Arc::clone(&clock);
                scope.spawn(move || {
                    let done_guard = DoneGuard(done);
                    let mut ctx = NodeCtx::build(node as u32, cfg, tx, rx, clock, None);
                    ctx.apply_mem_faults();
                    let r = app(&mut ctx);
                    let (snapshot, parts, flight) = ctx.finish_run();
                    *results[node].lock() = Some((r, snapshot, parts, flight));
                    drop(done_guard);
                    let mut spins = 0u32;
                    while done.load(std::sync::atomic::Ordering::SeqCst) < n {
                        ctx.progress();
                        spins += 1;
                        if spins < 64 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        }
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().expect("node produced no result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcdoc_fault::FaultEvent;

    fn ring4() -> TorusShape {
        TorusShape::new(&[4])
    }

    #[test]
    fn ring_shift_moves_data_one_hop() {
        // Every node writes its rank, shifts +x; each ends up with its -x
        // neighbour's value.
        let machine = FunctionalMachine::new(ring4());
        let results = machine.run(|ctx| {
            ctx.mem.write_word(0x100, 1000 + ctx.id.0 as u64).unwrap();
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 1),
                DmaDescriptor::contiguous(0x200, 1),
            );
            ctx.mem.read_word(0x200).unwrap()
        });
        assert_eq!(results, vec![1003, 1000, 1001, 1002]);
    }

    #[test]
    fn bidirectional_shift_2d() {
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 2]));
        let results = machine.run(|ctx| {
            ctx.mem.write_word(0x0, ctx.id.0 as u64).unwrap();
            // Send own rank both +x and +y; receive both.
            ctx.start_recv(Axis(0).minus(), DmaDescriptor::contiguous(0x300, 1));
            ctx.start_recv(Axis(1).minus(), DmaDescriptor::contiguous(0x308, 1));
            ctx.start_send(Axis(0).plus(), DmaDescriptor::contiguous(0x0, 1));
            ctx.start_send(Axis(1).plus(), DmaDescriptor::contiguous(0x0, 1));
            ctx.complete(
                &[Axis(0).plus(), Axis(1).plus()],
                &[Axis(0).minus(), Axis(1).minus()],
            );
            (
                ctx.mem.read_word(0x300).unwrap(),
                ctx.mem.read_word(0x308).unwrap(),
            )
        });
        // Node (x,y) receives from (x-1,y) on x and (x,y-1) on y.
        let shape = TorusShape::new(&[2, 2]);
        for (i, &(fx, fy)) in results.iter().enumerate() {
            let c = shape.coord_of(NodeId(i as u32));
            let xm = shape.rank_of(shape.neighbour(c, Axis(0).minus())).0 as u64;
            let ym = shape.rank_of(shape.neighbour(c, Axis(1).minus())).0 as u64;
            assert_eq!((fx, fy), (xm, ym), "node {i}");
        }
    }

    #[test]
    fn injected_fault_is_healed_by_resend() {
        let plan = FaultPlan::new(0).with_event(FaultEvent::bit_flip(1, 0, 2, 30));
        let machine = FunctionalMachine::new(ring4()).with_faults(plan);
        let results = machine.run(|ctx| {
            for i in 0..8u64 {
                ctx.mem
                    .write_word(0x100 + i * 8, ctx.id.0 as u64 * 100 + i)
                    .unwrap();
            }
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 8),
                DmaDescriptor::contiguous(0x400, 8),
            );
            let data = ctx.mem.read_block(0x400, 8).unwrap();
            (data, ctx.link_errors(), ctx.send_checksum(Axis(0).plus()))
        });
        // Node 2 receives node 1's data despite the corrupted frame.
        let (data, errors, _) = &results[2];
        assert_eq!(*data, (0..8).map(|i| 100 + i).collect::<Vec<_>>());
        assert!(*errors >= 1, "the corrupted frame must have been rejected");
        // Checksums: each node's send checksum equals its +x neighbour's
        // receive checksum — verified inside shift by data equality here.
    }

    #[test]
    fn partition_interrupt_floods_the_machine() {
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 2, 2]));
        let results = machine.run(|ctx| {
            if ctx.id.0 == 5 {
                ctx.raise_partition_irq(0b10);
            }
            // Pump for a while to let the flood propagate.
            for _ in 0..200 {
                ctx.progress();
                std::thread::yield_now();
            }
            ctx.partition_irq_state()
        });
        assert!(
            results.iter().all(|&s| s == 0b10),
            "all 8 nodes must see the interrupt: {results:?}"
        );
    }

    #[test]
    fn supervisor_interrupt_reaches_neighbour() {
        let machine = FunctionalMachine::new(ring4());
        let results = machine.run(|ctx| {
            if ctx.id.0 == 0 {
                ctx.send_supervisor(Axis(0).plus(), 0xFEED_F00D);
            }
            for _ in 0..200 {
                ctx.progress();
                std::thread::yield_now();
            }
            ctx.take_events()
        });
        assert!(results[1].contains(&ScuEvent::SupervisorInterrupt(0xFEED_F00D)));
        assert!(
            results[2].is_empty(),
            "supervisor packets are point-to-point"
        );
    }

    #[test]
    fn neighbour_and_axis_span_queries() {
        let machine = FunctionalMachine::new(TorusShape::new(&[4, 2]));
        let results = machine.run(|ctx| {
            (
                ctx.neighbour(Axis(0).plus()).0,
                ctx.neighbour(Axis(1).minus()).0,
                ctx.axis_spans(0),
                ctx.axis_spans(1),
                ctx.axis_spans(5),
            )
        });
        // Node 0 at (0,0): +x neighbour is (1,0) = rank 1; -y neighbour is
        // (0,1) = rank 4 (wrap on the 2-ring).
        assert_eq!(results[0].0, 1);
        assert_eq!(results[0].1, 4);
        assert!(results[0].2 && results[0].3);
        assert!(!results[0].4, "axes beyond the rank do not span");
    }

    #[test]
    fn events_drain_once() {
        let machine = FunctionalMachine::new(ring4());
        let results = machine.run(|ctx| {
            if ctx.id.0 == 0 {
                ctx.send_supervisor(Axis(0).plus(), 7);
            }
            for _ in 0..200 {
                ctx.progress();
                std::thread::yield_now();
            }
            let first = ctx.take_events();
            let second = ctx.take_events();
            (first.len(), second.len())
        });
        assert_eq!(results[1], (1, 0), "take_events must drain");
    }

    #[test]
    fn health_ledger_records_injection_and_clean_checksums() {
        let plan = FaultPlan::new(42).with_event(FaultEvent::bit_flip(1, 0, 2, 30));
        let machine = FunctionalMachine::new(ring4()).with_faults(plan);
        let (results, ledger) = machine.run_with_health(|ctx| {
            for i in 0..8u64 {
                ctx.mem
                    .write_word(0x100 + i * 8, ctx.id.0 as u64 * 100 + i)
                    .unwrap();
            }
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 8),
                DmaDescriptor::contiguous(0x400, 8),
            );
            ctx.mem.read_block(0x400, 8).unwrap()
        });
        assert_eq!(results[2], (0..8).map(|i| 100 + i).collect::<Vec<_>>());
        // The recoverable corruption shows up in the ledger...
        assert_eq!(ledger.total_injected(), 1);
        assert_eq!(ledger.nodes[1].links[0].injected, 1);
        assert!(ledger.total_resends() >= 1);
        // ...while every end-of-run checksum pairing still agrees: the
        // resend healed the wire before the payload landed.
        assert!(ledger.all_checksums_ok());
        assert!(ledger.unhealthy_nodes().is_empty());
        assert_eq!(ledger.nodes[0].links[0].sent_words, 8);
        assert_eq!(ledger.nodes[1].links[1].received_words, 8);
    }

    #[test]
    fn dead_link_wedges_instead_of_hanging() {
        // Node 1's +x wire dies before the transfer starts: node 2 never
        // receives, node 1 never gets acked. Both must give up and report
        // rather than spin forever.
        let plan = FaultPlan::new(0).with_event(FaultEvent::dead_link(1, 0, 0));
        let machine = FunctionalMachine::new(ring4()).with_faults(plan);
        let (_, ledger) = machine.run_with_health(|ctx| {
            ctx.mem.write_word(0x100, ctx.id.0 as u64).unwrap();
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 1),
                DmaDescriptor::contiguous(0x200, 1),
            );
        });
        assert_eq!(ledger.dead_links(), vec![(1, 0)]);
        assert_eq!(ledger.nodes[1].liveness, qcdoc_fault::Liveness::Wedged);
        let unhealthy = ledger.unhealthy_nodes();
        assert!(
            unhealthy.contains(&1),
            "the dead wire's node must be flagged: {unhealthy:?}"
        );
        assert!(
            !ledger.all_checksums_ok(),
            "undelivered words must break the checksum pairing"
        );
    }

    #[test]
    fn stuck_link_exhausts_its_retry_budget_and_escalates() {
        // Node 1's +x transmitter goes bad from the first frame: every
        // transmission — resends included — is corrupted, so unlimited
        // retries would resend forever. A bounded budget kills the link
        // after a deterministic number of rewinds, the wedge watchdog
        // unblocks both endpoints, and the ledger pins the blame on node
        // 1's hardware (not on the wedged bystanders).
        let plan = FaultPlan::new(7).with_event(FaultEvent::stuck_link(1, 0, 0));
        let policy = RetryPolicy::bounded(4, 2, 64);
        let machine = FunctionalMachine::new(ring4())
            .with_faults(plan)
            .with_retry_policy(policy)
            .with_wedge_timeout(10_000);
        let (_, ledger) = machine.run_with_health(|ctx| {
            for i in 0..4u64 {
                ctx.mem
                    .write_word(0x100 + i * 8, ctx.id.0 as u64 + i)
                    .unwrap();
            }
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 4),
                DmaDescriptor::contiguous(0x200, 4),
            );
        });
        let bad = &ledger.nodes[1].links[0];
        assert!(bad.retry_exhausted, "the budget must exhaust");
        assert!(
            bad.resends <= 5 * 3,
            "bounded resends per delivered word, got {}",
            bad.resends
        );
        let culprits = ledger.culprit_nodes();
        assert_eq!(culprits, vec![1], "hardware evidence points at node 1 only");
        // Collateral wedges still show up as unhealthy, but not as culprits.
        assert!(ledger.unhealthy_nodes().contains(&2));
    }

    #[test]
    fn short_wedge_timeout_fails_fast() {
        let plan = FaultPlan::new(0).with_event(FaultEvent::dead_link(1, 0, 0));
        let machine = FunctionalMachine::new(ring4())
            .with_faults(plan)
            .with_wedge_timeout(2_000);
        let start = std::time::Instant::now();
        let (_, ledger) = machine.run_with_health(|ctx| {
            ctx.mem.write_word(0x100, ctx.id.0 as u64).unwrap();
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 1),
                DmaDescriptor::contiguous(0x200, 1),
            );
        });
        assert_eq!(ledger.nodes[1].liveness, qcdoc_fault::Liveness::Wedged);
        // 2k spins at ≤20 µs each is well under a second even on a busy host.
        assert!(start.elapsed() < std::time::Duration::from_secs(30));
    }

    #[test]
    fn wedged_node_refuses_new_transfers_instead_of_panicking() {
        // A real application keeps issuing collectives after a wedge (it
        // only checks `wedged()` at its own loop boundaries). Arming fresh
        // DMA onto units abandoned mid-transfer used to blow up in the
        // idle-receive drain; a wedged node must go silent instead, so the
        // run still terminates and the ledger still reads out.
        let plan = FaultPlan::new(0).with_event(FaultEvent::dead_link(1, 0, 1));
        let machine = FunctionalMachine::new(ring4())
            .with_faults(plan)
            .with_wedge_timeout(2_000);
        let (results, ledger) = machine.run_with_health(|ctx| {
            // Three rounds of 4-word shifts: the wire dies during the
            // first, the later rounds re-arm every unit regardless.
            for round in 0..3u64 {
                for i in 0..4u64 {
                    ctx.mem
                        .write_word(0x100 + i * 8, round + ctx.id.0 as u64)
                        .unwrap();
                }
                ctx.shift(
                    Axis(0).plus(),
                    DmaDescriptor::contiguous(0x100, 4),
                    DmaDescriptor::contiguous(0x200, 4),
                );
            }
            ctx.wedged()
        });
        assert!(results.iter().any(|&w| w), "somebody must have wedged");
        assert_eq!(ledger.dead_links(), vec![(1, 0)]);
        assert!(ledger.culprit_nodes().contains(&1));
    }

    #[test]
    fn parity_evading_burst_is_healed_by_block_checksums() {
        // A paired burst inside one data frame flips each parity class an
        // even number of times, so the frame-level code accepts the wrong
        // word without a reject. Only the end-to-end block checksum
        // catches it — and a whole-block replay heals it.
        let plan = FaultPlan::new(0).with_event(FaultEvent::payload_burst(1, 0, 2, 10, 2));
        let machine = FunctionalMachine::new(ring4())
            .with_faults(plan)
            .with_block_checksums();
        let (results, ledger) = machine.run_with_health(|ctx| {
            for i in 0..8u64 {
                ctx.mem
                    .write_word(0x100 + i * 8, ctx.id.0 as u64 * 100 + i)
                    .unwrap();
            }
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 8),
                DmaDescriptor::contiguous(0x400, 8),
            );
            ctx.mem.read_block(0x400, 8).unwrap()
        });
        assert_eq!(results[2], (0..8).map(|i| 100 + i).collect::<Vec<_>>());
        // The frame parity never fired; the block checksum did.
        assert_eq!(ledger.nodes[2].links[1].rejects, 0);
        assert!(ledger.nodes[2].links[1].block_rejects >= 1);
        assert!(ledger.nodes[1].links[0].block_resends >= 1);
        // After the replay the end-of-run checksum pairings agree again.
        assert!(ledger.all_checksums_ok());
        assert!(ledger.unhealthy_nodes().is_empty());
    }

    #[test]
    fn without_block_checksums_the_burst_is_silent_until_run_end() {
        // Same fault, protection off: the wrong word lands in memory and
        // nothing complains until the end-of-run checksum pairing.
        let plan = FaultPlan::new(0).with_event(FaultEvent::payload_burst(1, 0, 2, 10, 2));
        let machine = FunctionalMachine::new(ring4()).with_faults(plan);
        let (results, ledger) = machine.run_with_health(|ctx| {
            for i in 0..8u64 {
                ctx.mem
                    .write_word(0x100 + i * 8, ctx.id.0 as u64 * 100 + i)
                    .unwrap();
            }
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 8),
                DmaDescriptor::contiguous(0x400, 8),
            );
            ctx.mem.read_block(0x400, 8).unwrap()
        });
        assert_ne!(
            results[2],
            (0..8).map(|i| 100 + i).collect::<Vec<_>>(),
            "the burst must corrupt node 2's payload silently"
        );
        assert_eq!(ledger.nodes[2].links[1].rejects, 0);
        assert!(
            !ledger.all_checksums_ok(),
            "only the end-of-run pairing notices — after the damage is done"
        );
    }

    #[test]
    fn uncorrectable_memory_error_condemns_the_node() {
        // Two flips of one word defeat SEC-DED correction. Even though
        // the application never reads the word, the end-of-run scrub
        // finds it and latches a machine check — casualty evidence.
        let plan = FaultPlan::new(0).with_event(FaultEvent::mem_double_flip(1, 0x100, 3, 41));
        let machine = FunctionalMachine::new(ring4()).with_faults(plan);
        let (_, ledger) = machine.run_with_health(|_ctx| {});
        assert_eq!(ledger.nodes[1].mem_flips, 2);
        assert!(ledger.nodes[1].machine_checks >= 1);
        assert_eq!(ledger.nodes[1].ecc_corrected, 0);
        assert_eq!(ledger.unhealthy_nodes(), vec![1]);
        assert_eq!(ledger.culprit_nodes(), vec![1]);
    }

    #[test]
    fn correctable_soft_error_is_scrubbed_without_casualty() {
        // A single flipped bit is corrected on read; the only evidence is
        // the counter. The node stays healthy.
        let plan = FaultPlan::new(0).with_event(FaultEvent::mem_bit_flip(1, 0x100, 17));
        let machine = FunctionalMachine::new(ring4()).with_faults(plan);
        let (values, ledger) = machine.run_with_health(|ctx| ctx.mem.read_word(0x100).unwrap());
        assert_eq!(values[1], 0, "the read must return the corrected value");
        assert_eq!(ledger.nodes[1].mem_flips, 1);
        assert!(ledger.nodes[1].ecc_corrected >= 1);
        assert_eq!(ledger.nodes[1].machine_checks, 0);
        assert!(ledger.unhealthy_nodes().is_empty());
    }

    #[test]
    fn self_loop_on_extent_one_axis() {
        // A 1-extent axis wires a node to itself; a shift is a local copy.
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 1]));
        let results = machine.run(|ctx| {
            ctx.mem.write_word(0x0, 7 + ctx.id.0 as u64).unwrap();
            ctx.shift(
                Axis(1).plus(),
                DmaDescriptor::contiguous(0x0, 1),
                DmaDescriptor::contiguous(0x80, 1),
            );
            ctx.mem.read_word(0x80).unwrap()
        });
        assert_eq!(results, vec![7, 8]);
    }
}
