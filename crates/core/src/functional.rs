//! The functional execution engine: threads as nodes, channels as wires.
//!
//! Every node of a (logical) machine runs as an OS thread with its own
//! [`NodeMemory`] and [`Scu`]; each uni-directional wire is a channel
//! carrying [`WireMsg`]s. All protocol behaviour — DMA descriptors, the
//! three-in-the-air window, idle receive, parity rejects and resends,
//! checksums, partition-interrupt flooding — is the real `qcdoc-scu` state
//! machine; this module only moves messages and schedules threads.
//!
//! Fault injection: a [`FaultPlan`] flips chosen bits of chosen frames in
//! flight, exercising the automatic-resend path end to end (experiments
//! E7/E10).

use parking_lot::Mutex;
use qcdoc_asic::memory::NodeMemory;
use qcdoc_geometry::{Axis, Direction, NodeCoord, NodeId, TorusShape};
use qcdoc_scu::dma::DmaDescriptor;
use qcdoc_scu::scu::{Scu, ScuEvent, WireMsg};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A single injected fault: flip `bit` of the `frame_index`-th data frame
/// node `node` transmits on `link`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Logical node rank of the sender.
    pub node: u32,
    /// Link index (0..12) the frame leaves on.
    pub link: usize,
    /// Which data frame on that link to corrupt (0-based).
    pub frame_index: u64,
    /// Which bit of the frame to flip.
    pub bit: usize,
}

/// The set of faults to inject during a run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The faults.
    pub faults: Vec<Fault>,
}

/// One node's execution context: its memory, SCU, and wires.
pub struct NodeCtx {
    /// Logical rank.
    pub id: NodeId,
    /// Logical coordinate.
    pub coord: NodeCoord,
    /// Logical machine shape.
    pub shape: TorusShape,
    /// Node memory (EDRAM + DDR) — the SCU DMA engines address this.
    pub mem: NodeMemory,
    scu: Scu,
    tx: Vec<Option<Sender<WireMsg>>>,
    rx: Vec<Option<Receiver<WireMsg>>>,
    events: Vec<ScuEvent>,
    faults: Arc<FaultPlan>,
    data_frames_sent: [u64; 12],
    link_errors: u64,
}

impl NodeCtx {
    /// Logical coordinate of the neighbour in `dir`.
    pub fn neighbour(&self, dir: Direction) -> NodeId {
        self.shape.rank_of(self.shape.neighbour(self.coord, dir))
    }

    /// Whether the machine spans more than one node along `axis`.
    pub fn axis_spans(&self, axis: usize) -> bool {
        axis < self.shape.rank() && self.shape.extent(axis) > 1
    }

    /// Start a DMA send toward `dir`.
    pub fn start_send(&mut self, dir: Direction, desc: DmaDescriptor) {
        self.scu.start_send(dir.link_index(), desc);
    }

    /// Arm a DMA receive for traffic arriving from `dir`.
    pub fn start_recv(&mut self, dir: Direction, desc: DmaDescriptor) {
        self.scu
            .start_recv(dir.link_index(), desc, &mut self.mem)
            .expect("receive DMA arm failed");
    }

    /// Send a supervisor word toward `dir`.
    pub fn send_supervisor(&mut self, dir: Direction, word: u64) {
        self.scu.send_supervisor(dir.link_index(), word);
    }

    /// Raise a partition interrupt from this node.
    pub fn raise_partition_irq(&mut self, bits: u8) {
        self.scu.raise_partition_irq(bits);
    }

    /// Partition-interrupt bits seen so far by this node's SCU.
    pub fn partition_irq_state(&self) -> u8 {
        self.scu.partition_irq_state()
    }

    /// Drain SCU events (supervisor/partition interrupts) observed so far.
    pub fn take_events(&mut self) -> Vec<ScuEvent> {
        std::mem::take(&mut self.events)
    }

    /// Link-level rejects observed by this node's receive units (each one
    /// forced a hardware resend).
    pub fn link_errors(&self) -> u64 {
        let mut total = 0;
        for l in 0..12 {
            total += self.scu.recv_unit(l).rejects();
        }
        total + self.link_errors
    }

    /// One pump of every wire: transmit until each link stalls on its ack
    /// window and drain every arrived message. Returns whether anything
    /// moved.
    pub fn progress(&mut self) -> bool {
        let mut moved = false;
        for link in 0..12 {
            if self.tx[link].is_none() {
                continue;
            }
            while let Some(mut msg) = self
                .scu
                .tx_next(link, &mut self.mem)
                .expect("send DMA memory fault")
            {
                if let WireMsg::Data(wf) = &mut msg {
                    let idx = self.data_frames_sent[link];
                    self.data_frames_sent[link] += 1;
                    for f in &self.faults.faults {
                        if f.node == self.id.0 && f.link == link && f.frame_index == idx {
                            let bits = wf.frame.wire_bits() as usize;
                            wf.frame.corrupt_bit(f.bit % bits);
                        }
                    }
                }
                // Unbounded channel: never blocks the thread (backpressure
                // is the protocol's ack window, not the transport).
                let _ = self.tx[link].as_ref().unwrap().send(msg);
                moved = true;
            }
        }
        for link in 0..12 {
            let Some(rx) = &self.rx[link] else { continue };
            while let Ok(msg) = rx.try_recv() {
                if let Some(ev) = self
                    .scu
                    .rx(link, msg, &mut self.mem)
                    .expect("receive protocol fault")
                {
                    self.events.push(ev);
                }
                moved = true;
            }
        }
        moved
    }

    /// Pump until the given sends and receives complete. Spins with
    /// `yield` at first, then backs off to short sleeps so a waiting node
    /// doesn't starve the nodes doing real work on an oversubscribed host.
    pub fn complete(&mut self, sends: &[Direction], recvs: &[Direction]) {
        let mut idle_spins = 0u32;
        loop {
            let moved = self.progress();
            let sends_done = sends.iter().all(|d| self.scu.send_complete(d.link_index()));
            let recvs_done = recvs.iter().all(|d| self.scu.recv_complete(d.link_index()));
            if sends_done && recvs_done {
                return;
            }
            if moved {
                idle_spins = 0;
            } else {
                idle_spins += 1;
            }
            if idle_spins < 256 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(20));
            }
        }
    }

    /// Convenience: exchange one buffer with both neighbours of an axis
    /// and wait for completion.
    pub fn shift(&mut self, dir: Direction, send: DmaDescriptor, recv: DmaDescriptor) {
        // Data sent toward `dir` arrives at the neighbour from
        // `dir.opposite()`; symmetrically we receive from our own
        // `dir.opposite()` link.
        let from = dir.opposite();
        self.start_recv(from, recv);
        self.start_send(dir, send);
        self.complete(&[dir], &[from]);
    }

    /// End-of-run checksum of the send side of a link.
    pub fn send_checksum(&self, dir: Direction) -> u64 {
        self.scu.send_unit(dir.link_index()).checksum().value()
    }

    /// End-of-run checksum of the receive side of a link.
    pub fn recv_checksum(&self, dir: Direction) -> u64 {
        self.scu.recv_unit(dir.link_index()).checksum().value()
    }
}

/// The functional machine.
pub struct FunctionalMachine {
    shape: TorusShape,
    faults: Arc<FaultPlan>,
    ddr_bytes: u64,
}

impl FunctionalMachine {
    /// A machine with the given logical shape and 128 MB DIMMs.
    pub fn new(shape: TorusShape) -> FunctionalMachine {
        FunctionalMachine {
            shape,
            faults: Arc::new(FaultPlan::default()),
            ddr_bytes: 128 * 1024 * 1024,
        }
    }

    /// Install a fault plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> FunctionalMachine {
        self.faults = Arc::new(plan);
        self
    }

    /// The logical shape.
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }

    /// Run `app` on every node concurrently; returns per-node results in
    /// rank order.
    pub fn run<F, R>(&self, app: F) -> Vec<R>
    where
        F: Fn(&mut NodeCtx) -> R + Sync,
        R: Send,
    {
        let n = self.shape.node_count();
        // Build one channel per (node, outgoing direction); the receiver
        // half goes to the neighbour's opposite-direction slot.
        let mut txs: Vec<Vec<Option<Sender<WireMsg>>>> = (0..n).map(|_| vec![None; 12]).collect();
        let mut rxs: Vec<Vec<Option<Receiver<WireMsg>>>> =
            (0..n).map(|_| vec![None; 12]).collect();
        for node in 0..n {
            let coord = self.shape.coord_of(NodeId(node as u32));
            for axis in 0..self.shape.rank() {
                for dir in [Axis(axis as u8).plus(), Axis(axis as u8).minus()] {
                    let (s, r) = unbounded();
                    let nb = self.shape.rank_of(self.shape.neighbour(coord, dir));
                    txs[node][dir.link_index()] = Some(s);
                    rxs[nb.index()][dir.opposite().link_index()] = Some(r);
                }
            }
        }
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        // Nodes that finish keep pumping the wires until *everyone* has
        // finished — otherwise a neighbour could stall waiting for an ack
        // from a thread that already exited.
        let done = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let mut pairs: Vec<(Vec<Option<Sender<WireMsg>>>, Vec<Option<Receiver<WireMsg>>>)> =
                txs.drain(..).zip(rxs.drain(..)).collect();
            for (node, (tx, rx)) in pairs.drain(..).enumerate().rev() {
                let app = &app;
                let results = &results;
                let done = &done;
                let faults = Arc::clone(&self.faults);
                let shape = self.shape.clone();
                let ddr = self.ddr_bytes;
                scope.spawn(move || {
                    let mut scu = Scu::new();
                    scu.train_all();
                    let mut ctx = NodeCtx {
                        id: NodeId(node as u32),
                        coord: shape.coord_of(NodeId(node as u32)),
                        shape,
                        mem: NodeMemory::new(ddr),
                        scu,
                        tx,
                        rx,
                        events: Vec::new(),
                        faults,
                        data_frames_sent: [0; 12],
                        link_errors: 0,
                    };
                    let r = app(&mut ctx);
                    *results[node].lock() = Some(r);
                    done.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    let mut spins = 0u32;
                    while done.load(std::sync::atomic::Ordering::SeqCst) < n {
                        ctx.progress();
                        spins += 1;
                        if spins < 64 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        }
                    }
                });
            }
        });
        results.into_iter().map(|m| m.into_inner().expect("node produced no result")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring4() -> TorusShape {
        TorusShape::new(&[4])
    }

    #[test]
    fn ring_shift_moves_data_one_hop() {
        // Every node writes its rank, shifts +x; each ends up with its -x
        // neighbour's value.
        let machine = FunctionalMachine::new(ring4());
        let results = machine.run(|ctx| {
            ctx.mem.write_word(0x100, 1000 + ctx.id.0 as u64).unwrap();
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 1),
                DmaDescriptor::contiguous(0x200, 1),
            );
            ctx.mem.read_word(0x200).unwrap()
        });
        assert_eq!(results, vec![1003, 1000, 1001, 1002]);
    }

    #[test]
    fn bidirectional_shift_2d() {
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 2]));
        let results = machine.run(|ctx| {
            ctx.mem.write_word(0x0, ctx.id.0 as u64).unwrap();
            // Send own rank both +x and +y; receive both.
            ctx.start_recv(Axis(0).minus(), DmaDescriptor::contiguous(0x300, 1));
            ctx.start_recv(Axis(1).minus(), DmaDescriptor::contiguous(0x308, 1));
            ctx.start_send(Axis(0).plus(), DmaDescriptor::contiguous(0x0, 1));
            ctx.start_send(Axis(1).plus(), DmaDescriptor::contiguous(0x0, 1));
            ctx.complete(
                &[Axis(0).plus(), Axis(1).plus()],
                &[Axis(0).minus(), Axis(1).minus()],
            );
            (ctx.mem.read_word(0x300).unwrap(), ctx.mem.read_word(0x308).unwrap())
        });
        // Node (x,y) receives from (x-1,y) on x and (x,y-1) on y.
        let shape = TorusShape::new(&[2, 2]);
        for (i, &(fx, fy)) in results.iter().enumerate() {
            let c = shape.coord_of(NodeId(i as u32));
            let xm = shape.rank_of(shape.neighbour(c, Axis(0).minus())).0 as u64;
            let ym = shape.rank_of(shape.neighbour(c, Axis(1).minus())).0 as u64;
            assert_eq!((fx, fy), (xm, ym), "node {i}");
        }
    }

    #[test]
    fn injected_fault_is_healed_by_resend() {
        let plan = FaultPlan {
            faults: vec![Fault { node: 1, link: 0, frame_index: 2, bit: 30 }],
        };
        let machine = FunctionalMachine::new(ring4()).with_faults(plan);
        let results = machine.run(|ctx| {
            for i in 0..8u64 {
                ctx.mem.write_word(0x100 + i * 8, ctx.id.0 as u64 * 100 + i).unwrap();
            }
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 8),
                DmaDescriptor::contiguous(0x400, 8),
            );
            let data = ctx.mem.read_block(0x400, 8).unwrap();
            (data, ctx.link_errors(), ctx.send_checksum(Axis(0).plus()))
        });
        // Node 2 receives node 1's data despite the corrupted frame.
        let (data, errors, _) = &results[2];
        assert_eq!(*data, (0..8).map(|i| 100 + i).collect::<Vec<_>>());
        assert!(*errors >= 1, "the corrupted frame must have been rejected");
        // Checksums: each node's send checksum equals its +x neighbour's
        // receive checksum — verified inside shift by data equality here.
    }

    #[test]
    fn partition_interrupt_floods_the_machine() {
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 2, 2]));
        let results = machine.run(|ctx| {
            if ctx.id.0 == 5 {
                ctx.raise_partition_irq(0b10);
            }
            // Pump for a while to let the flood propagate.
            for _ in 0..200 {
                ctx.progress();
                std::thread::yield_now();
            }
            ctx.partition_irq_state()
        });
        assert!(
            results.iter().all(|&s| s == 0b10),
            "all 8 nodes must see the interrupt: {results:?}"
        );
    }

    #[test]
    fn supervisor_interrupt_reaches_neighbour() {
        let machine = FunctionalMachine::new(ring4());
        let results = machine.run(|ctx| {
            if ctx.id.0 == 0 {
                ctx.send_supervisor(Axis(0).plus(), 0xFEED_F00D);
            }
            for _ in 0..200 {
                ctx.progress();
                std::thread::yield_now();
            }
            ctx.take_events()
        });
        assert!(results[1].contains(&ScuEvent::SupervisorInterrupt(0xFEED_F00D)));
        assert!(results[2].is_empty(), "supervisor packets are point-to-point");
    }

    #[test]
    fn neighbour_and_axis_span_queries() {
        let machine = FunctionalMachine::new(TorusShape::new(&[4, 2]));
        let results = machine.run(|ctx| {
            (
                ctx.neighbour(Axis(0).plus()).0,
                ctx.neighbour(Axis(1).minus()).0,
                ctx.axis_spans(0),
                ctx.axis_spans(1),
                ctx.axis_spans(5),
            )
        });
        // Node 0 at (0,0): +x neighbour is (1,0) = rank 1; -y neighbour is
        // (0,1) = rank 4 (wrap on the 2-ring).
        assert_eq!(results[0].0, 1);
        assert_eq!(results[0].1, 4);
        assert!(results[0].2 && results[0].3);
        assert!(!results[0].4, "axes beyond the rank do not span");
    }

    #[test]
    fn events_drain_once() {
        let machine = FunctionalMachine::new(ring4());
        let results = machine.run(|ctx| {
            if ctx.id.0 == 0 {
                ctx.send_supervisor(Axis(0).plus(), 7);
            }
            for _ in 0..200 {
                ctx.progress();
                std::thread::yield_now();
            }
            let first = ctx.take_events();
            let second = ctx.take_events();
            (first.len(), second.len())
        });
        assert_eq!(results[1], (1, 0), "take_events must drain");
    }

    #[test]
    fn self_loop_on_extent_one_axis() {
        // A 1-extent axis wires a node to itself; a shift is a local copy.
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 1]));
        let results = machine.run(|ctx| {
            ctx.mem.write_word(0x0, 7 + ctx.id.0 as u64).unwrap();
            ctx.shift(
                Axis(1).plus(),
                DmaDescriptor::contiguous(0x0, 1),
                DmaDescriptor::contiguous(0x80, 1),
            );
            ctx.mem.read_word(0x80).unwrap()
        });
        assert_eq!(results, vec![7, 8]);
    }
}
