//! Machine configuration.

use qcdoc_asic::clock::Clock;
use qcdoc_asic::node::NodeConfig;
use qcdoc_geometry::TorusShape;
use qcdoc_scu::global::GlobalTimingConfig;
use qcdoc_scu::timing::LinkTimingConfig;
use serde::{Deserialize, Serialize};

/// Everything needed to instantiate a QCDOC machine (physical shape plus
/// per-node and per-link parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// The physical 6-D torus shape (extent-1 axes allowed).
    pub shape: TorusShape,
    /// Node configuration (clock, memory, calibration).
    pub node: NodeConfig,
    /// Mesh link timing.
    pub link: LinkTimingConfig,
    /// Global-operation timing.
    pub global: GlobalTimingConfig,
}

impl MachineConfig {
    /// A machine with the given 6-D dims at the paper's 128-node benchmark
    /// node configuration (450 MHz).
    pub fn new(dims: &[usize]) -> MachineConfig {
        MachineConfig {
            shape: TorusShape::new(dims),
            node: NodeConfig::bench_450(),
            link: LinkTimingConfig::default(),
            global: GlobalTimingConfig::default(),
        }
    }

    /// The paper's 128-node benchmark machine.
    pub fn bench_128() -> MachineConfig {
        MachineConfig::new(&[4, 4, 2, 2, 2, 1])
    }

    /// Override the clock (360/420/450/500 MHz operating points).
    pub fn with_clock_mhz(mut self, mhz: u32) -> MachineConfig {
        self.node.clock = Clock::from_mhz(mhz);
        self
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.shape.node_count()
    }

    /// Peak speed of the whole machine in flops.
    pub fn peak_flops(&self) -> f64 {
        self.node_count() as f64 * self.node.clock.peak_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machine_matches_paper() {
        let m = MachineConfig::bench_128();
        assert_eq!(m.node_count(), 128);
        assert_eq!(m.node.clock.mhz(), 450);
    }

    #[test]
    fn twelve_k_machine_is_ten_teraflops_plus() {
        let m = MachineConfig::new(&[8, 8, 6, 4, 4, 2]).with_clock_mhz(500);
        assert_eq!(m.node_count(), 12_288);
        assert!(m.peak_flops() >= 10.0e12, "{}", m.peak_flops());
    }

    #[test]
    fn clock_override() {
        let m = MachineConfig::bench_128().with_clock_mhz(360);
        assert_eq!(m.node.clock.mhz(), 360);
    }
}
