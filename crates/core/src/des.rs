//! A discrete-event timing engine for iterative stencil workloads.
//!
//! The analytic model (`crate::perf`) prices one CG iteration in closed
//! form; this engine *plays it out*: every node computes, exchanges faces
//! with its neighbours over links with the real serialization constants,
//! and joins the machine-wide reduction. Because the dependence structure
//! is explicit, it answers questions the closed form cannot:
//!
//! * §2.2's **self-synchronization**: "if a given node stops communicating
//!   with its neighbors, the entire machine will shortly become stalled.
//!   Once the initial blocked link resumes its transfers, the whole
//!   machine will proceed" — a one-time delay costs the machine that
//!   delay *once*, not once per iteration;
//! * "this link-level handshaking also allows one node to get slightly
//!   behind in a uniform operation over the whole machine, say due to a
//!   memory refresh" — a short pause on a node with slack is absorbed
//!   completely;
//! * a persistently slow node paces the whole machine.
//!
//! The engine also cross-checks the analytic model: on a homogeneous
//! machine the two must agree on the iteration time (asserted in tests).

use qcdoc_scu::timing::LinkTimingConfig;
use qcdoc_telemetry::{MetricsRegistry, Phase, Span, TraceSink};
use serde::{Deserialize, Serialize};

/// One node's perturbation: extra cycles added to its compute phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Perturbation {
    /// Node rank.
    pub node: usize,
    /// Iteration the delay strikes (`None` = every iteration).
    pub iteration: Option<usize>,
    /// Extra cycles.
    pub extra_cycles: u64,
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesConfig {
    /// Logical 4-D machine extents.
    pub machine_dims: [usize; 4],
    /// Baseline compute cycles per node per iteration.
    pub compute_cycles: u64,
    /// Per-node compute override (rank → cycles); e.g. a faster node has
    /// headroom that can absorb a pause.
    pub compute_override: Vec<(usize, u64)>,
    /// 64-bit words exchanged per face per iteration.
    pub face_words: u64,
    /// Link timing.
    pub link: LinkTimingConfig,
    /// Cycles for the machine-wide reduction closing each iteration.
    pub global_sum_cycles: u64,
    /// Perturbations to inject.
    pub perturbations: Vec<Perturbation>,
}

impl DesConfig {
    /// A homogeneous machine with no perturbations.
    pub fn homogeneous(
        machine_dims: [usize; 4],
        compute_cycles: u64,
        face_words: u64,
        global_sum_cycles: u64,
    ) -> DesConfig {
        DesConfig {
            machine_dims,
            compute_cycles,
            compute_override: Vec::new(),
            face_words,
            link: LinkTimingConfig::default(),
            global_sum_cycles,
            perturbations: Vec::new(),
        }
    }

    fn nodes(&self) -> usize {
        self.machine_dims.iter().product()
    }

    fn coord(&self, mut rank: usize) -> [usize; 4] {
        let mut c = [0usize; 4];
        for (a, ca) in c.iter_mut().enumerate() {
            *ca = rank % self.machine_dims[a];
            rank /= self.machine_dims[a];
        }
        c
    }

    fn rank(&self, c: [usize; 4]) -> usize {
        let d = self.machine_dims;
        ((c[3] * d[2] + c[2]) * d[1] + c[1]) * d[0] + c[0]
    }

    fn neighbours(&self, rank: usize) -> Vec<usize> {
        let c = self.coord(rank);
        let mut out = Vec::new();
        for a in 0..4 {
            let n = self.machine_dims[a];
            if n <= 1 {
                continue;
            }
            for step in [1, n - 1] {
                let mut nc = c;
                nc[a] = (c[a] + step) % n;
                out.push(self.rank(nc));
            }
        }
        out
    }

    fn compute_of(&self, rank: usize, iteration: usize) -> u64 {
        let mut c = self
            .compute_override
            .iter()
            .find(|(r, _)| *r == rank)
            .map(|&(_, v)| v)
            .unwrap_or(self.compute_cycles);
        for p in &self.perturbations {
            if p.node == rank && p.iteration.is_none_or(|i| i == iteration) {
                c += p.extra_cycles;
            }
        }
        c
    }
}

/// The result of a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesResult {
    /// Cycle at which the whole machine finished all iterations.
    pub total_cycles: u64,
    /// Machine-wide finish time of each iteration.
    pub iteration_finish: Vec<u64>,
}

impl DesResult {
    /// Steady-state cycles per iteration (from the last two iterations).
    pub fn steady_iteration_cycles(&self) -> u64 {
        match self.iteration_finish.len() {
            0 => 0,
            1 => self.iteration_finish[0],
            n => self.iteration_finish[n - 1] - self.iteration_finish[n - 2],
        }
    }
}

/// Play out `iterations` iterations of compute → face exchange → global
/// reduction.
pub fn run(config: &DesConfig, iterations: usize) -> DesResult {
    let n = config.nodes();
    let face_cycles = config.link.transfer_cycles(config.face_words).count();
    let neighbours: Vec<Vec<usize>> = (0..n).map(|r| config.neighbours(r)).collect();
    let mut ready = vec![0u64; n]; // when each node may start the next iteration
    let mut finishes = Vec::with_capacity(iterations);
    for it in 0..iterations {
        // Compute phase ends per node.
        let compute_end: Vec<u64> = (0..n)
            .map(|r| ready[r] + config.compute_of(r, it))
            .collect();
        // A node has its halo when every neighbour's face has landed; each
        // face leaves when the neighbour's compute ends.
        let halo_done: Vec<u64> = (0..n)
            .map(|r| {
                neighbours[r]
                    .iter()
                    .map(|&m| compute_end[m] + face_cycles)
                    .chain(std::iter::once(compute_end[r]))
                    .max()
                    .expect("nonempty")
            })
            .collect();
        // The dimension-ordered global sum synchronizes the machine: it
        // completes (everywhere) a fixed latency after the last node joins.
        let sum_done = halo_done.iter().max().copied().expect("nodes") + config.global_sum_cycles;
        ready.fill(sum_done);
        finishes.push(sum_done);
    }
    DesResult {
        total_cycles: *finishes.last().unwrap_or(&0),
        iteration_finish: finishes,
    }
}

/// Incoming faces of `rank`: `(sender, sender_link, receiver_link)` per
/// spanning axis and direction, using the `Direction::link_index`
/// convention (plus = `2a`, minus = `2a + 1`).
fn incoming_faces(config: &DesConfig, rank: usize) -> Vec<(usize, usize, usize)> {
    let c = config.coord(rank);
    let mut out = Vec::new();
    for a in 0..4 {
        let n = config.machine_dims[a];
        if n <= 1 {
            continue;
        }
        // The -a neighbour sends toward +a on its plus link (2a); the +a
        // neighbour sends toward -a on its minus link (2a + 1). A frame
        // sent on link `l` lands on the receiver's opposite link.
        let mut minus = c;
        minus[a] = (c[a] + n - 1) % n;
        out.push((config.rank(minus), 2 * a, 2 * a + 1));
        let mut plus = c;
        plus[a] = (c[a] + 1) % n;
        out.push((config.rank(plus), 2 * a + 1, 2 * a));
    }
    out
}

/// Play out `iterations` iterations under a fault plan, returning both the
/// timing result and the machine-health ledger a host sweep would read.
///
/// Fault semantics in the timing domain:
///
/// * **Bit errors** (scheduled flips and sustained error rates) cost wire
///   time: each corrupted frame triggers a go-back-N rewind, so the face
///   effectively carries `WINDOW` extra words per error. The error count
///   per `(node, link, iteration)` is a deterministic seeded draw.
/// * **Stalls** delay one link's face by the scheduled cycles — the
///   self-synchronization story of §2.2 plays out from there.
/// * **Node pauses** extend the node's compute phase.
/// * **Dead links and node crashes** are fatal: the machine self-stalls
///   (§2.2 — "the entire machine will shortly become stalled"), so the run
///   stops at the iteration the fault strikes and reports it in the
///   ledger instead of hanging. `DesResult::iteration_finish` is then
///   shorter than `iterations`.
///
/// The DES moves no payload bytes, so link checksums stay zero and
/// `checksum_ok` stays `None`; word counts, injected-error counts, stall
/// time, liveness, and the fingerprint are all fully deterministic.
pub fn run_with_faults(
    config: &DesConfig,
    iterations: usize,
    plan: &qcdoc_fault::FaultPlan,
) -> (DesResult, qcdoc_fault::HealthLedger) {
    run_traced(config, iterations, plan, None)
}

/// Telemetry hooks for a traced DES run: spans land in `sink`, aggregate
/// counters and the health-ledger readout land in `metrics`.
pub struct DesTelemetry<'a> {
    /// Receives one compute/comms/global-sum span per node per iteration.
    pub sink: &'a mut dyn TraceSink,
    /// Receives `des_*` series plus the ledger's gauge export.
    pub metrics: &'a mut MetricsRegistry,
}

impl std::fmt::Debug for DesTelemetry<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesTelemetry").finish_non_exhaustive()
    }
}

/// [`run_with_faults`] with cycle-stamped tracing: each iteration of each
/// node decomposes into a `des.compute` span (ready → compute end), a
/// `des.comms` span (compute end → halo complete) and a `des.gsum` span
/// (halo complete → reduction done) — the §4 efficiency decomposition,
/// played out on the event clock. Timing and ledger are bit-identical to
/// the untraced run.
pub fn run_traced(
    config: &DesConfig,
    iterations: usize,
    plan: &qcdoc_fault::FaultPlan,
    mut telemetry: Option<DesTelemetry<'_>>,
) -> (DesResult, qcdoc_fault::HealthLedger) {
    use qcdoc_fault::{FaultClock, HealthLedger, Liveness};
    use qcdoc_scu::link::WINDOW;

    let n = config.nodes();
    let wired = 2 * config.machine_dims.iter().filter(|&&d| d > 1).count();
    let clock = FaultClock::resolve(plan, n as u32, wired.max(2));
    let mut ledger = HealthLedger::new(n);
    let incoming: Vec<Vec<(usize, usize, usize)>> =
        (0..n).map(|r| incoming_faces(config, r)).collect();

    // The iteration at which an unrecoverable fault stops the machine.
    let mut fatal_at = usize::MAX;
    for r in 0..n {
        if let Some(it) = clock.crash_iteration(r as u32) {
            fatal_at = fatal_at.min(it);
            ledger.node_mut(r as u32).liveness = Liveness::Crashed { iteration: it };
        }
        for l in 0..12 {
            if let Some(from_seq) = clock.link_dead_from(r as u32, l) {
                let words = config.face_words.max(1);
                fatal_at = fatal_at.min((from_seq / words) as usize);
                ledger.node_mut(r as u32).links[l].dead = true;
            }
        }
        // Analytic ECC verdict: the DES has no real memory, but SEC-DED's
        // outcome is a pure function of how many bits struck each word —
        // one flip is corrected by the scrub, two or more in the same
        // word defeat the Hamming distance and latch a machine check.
        let faults = clock.mem_faults(r as u32);
        let nh = ledger.node_mut(r as u32);
        nh.mem_flips = faults.len() as u64;
        let mut by_addr: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for (addr, _) in faults {
            *by_addr.entry(addr).or_insert(0) += 1;
        }
        for &flips in by_addr.values() {
            if flips == 1 {
                nh.ecc_corrected += 1;
            } else {
                nh.machine_checks += 1;
            }
        }
    }

    let mut ready = vec![0u64; n];
    let mut finishes = Vec::with_capacity(iterations.min(fatal_at));
    for it in 0..iterations.min(fatal_at) {
        let compute_end: Vec<u64> = (0..n)
            .map(|r| ready[r] + config.compute_of(r, it) + clock.pause_cycles(r as u32, it))
            .collect();
        let mut halo_done = compute_end.clone();
        for r in 0..n {
            for &(m, send_link, recv_link) in &incoming[r] {
                let errors = clock.wire_errors(m as u32, send_link, it, config.face_words);
                let effective = config.face_words + errors * WINDOW as u64;
                let stall = clock.stall_cycles(m as u32, send_link, it);
                let face = config.link.transfer_cycles(effective).count() + stall;
                halo_done[r] = halo_done[r].max(compute_end[m] + face);
                let mh = ledger.node_mut(m as u32);
                mh.links[send_link].sent_words += config.face_words;
                mh.links[send_link].injected += errors;
                mh.links[send_link].resends += errors * WINDOW as u64;
                mh.links[send_link].stall_cycles += stall;
                let rh = ledger.node_mut(r as u32);
                rh.links[recv_link].received_words += config.face_words;
                rh.links[recv_link].rejects += errors;
            }
        }
        let sum_done = halo_done.iter().max().copied().expect("nodes") + config.global_sum_cycles;
        if let Some(t) = telemetry.as_mut() {
            for r in 0..n {
                for (name, phase, begin, end) in [
                    ("des.compute", Phase::Compute, ready[r], compute_end[r]),
                    ("des.comms", Phase::Comms, compute_end[r], halo_done[r]),
                    ("des.gsum", Phase::GlobalSum, halo_done[r], sum_done),
                ] {
                    t.sink.record(Span {
                        name,
                        node: r as u32,
                        phase,
                        begin,
                        end,
                        depth: 0,
                        arg: it as u64,
                    });
                }
            }
            t.metrics.counter_add("des_iterations", &[], 1);
            let prev = finishes.last().copied().unwrap_or(0);
            t.metrics
                .observe("des_iteration_cycles", &[], sum_done - prev);
        }
        ready.iter_mut().for_each(|t| *t = sum_done);
        finishes.push(sum_done);
    }
    let result = DesResult {
        total_cycles: *finishes.last().unwrap_or(&0),
        iteration_finish: finishes,
    };
    if let Some(t) = telemetry.as_mut() {
        t.metrics
            .gauge_set("des_total_cycles", &[], result.total_cycles as f64);
        ledger.export_metrics(t.metrics);
    }
    (result, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DesConfig {
        // 16 nodes, 4^4-local-volume-ish numbers.
        DesConfig::homogeneous([2, 2, 2, 2], 800_000, 1_536, 3_000)
    }

    #[test]
    fn homogeneous_iteration_time_is_compute_plus_face_plus_sum() {
        let cfg = base();
        let r = run(&cfg, 5);
        let face = cfg.link.transfer_cycles(cfg.face_words).count();
        let expect = cfg.compute_cycles + face + cfg.global_sum_cycles;
        assert_eq!(r.steady_iteration_cycles(), expect);
        assert_eq!(r.total_cycles, 5 * expect);
    }

    #[test]
    fn agrees_with_analytic_model_without_overlap() {
        // Configure the analytic model with zero overlap and compare.
        use crate::perf::{Calibration, DiracPerf};
        use qcdoc_lattice::counts::Action;
        let mut perf = DiracPerf::paper_bench();
        perf.calibration = Calibration {
            comm_overlap: 0.0,
            mem_overlap_edram: 0.75,
            ..Calibration::default()
        };
        let report = perf.evaluate(Action::Wilson);
        // Feed the DES the same pieces: local cycles, per-face words (one
        // direction's worth — faces move concurrently), and the global sum.
        let local = report.total_cycles - report.comm_cycles - report.gsum_cycles;
        let cfg = DesConfig {
            machine_dims: perf.logical_dims,
            compute_cycles: local,
            compute_override: vec![],
            // comm_cycles covers both operator applications; DES charges
            // one face exchange per iteration, so hand it the total.
            face_words: report.comm_cycles / 72,
            link: perf.machine.link,
            global_sum_cycles: report.gsum_cycles,
            perturbations: vec![],
        };
        let des = run(&cfg, 3);
        let rel = (des.steady_iteration_cycles() as f64 - report.total_cycles as f64).abs()
            / report.total_cycles as f64;
        assert!(
            rel < 0.02,
            "DES {} vs analytic {}",
            des.steady_iteration_cycles(),
            report.total_cycles
        );
    }

    #[test]
    fn one_time_stall_costs_the_machine_once() {
        // §2.2: a blocked link stalls the machine; when it resumes, the
        // machine proceeds — the delay is paid once, not per iteration.
        let clean = run(&base(), 10).total_cycles;
        let mut cfg = base();
        let delta = 500_000u64;
        cfg.perturbations.push(Perturbation {
            node: 5,
            iteration: Some(2),
            extra_cycles: delta,
        });
        let stalled = run(&cfg, 10).total_cycles;
        assert_eq!(
            stalled,
            clean + delta,
            "a one-time stall must cost exactly itself"
        );
    }

    #[test]
    fn persistently_slow_node_paces_the_machine() {
        let clean = run(&base(), 10).total_cycles;
        let mut cfg = base();
        let delta = 50_000u64;
        cfg.perturbations.push(Perturbation {
            node: 3,
            iteration: None,
            extra_cycles: delta,
        });
        let slowed = run(&cfg, 10).total_cycles;
        assert_eq!(
            slowed,
            clean + 10 * delta,
            "every iteration waits for the slow node"
        );
    }

    #[test]
    fn short_pause_on_a_node_with_slack_is_absorbed() {
        // §2.2: "allows one node to get slightly behind … say due to a
        // memory refresh. Provided the delay … is short enough, the
        // majority of the machine will not see this pause." Give node 7
        // headroom (it computes faster), then pause it by less than that
        // headroom: total time must not change at all.
        let mut cfg = base();
        cfg.compute_override.push((7, cfg.compute_cycles - 40_000));
        let clean = run(&cfg, 10).total_cycles;
        let mut paused = cfg.clone();
        paused.perturbations.push(Perturbation {
            node: 7,
            iteration: Some(4),
            extra_cycles: 30_000,
        });
        assert_eq!(
            run(&paused, 10).total_cycles,
            clean,
            "refresh pause must be invisible"
        );
        // But exceeding the headroom shows up.
        let mut too_long = cfg.clone();
        too_long.perturbations.push(Perturbation {
            node: 7,
            iteration: Some(4),
            extra_cycles: 60_000,
        });
        assert!(run(&too_long, 10).total_cycles > clean);
    }

    #[test]
    fn skipping_comm_on_serial_axes() {
        // Machine extent 1 on every axis: a single node, no faces.
        let cfg = DesConfig::homogeneous([1, 1, 1, 1], 1000, 999, 7);
        let r = run(&cfg, 2);
        assert_eq!(r.steady_iteration_cycles(), 1007);
    }

    mod faults {
        use super::*;
        use qcdoc_fault::{FaultEvent, FaultPlan, Liveness};

        #[test]
        fn empty_plan_matches_the_plain_run() {
            let cfg = base();
            let (faulty, ledger) = run_with_faults(&cfg, 5, &FaultPlan::new(1));
            assert_eq!(faulty, run(&cfg, 5));
            assert_eq!(ledger.total_injected(), 0);
            assert!(ledger.unhealthy_nodes().is_empty());
            // Word accounting: every node exchanges one face per spanning
            // direction per iteration.
            assert_eq!(ledger.nodes[0].links[0].sent_words, 5 * cfg.face_words);
            assert_eq!(ledger.nodes[0].links[1].received_words, 5 * cfg.face_words);
        }

        #[test]
        fn sustained_error_rate_costs_wire_time_deterministically() {
            let cfg = base();
            let clean = run(&cfg, 20).total_cycles;
            let plan = FaultPlan::new(7).with_event(FaultEvent::bit_error_rate(5, 0, 0.02));
            let (a, la) = run_with_faults(&cfg, 20, &plan);
            let (b, lb) = run_with_faults(&cfg, 20, &plan);
            assert_eq!(a, b, "same seed must give identical timing");
            assert_eq!(la.fingerprint(), lb.fingerprint(), "same seed, same ledger");
            assert!(
                la.total_injected() > 0,
                "a 2% BER over 20 iterations must fire"
            );
            assert_eq!(la.total_resends(), la.total_injected() * 3);
            assert!(a.total_cycles > clean, "resends must cost cycles");
            // A different seed draws a different error pattern.
            let (_, lc) = run_with_faults(
                &cfg,
                20,
                &FaultPlan::new(8).with_event(FaultEvent::bit_error_rate(5, 0, 0.02)),
            );
            assert_ne!(la.fingerprint(), lc.fingerprint());
        }

        #[test]
        fn analytic_ecc_verdict_splits_flips_by_word() {
            // One flip in one word is corrected; two flips in another word
            // defeat SEC-DED and condemn the node — same verdicts the
            // functional engine's real memory model reaches.
            let cfg = base();
            let plan = FaultPlan::new(0)
                .with_event(FaultEvent::mem_bit_flip(3, 0x100, 7))
                .with_event(FaultEvent::mem_double_flip(3, 0x200, 3, 41));
            let (_, ledger) = run_with_faults(&cfg, 5, &plan);
            assert_eq!(ledger.nodes[3].mem_flips, 3);
            assert_eq!(ledger.nodes[3].ecc_corrected, 1);
            assert_eq!(ledger.nodes[3].machine_checks, 1);
            assert_eq!(ledger.unhealthy_nodes(), vec![3]);
            assert_eq!(ledger.culprit_nodes(), vec![3]);
        }

        #[test]
        fn dead_link_stops_the_run_and_is_reported() {
            let cfg = base();
            // The wire dies mid-run: iteration 3 of the word schedule.
            let from_seq = 3 * cfg.face_words;
            let plan = FaultPlan::new(0).with_event(FaultEvent::dead_link(2, 1, from_seq));
            let (r, ledger) = run_with_faults(&cfg, 10, &plan);
            assert_eq!(
                r.iteration_finish.len(),
                3,
                "the machine stalls at iteration 3"
            );
            assert_eq!(ledger.dead_links(), vec![(2, 1)]);
            assert_eq!(ledger.unhealthy_nodes(), vec![2]);
        }

        #[test]
        fn crash_and_pause_semantics() {
            let cfg = base();
            let crash = FaultPlan::new(0).with_event(FaultEvent::node_crash(4, 2));
            let (r, ledger) = run_with_faults(&cfg, 10, &crash);
            assert_eq!(r.iteration_finish.len(), 2);
            assert_eq!(ledger.nodes[4].liveness, Liveness::Crashed { iteration: 2 });
            // A one-iteration pause behaves exactly like a Perturbation.
            let pause = FaultPlan::new(0).with_event(FaultEvent::node_pause(5, Some(1), 40_000));
            let (p, _) = run_with_faults(&cfg, 10, &pause);
            assert_eq!(p.total_cycles, run(&cfg, 10).total_cycles + 40_000);
        }

        #[test]
        fn traced_run_matches_untraced_and_partitions_the_clock() {
            use qcdoc_telemetry::{MetricsRegistry, RingSink};
            let cfg = base();
            let plan = FaultPlan::new(7).with_event(FaultEvent::bit_error_rate(5, 0, 0.02));
            let (plain, ledger) = run_with_faults(&cfg, 6, &plan);
            let mut sink = RingSink::new(1 << 16);
            let mut metrics = MetricsRegistry::new();
            let (traced, tledger) = run_traced(
                &cfg,
                6,
                &plan,
                Some(DesTelemetry {
                    sink: &mut sink,
                    metrics: &mut metrics,
                }),
            );
            assert_eq!(plain, traced, "tracing must not perturb the timing");
            assert_eq!(ledger.fingerprint(), tledger.fingerprint());
            let spans = sink.drain();
            assert_eq!(spans.len(), 3 * 16 * 6, "3 spans per node per iteration");
            // Per node, the spans tile [0, total_cycles] with no gaps.
            let mut clock = [0u64; 16];
            for s in &spans {
                assert_eq!(s.begin, clock[s.node as usize], "gap in node timeline");
                assert!(s.end >= s.begin);
                clock[s.node as usize] = s.end;
            }
            assert!(clock.iter().all(|&c| c == traced.total_cycles));
            assert_eq!(metrics.counter("des_iterations", &[]), 6);
            assert_eq!(
                metrics.gauge("des_total_cycles", &[]),
                Some(traced.total_cycles as f64)
            );
            // The ledger export rode along.
            assert!(metrics.gauge("machine_total_resends", &[]).is_some());
        }

        #[test]
        fn link_stall_is_paid_once() {
            let cfg = base();
            let plan = FaultPlan::new(0).with_event(FaultEvent::stall(1, 0, 2, 75_000));
            let (r, ledger) = run_with_faults(&cfg, 10, &plan);
            assert_eq!(r.total_cycles, run(&cfg, 10).total_cycles + 75_000);
            assert_eq!(ledger.nodes[1].links[0].stall_cycles, 75_000);
        }
    }
}
