//! The sharded execution engine: worker threads multiplex virtual nodes.
//!
//! The thread-per-node [`FunctionalMachine`](crate::FunctionalMachine)
//! tops out around a few hundred nodes — each OS thread costs a stack and
//! a scheduler slot, and the paper's full machine is 12,288 nodes. This
//! engine keeps the *exact same* per-node state ([`NodeCtx`]: real SCU
//! state machine, node memory, fault tap, telemetry) but runs each node as
//! a cooperative state machine — a compiler-generated future — and
//! round-robins a contiguous shard of them on each worker thread.
//!
//! Node programs are `async` and must use the non-blocking waits
//! ([`NodeCtx::complete_async`], [`NodeCtx::shift_async`], and the
//! `*_async` collectives/solvers layered on them); the blocking forms
//! would stall the whole shard. Everything below the wait loop — DMA
//! descriptors, the three-in-the-air window, parity rejects and resends,
//! block checksums, fault injection, flight recording — is byte-for-byte
//! the same code both engines share, so a program produces bit-identical
//! memory and telemetry on either engine.
//!
//! Scheduling is polling-based: a worker sweeps its shard, polling every
//! live future once, then checks the shard's shared *pulse* flag (set by
//! any wire movement inside [`NodeCtx::progress`]). A sweeping shard whose
//! wires are all silent backs off exactly like an idle node thread does —
//! yields first, then 20 µs sleeps — so a wedged machine converges to
//! sleeping workers instead of a spinning core.

use parking_lot::Mutex;
use qcdoc_fault::{FaultClock, FaultPlan, HealthLedger, NodeHealth};
use qcdoc_geometry::TorusShape;
use qcdoc_scu::RetryPolicy;
use qcdoc_telemetry::{FlightEvent, MachineTelemetry, MetricsRegistry, Span};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use crate::functional::{build_fabric, yield_once, NodeCtx, NodeCtxConfig, TelemetryConfig};

/// Idle pump rounds before a wedge, mirrored from the thread engine.
const WEDGE_IDLE_SPINS: u32 = 50_000;

/// The sharded machine: same builder surface as
/// [`FunctionalMachine`](crate::FunctionalMachine), plus a worker count.
///
/// A tiny machine runs in a doctest — two workers multiplexing four
/// virtual nodes, summing their ranks machine-wide over the real SCU
/// link protocol:
///
/// ```
/// use qcdoc_core::comm::global_sum_f64_async;
/// use qcdoc_core::sharded::ShardedMachine;
/// use qcdoc_geometry::TorusShape;
///
/// let machine = ShardedMachine::new(TorusShape::new(&[4, 1, 1, 1])).with_workers(2);
/// let sums = machine.run(async |ctx| global_sum_f64_async(ctx, ctx.id.0 as f64).await);
/// // Every node holds the same dimension-ordered sum 0 + 1 + 2 + 3.
/// assert_eq!(sums, vec![6.0; 4]);
/// ```
///
/// The full 12,288-node machine uses the same two lines — just the
/// paper's shape:
///
/// ```no_run
/// # use qcdoc_core::sharded::ShardedMachine;
/// # use qcdoc_geometry::TorusShape;
/// let ranks = ShardedMachine::new(TorusShape::new(&[8, 8, 8, 24])).run(async |ctx| ctx.id.0);
/// assert_eq!(ranks.len(), 12_288);
/// ```
pub struct ShardedMachine {
    shape: TorusShape,
    faults: FaultPlan,
    ddr_bytes: u64,
    telemetry: Option<TelemetryConfig>,
    retry_policy: RetryPolicy,
    wedge_spins: u32,
    block_checksums: bool,
    workers: usize,
}

impl ShardedMachine {
    /// A machine with the given logical shape, 128 MB DIMMs, and one
    /// worker per available host core.
    pub fn new(shape: TorusShape) -> ShardedMachine {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        ShardedMachine {
            shape,
            faults: FaultPlan::default(),
            ddr_bytes: 128 * 1024 * 1024,
            telemetry: None,
            retry_policy: RetryPolicy::default(),
            wedge_spins: WEDGE_IDLE_SPINS,
            block_checksums: false,
            workers,
        }
    }

    /// Turn on end-to-end DMA block checksums (see
    /// [`FunctionalMachine::with_block_checksums`](crate::FunctionalMachine::with_block_checksums)).
    pub fn with_block_checksums(mut self) -> ShardedMachine {
        self.block_checksums = true;
        self
    }

    /// Install a fault plan (compiled against this machine when a run
    /// starts).
    pub fn with_faults(mut self, plan: FaultPlan) -> ShardedMachine {
        self.faults = plan;
        self
    }

    /// Install a link retry policy on every send unit.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> ShardedMachine {
        self.retry_policy = policy;
        self
    }

    /// Override the wedge watchdog (idle pump rounds on a silent wire
    /// before a node gives up). The cooperative wait loop additionally
    /// requires the equivalent wall-clock silence, so the effective
    /// timeout matches the thread engine's.
    pub fn with_wedge_timeout(mut self, spins: u32) -> ShardedMachine {
        self.wedge_spins = spins.max(1);
        self
    }

    /// Enable per-node telemetry, collected by
    /// [`ShardedMachine::run_with_telemetry`].
    pub fn with_telemetry(mut self, cfg: TelemetryConfig) -> ShardedMachine {
        self.telemetry = Some(cfg);
        self
    }

    /// Override the worker-thread count (default: available parallelism).
    /// Nodes are partitioned contiguously: worker `w` of `W` drives ranks
    /// `[w·n/W, (w+1)·n/W)`.
    pub fn with_workers(mut self, workers: usize) -> ShardedMachine {
        self.workers = workers.max(1);
        self
    }

    /// The logical shape.
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }

    /// Swap the fabric under the machine — a recovery repartition, same
    /// contract as the thread engine's.
    pub(crate) fn replace_fabric(&mut self, shape: TorusShape, faults: FaultPlan) {
        self.shape = shape;
        self.faults = faults;
    }

    /// Run the async node program on every node; returns per-node results
    /// in rank order.
    pub fn run<F, R>(&self, app: F) -> Vec<R>
    where
        F: AsyncFn(&mut NodeCtx) -> R + Sync,
        R: Send,
    {
        self.run_inner(app)
            .into_iter()
            .map(|(r, _, _, _)| r)
            .collect()
    }

    /// Like [`ShardedMachine::run`], but also collect every node's SCU
    /// counters and checksums into a finalized [`HealthLedger`].
    pub fn run_with_health<F, R>(&self, app: F) -> (Vec<R>, HealthLedger)
    where
        F: AsyncFn(&mut NodeCtx) -> R + Sync,
        R: Send,
    {
        let mut ledger = HealthLedger::new(self.shape.node_count());
        let mut results = Vec::with_capacity(self.shape.node_count());
        for (node, (r, health, _, _)) in self.run_inner(app).into_iter().enumerate() {
            results.push(r);
            *ledger.node_mut(node as u32) = health;
        }
        ledger.finalize(&self.shape);
        (results, ledger)
    }

    /// Like [`ShardedMachine::run_with_health`], but additionally collect
    /// every node's metrics and cycle-stamped spans.
    pub fn run_with_telemetry<F, R>(&self, app: F) -> (Vec<R>, HealthLedger, MachineTelemetry)
    where
        F: AsyncFn(&mut NodeCtx) -> R + Sync,
        R: Send,
    {
        let mut ledger = HealthLedger::new(self.shape.node_count());
        let mut telemetry = MachineTelemetry::new();
        let mut results = Vec::with_capacity(self.shape.node_count());
        for (node, (r, health, (metrics, spans), flight)) in
            self.run_inner(app).into_iter().enumerate()
        {
            results.push(r);
            *ledger.node_mut(node as u32) = health;
            telemetry.absorb_node(node as u32, metrics, spans);
            telemetry.absorb_flight(flight);
        }
        ledger.finalize(&self.shape);
        ledger.export_metrics(&mut telemetry.metrics);
        (results, ledger, telemetry)
    }

    #[allow(clippy::type_complexity)]
    fn run_inner<F, R>(
        &self,
        app: F,
    ) -> Vec<(
        R,
        NodeHealth,
        (MetricsRegistry, Vec<Span>),
        Vec<FlightEvent>,
    )>
    where
        F: AsyncFn(&mut NodeCtx) -> R + Sync,
        R: Send,
    {
        let n = self.shape.node_count();
        let workers = self.workers.min(n).max(1);
        let (mut txs, mut rxs) = build_fabric(&self.shape);
        let clock = Arc::new(FaultClock::resolve(
            &self.faults,
            n as u32,
            2 * self.shape.rank(),
        ));
        type NodeOutput<R> = (
            R,
            NodeHealth,
            (MetricsRegistry, Vec<Span>),
            Vec<FlightEvent>,
        );
        let results: Vec<Mutex<Option<NodeOutput<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cfg = NodeCtxConfig {
            shape: self.shape.clone(),
            ddr_bytes: self.ddr_bytes,
            telemetry: self.telemetry,
            retry_policy: self.retry_policy,
            wedge_spins: self.wedge_spins,
            block_checksums: self.block_checksums,
        };
        // Global completion count: a node's driver keeps pumping its wires
        // after its program finishes until *everyone* has finished, so no
        // neighbour stalls waiting for an ack from a retired node. Panics
        // count too (the worker bumps it when it catches one), or the
        // survivors would pump forever and the panic never surface.
        let done = AtomicUsize::new(0);
        // First caught panic payload, re-raised from the calling thread
        // after the scope so the caller sees the original panic (letting
        // the worker itself unwind would reach `thread::scope`'s generic
        // "a scoped thread panicked" and lose the payload).
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        // Contiguous shard boundaries: worker w drives [w*n/W, (w+1)*n/W).
        let mut shards: Vec<Vec<(usize, NodeWires)>> = (0..workers).map(|_| Vec::new()).collect();
        for (node, pair) in txs.drain(..).zip(rxs.drain(..)).enumerate() {
            shards[node * workers / n].push((node, pair));
        }
        std::thread::scope(|scope| {
            for shard in shards.drain(..) {
                let app = &app;
                let results = &results;
                let done = &done;
                let cfg = &cfg;
                let clock = &clock;
                let panic_slot = &panic_slot;
                scope.spawn(move || {
                    if let Some(payload) = drive_shard(shard, app, results, done, cfg, clock, n) {
                        panic_slot.lock().get_or_insert(payload);
                    }
                });
            }
        });
        if let Some(payload) = panic_slot.into_inner() {
            std::panic::resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|m| m.into_inner().expect("node produced no result"))
            .collect()
    }
}

/// One node's channel ends, as produced by `build_fabric`.
type NodeWires = (
    Vec<Option<crossbeam::channel::Sender<qcdoc_scu::scu::WireMsg>>>,
    Vec<Option<crossbeam::channel::Receiver<qcdoc_scu::scu::WireMsg>>>,
);

/// Worker body: build one driver future per assigned node and poll them
/// round-robin until every driver has retired. Returns the first caught
/// node-program panic, if any, for the caller to re-raise.
///
/// Driver futures are constructed *inside* the worker thread from `Send`
/// seeds (rank + channel ends), so the futures themselves — which hold a
/// `&mut NodeCtx` across await points — never need to be `Send`.
#[allow(clippy::type_complexity)]
fn drive_shard<F, R>(
    shard: Vec<(usize, NodeWires)>,
    app: &F,
    results: &[Mutex<
        Option<(
            R,
            NodeHealth,
            (MetricsRegistry, Vec<Span>),
            Vec<FlightEvent>,
        )>,
    >],
    done: &AtomicUsize,
    cfg: &NodeCtxConfig,
    clock: &Arc<FaultClock>,
    n: usize,
) -> Option<Box<dyn std::any::Any + Send>>
where
    F: AsyncFn(&mut NodeCtx) -> R + Sync,
    R: Send,
{
    // Shared wire-activity flag for this shard: any `progress()` that
    // moves a message sets it; the worker reads-and-clears it once per
    // sweep to decide whether the whole shard has gone silent.
    let pulse = Arc::new(AtomicBool::new(false));
    let mut drivers: Vec<Option<Pin<Box<dyn Future<Output = ()> + '_>>>> = shard
        .into_iter()
        .map(|(node, (tx, rx))| {
            let pulse = Arc::clone(&pulse);
            let clock = Arc::clone(clock);
            let fut = async move {
                let mut ctx = NodeCtx::build(node as u32, cfg, tx, rx, clock, Some(pulse));
                ctx.apply_mem_faults();
                let r = app(&mut ctx).await;
                let (snapshot, parts, flight) = ctx.finish_run();
                *results[node].lock() = Some((r, snapshot, parts, flight));
                done.fetch_add(1, Ordering::SeqCst);
                // Keep pumping until the whole machine has finished, like
                // the thread engine's post-run pump loop.
                while done.load(Ordering::SeqCst) < n {
                    ctx.progress();
                    yield_once().await;
                }
            };
            Some(Box::pin(fut) as Pin<Box<dyn Future<Output = ()> + '_>>)
        })
        .collect();
    let mut cx = Context::from_waker(Waker::noop());
    let mut live = drivers.len();
    let mut idle_sweeps = 0u32;
    // A panicked node program must not take its shard-mates down with it:
    // catch the unwind, retire that driver (its NodeCtx drops, closing its
    // wires, so neighbours wedge rather than hang), let the rest of the
    // machine drain, and hand the payload back for a post-scope re-raise.
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
    while live > 0 {
        for slot in drivers.iter_mut() {
            let Some(fut) = slot else { continue };
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                fut.as_mut().poll(&mut cx)
            })) {
                Ok(Poll::Ready(())) => {
                    *slot = None;
                    live -= 1;
                }
                Ok(Poll::Pending) => {}
                Err(payload) => {
                    *slot = None;
                    live -= 1;
                    done.fetch_add(1, Ordering::SeqCst);
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        // Same idle backoff a node thread uses, but for the whole shard:
        // only when no wire anywhere in the shard moved during the sweep.
        if pulse.swap(false, Ordering::Relaxed) {
            idle_sweeps = 0;
        } else {
            idle_sweeps += 1;
            if idle_sweeps < 256 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(20));
            }
        }
    }
    panic_payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcdoc_fault::FaultEvent;
    use qcdoc_geometry::{Axis, NodeId};
    use qcdoc_scu::dma::DmaDescriptor;

    fn ring4() -> TorusShape {
        TorusShape::new(&[4])
    }

    #[test]
    fn ring_shift_matches_thread_engine() {
        for workers in [1, 2, 3, 4] {
            let machine = ShardedMachine::new(ring4()).with_workers(workers);
            let results = machine.run(async |ctx| {
                ctx.mem.write_word(0x100, 1000 + ctx.id.0 as u64).unwrap();
                ctx.shift_async(
                    Axis(0).plus(),
                    DmaDescriptor::contiguous(0x100, 1),
                    DmaDescriptor::contiguous(0x200, 1),
                )
                .await;
                ctx.mem.read_word(0x200).unwrap()
            });
            assert_eq!(results, vec![1003, 1000, 1001, 1002], "workers={workers}");
        }
    }

    #[test]
    fn bidirectional_shift_2d_multiplexed() {
        // Four nodes on one worker: every rendezvous is between futures
        // multiplexed on the same thread, so nothing may block.
        let machine = ShardedMachine::new(TorusShape::new(&[2, 2])).with_workers(1);
        let results = machine.run(async |ctx| {
            ctx.mem.write_word(0x0, ctx.id.0 as u64).unwrap();
            ctx.start_recv(Axis(0).minus(), DmaDescriptor::contiguous(0x300, 1));
            ctx.start_recv(Axis(1).minus(), DmaDescriptor::contiguous(0x308, 1));
            ctx.start_send(Axis(0).plus(), DmaDescriptor::contiguous(0x0, 1));
            ctx.start_send(Axis(1).plus(), DmaDescriptor::contiguous(0x0, 1));
            ctx.complete_async(
                &[Axis(0).plus(), Axis(1).plus()],
                &[Axis(0).minus(), Axis(1).minus()],
            )
            .await;
            (
                ctx.mem.read_word(0x300).unwrap(),
                ctx.mem.read_word(0x308).unwrap(),
            )
        });
        let shape = TorusShape::new(&[2, 2]);
        for (i, &(fx, fy)) in results.iter().enumerate() {
            let c = shape.coord_of(NodeId(i as u32));
            let xm = shape.rank_of(shape.neighbour(c, Axis(0).minus())).0 as u64;
            let ym = shape.rank_of(shape.neighbour(c, Axis(1).minus())).0 as u64;
            assert_eq!((fx, fy), (xm, ym), "node {i}");
        }
    }

    #[test]
    fn injected_fault_heals_and_ledger_matches_thread_engine() {
        // Same plan, same program, both engines: the health ledgers must
        // agree bit for bit (checksums included) — the sharding is pure
        // scheduling, invisible to the protocol.
        let app_body = |ctx: &mut NodeCtx| {
            for i in 0..8u64 {
                ctx.mem
                    .write_word(0x100 + i * 8, ctx.id.0 as u64 * 100 + i)
                    .unwrap();
            }
        };
        let plan = || FaultPlan::new(42).with_event(FaultEvent::bit_flip(1, 0, 2, 30));
        let sharded = ShardedMachine::new(ring4())
            .with_faults(plan())
            .with_workers(2);
        let (s_results, s_ledger) = sharded.run_with_health(async |ctx| {
            app_body(ctx);
            ctx.shift_async(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 8),
                DmaDescriptor::contiguous(0x400, 8),
            )
            .await;
            ctx.mem.read_block(0x400, 8).unwrap()
        });
        let threaded = crate::FunctionalMachine::new(ring4()).with_faults(plan());
        let (t_results, t_ledger) = threaded.run_with_health(|ctx| {
            app_body(ctx);
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 8),
                DmaDescriptor::contiguous(0x400, 8),
            );
            ctx.mem.read_block(0x400, 8).unwrap()
        });
        assert_eq!(s_results, t_results);
        assert_eq!(s_ledger.total_injected(), t_ledger.total_injected());
        assert_eq!(s_ledger.total_resends(), t_ledger.total_resends());
        assert!(s_ledger.all_checksums_ok());
        for (s, t) in s_ledger.nodes.iter().zip(t_ledger.nodes.iter()) {
            for (sl, tl) in s.links.iter().zip(t.links.iter()) {
                assert_eq!(sl.sent_words, tl.sent_words);
                assert_eq!(sl.send_checksum, tl.send_checksum);
                assert_eq!(sl.recv_checksum, tl.recv_checksum);
            }
        }
    }

    #[test]
    fn dead_link_wedges_the_shard_without_hanging() {
        let plan = FaultPlan::new(0).with_event(FaultEvent::dead_link(1, 0, 0));
        let machine = ShardedMachine::new(ring4())
            .with_faults(plan)
            .with_wedge_timeout(2_000)
            .with_workers(1);
        let (_, ledger) = machine.run_with_health(async |ctx| {
            ctx.mem.write_word(0x100, ctx.id.0 as u64).unwrap();
            ctx.shift_async(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, 1),
                DmaDescriptor::contiguous(0x200, 1),
            )
            .await;
        });
        assert_eq!(ledger.dead_links(), vec![(1, 0)]);
        assert_eq!(ledger.nodes[1].liveness, qcdoc_fault::Liveness::Wedged);
        assert!(!ledger.all_checksums_ok());
    }

    #[test]
    fn panicked_node_surfaces_after_the_machine_drains() {
        let machine = ShardedMachine::new(ring4()).with_workers(2);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            machine.run(async |ctx| {
                if ctx.id.0 == 2 {
                    panic!("node 2 dies");
                }
                ctx.id.0
            })
        }));
        let err = outcome.expect_err("the node panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "node 2 dies");
    }

    #[test]
    fn sixty_four_nodes_on_two_workers() {
        // 4x4x4 torus, 32 virtual nodes per worker: a six-direction
        // neighbour exchange where each node checks all incoming ranks.
        let shape = TorusShape::new(&[4, 4, 4]);
        let machine = ShardedMachine::new(shape.clone()).with_workers(2);
        let results = machine.run(async |ctx| {
            ctx.mem.write_word(0x0, ctx.id.0 as u64).unwrap();
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for axis in 0..3u8 {
                for dir in [Axis(axis).plus(), Axis(axis).minus()] {
                    ctx.start_recv(
                        dir,
                        DmaDescriptor::contiguous(0x100 + dir.link_index() as u64 * 8, 1),
                    );
                    recvs.push(dir);
                    ctx.start_send(dir, DmaDescriptor::contiguous(0x0, 1));
                    sends.push(dir);
                }
            }
            ctx.complete_async(&sends, &recvs).await;
            let mut got = Vec::new();
            for axis in 0..3u8 {
                for dir in [Axis(axis).plus(), Axis(axis).minus()] {
                    got.push((
                        dir,
                        ctx.mem
                            .read_word(0x100 + dir.link_index() as u64 * 8)
                            .unwrap(),
                    ));
                }
            }
            got
        });
        for (i, got) in results.iter().enumerate() {
            let c = shape.coord_of(NodeId(i as u32));
            for &(dir, val) in got {
                // A word armed toward `dir` lands at the neighbour's
                // opposite-direction receive slot, so the value received
                // "from" dir is the rank of the neighbour in `dir`.
                let expect = shape.rank_of(shape.neighbour(c, dir)).0 as u64;
                assert_eq!(val, expect, "node {i} dir {dir:?}");
            }
        }
    }
}
