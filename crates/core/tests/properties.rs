//! Property-based tests of the functional machine: arbitrary transfers
//! with arbitrary fault plans must deliver exactly-once in-order, and
//! collectives must be decomposition- and fault-independent.

use proptest::prelude::*;
use qcdoc_core::comm::global_sum_f64;
use qcdoc_core::functional::{FaultEvent, FaultPlan, FunctionalMachine};
use qcdoc_geometry::{Axis, TorusShape};
use qcdoc_scu::dma::DmaDescriptor;
use qcdoc_scu::global::dimension_ordered_sum;

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        Just(vec![2usize]),
        Just(vec![4usize]),
        Just(vec![2usize, 2]),
        Just(vec![4usize, 2]),
        Just(vec![2usize, 2, 2]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ring_shift_delivers_under_faults(
        dims in small_shape(),
        words in 1u32..24,
        faults in prop::collection::vec((0u32..8, 0u64..20, 0usize..70), 0..4),
    ) {
        let shape = TorusShape::new(&dims);
        let n = shape.node_count() as u32;
        let mut plan = FaultPlan::new(0);
        for &(node, seq, bit) in &faults {
            // Link 0 is the axis-0 plus direction.
            plan = plan.with_event(FaultEvent::bit_flip(node % n, 0, seq, bit));
        }
        let machine = FunctionalMachine::new(shape.clone()).with_faults(plan);
        let w = words;
        let results = machine.run(move |ctx| {
            for i in 0..w as u64 {
                ctx.mem.write_word(0x100 + i * 8, ctx.id.0 as u64 * 1_000 + i).unwrap();
            }
            ctx.shift(
                Axis(0).plus(),
                DmaDescriptor::contiguous(0x100, w),
                DmaDescriptor::contiguous(0x4000, w),
            );
            ctx.mem.read_block(0x4000, w as usize).unwrap()
        });
        // Every node must hold its -x neighbour's payload, intact.
        for (rank, got) in results.iter().enumerate() {
            let c = shape.coord_of(qcdoc_geometry::NodeId(rank as u32));
            let from = shape.rank_of(shape.neighbour(c, Axis(0).minus())).0 as u64;
            let want: Vec<u64> = (0..words as u64).map(|i| from * 1_000 + i).collect();
            prop_assert_eq!(got, &want, "node {}", rank);
        }
    }

    #[test]
    fn same_seed_gives_identical_payloads_and_ledger(
        seed in 0u64..1_000,
        words in 1u32..16,
    ) {
        // A sustained error rate drawn from `seed`: two runs must agree on
        // every payload bit and on the health-ledger fingerprint, and a
        // fault-free run must agree on the payloads (recoverable faults
        // are invisible to the application).
        let shape = TorusShape::new(&[4]);
        let plan = FaultPlan::new(seed).with_event(FaultEvent::bit_error_rate(1, 0, 0.05));
        let run = |p: FaultPlan| {
            let machine = FunctionalMachine::new(shape.clone()).with_faults(p);
            let w = words;
            machine.run_with_health(move |ctx| {
                for i in 0..w as u64 {
                    ctx.mem.write_word(0x100 + i * 8, ctx.id.0 as u64 * 777 + i).unwrap();
                }
                ctx.shift(
                    Axis(0).plus(),
                    DmaDescriptor::contiguous(0x100, w),
                    DmaDescriptor::contiguous(0x4000, w),
                );
                ctx.mem.read_block(0x4000, w as usize).unwrap()
            })
        };
        let (pa, la) = run(plan.clone());
        let (pb, lb) = run(plan);
        let (clean, _) = run(FaultPlan::default());
        prop_assert_eq!(&pa, &pb, "same seed, same payloads");
        prop_assert_eq!(la.fingerprint(), lb.fingerprint(), "same seed, same ledger");
        prop_assert_eq!(&pa, &clean, "recoverable faults must not change payloads");
        prop_assert!(la.all_checksums_ok());
    }

    #[test]
    fn global_sum_matches_closed_form_for_any_values(
        dims in small_shape(),
        seed in 0u64..1_000,
    ) {
        let shape = TorusShape::new(&dims);
        let n = shape.node_count();
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let x = (seed.wrapping_mul(31).wrapping_add(i as u64)) as f64;
                (x * 0.618).sin() * 1.0e12 + x
            })
            .collect();
        let expect = dimension_ordered_sum(&shape, &values);
        let machine = FunctionalMachine::new(shape);
        let vals = values.clone();
        let results = machine.run(move |ctx| global_sum_f64(ctx, vals[ctx.id.index()]));
        for (got, want) in results.iter().zip(&expect) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn checksums_pair_up_on_every_axis(dims in small_shape(), words in 1u32..12) {
        let shape = TorusShape::new(&dims);
        let rank = shape.rank();
        let machine = FunctionalMachine::new(shape.clone());
        let w = words;
        let results = machine.run(move |ctx| {
            let mut sums = Vec::new();
            for a in 0..rank {
                for i in 0..w as u64 {
                    ctx.mem
                        .write_word(0x100 + i * 8, ctx.id.0 as u64 ^ (i << 8) ^ (a as u64) << 32)
                        .unwrap();
                }
                ctx.shift(
                    Axis(a as u8).plus(),
                    DmaDescriptor::contiguous(0x100, w),
                    DmaDescriptor::contiguous(0x6000, w),
                );
                sums.push((
                    ctx.send_checksum(Axis(a as u8).plus()),
                    ctx.recv_checksum(Axis(a as u8).minus()),
                ));
            }
            sums
        });
        // For each axis, my send checksum equals my +axis neighbour's
        // receive checksum.
        for (rank_i, sums) in results.iter().enumerate() {
            let c = shape.coord_of(qcdoc_geometry::NodeId(rank_i as u32));
            for (a, &(send, _)) in sums.iter().enumerate() {
                let nb = shape.rank_of(shape.neighbour(c, Axis(a as u8).plus()));
                let (_, nb_recv) = results[nb.index()][a];
                prop_assert_eq!(send, nb_recv, "axis {} from node {}", a, rank_i);
            }
        }
    }
}
