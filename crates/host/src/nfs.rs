//! The host-side NFS service (§3.2).
//!
//! "The kernel also includes support for NFS mounting of remote disks,
//! which is already being used by application programs to write directly
//! to the host disk system." The server exports directories from the
//! host's RAID (6 TB on the 4096-node machine, §4); nodes mount them and
//! stream configurations out over the Ethernet tree.

use crate::ethernet::EthernetTree;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An open-file handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NfsHandle(pub u32);

/// NFS operation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsError {
    /// The path is outside every export.
    NotExported(String),
    /// Unknown handle.
    StaleHandle,
    /// The file does not exist (read/stat).
    NoEntry(String),
    /// The server's disk is full.
    DiskFull,
}

impl std::fmt::Display for NfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NfsError::NotExported(p) => write!(f, "{p}: not exported"),
            NfsError::StaleHandle => write!(f, "stale NFS handle"),
            NfsError::NoEntry(p) => write!(f, "{p}: no such file"),
            NfsError::DiskFull => write!(f, "disk full"),
        }
    }
}

impl std::error::Error for NfsError {}

/// The host NFS server.
#[derive(Debug)]
pub struct NfsServer {
    exports: Vec<String>,
    files: HashMap<String, Vec<u8>>,
    handles: HashMap<NfsHandle, String>,
    next_handle: u32,
    capacity: u64,
    used: u64,
    bytes_written: u64,
    bytes_read: u64,
}

impl NfsServer {
    /// A server exporting the given path prefixes with `capacity` bytes of
    /// disk (the paper's machine: 6 TB of parallel RAID).
    pub fn new(exports: &[&str], capacity: u64) -> NfsServer {
        NfsServer {
            exports: exports.iter().map(|s| s.to_string()).collect(),
            files: HashMap::new(),
            handles: HashMap::new(),
            next_handle: 1,
            capacity,
            used: 0,
            bytes_written: 0,
            bytes_read: 0,
        }
    }

    /// The paper's host storage: 6 TB.
    pub fn paper_host() -> NfsServer {
        NfsServer::new(&["/data"], 6 * 1024 * 1024 * 1024 * 1024)
    }

    fn exported(&self, path: &str) -> bool {
        self.exports.iter().any(|e| path.starts_with(e.as_str()))
    }

    /// Open (creating if needed) a file for a node.
    pub fn open(&mut self, path: &str) -> Result<NfsHandle, NfsError> {
        if !self.exported(path) {
            return Err(NfsError::NotExported(path.to_string()));
        }
        self.files.entry(path.to_string()).or_default();
        let h = NfsHandle(self.next_handle);
        self.next_handle += 1;
        self.handles.insert(h, path.to_string());
        Ok(h)
    }

    /// Append bytes through a handle.
    pub fn write(&mut self, h: NfsHandle, bytes: &[u8]) -> Result<(), NfsError> {
        let path = self.handles.get(&h).ok_or(NfsError::StaleHandle)?.clone();
        if self.used + bytes.len() as u64 > self.capacity {
            return Err(NfsError::DiskFull);
        }
        self.used += bytes.len() as u64;
        self.bytes_written += bytes.len() as u64;
        self.files
            .get_mut(&path)
            .expect("open created it")
            .extend_from_slice(bytes);
        Ok(())
    }

    /// Read a whole file.
    pub fn read(&mut self, path: &str) -> Result<Vec<u8>, NfsError> {
        if !self.exported(path) {
            return Err(NfsError::NotExported(path.to_string()));
        }
        let data = self
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| NfsError::NoEntry(path.to_string()))?;
        self.bytes_read += data.len() as u64;
        Ok(data)
    }

    /// File size, if it exists.
    pub fn stat(&self, path: &str) -> Result<u64, NfsError> {
        self.files
            .get(path)
            .map(|d| d.len() as u64)
            .ok_or_else(|| NfsError::NoEntry(path.to_string()))
    }

    /// Total bytes written so far (for the I/O-rate model).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Disk bytes used.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Seconds to drain `bytes` from `writers` concurrent nodes through
    /// the Ethernet tree (the qualitative point of §3.1: "I/O for QCD
    /// applications is quite modest for the compute power needed").
    pub fn write_seconds(&self, tree: &EthernetTree, bytes_per_node: u64, writers: usize) -> f64 {
        let bits = bytes_per_node as f64 * 8.0;
        let per_port = bits / tree.node_bps;
        let trunk = bits * writers as f64 / tree.trunk_bps();
        per_port.max(trunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_write_read_roundtrip() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        let h = s.open("/data/configs/lat.0").unwrap();
        s.write(h, b"hello").unwrap();
        s.write(h, b" qcd").unwrap();
        assert_eq!(s.read("/data/configs/lat.0").unwrap(), b"hello qcd");
        assert_eq!(s.stat("/data/configs/lat.0").unwrap(), 9);
    }

    #[test]
    fn unexported_paths_rejected() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        assert!(matches!(
            s.open("/etc/shadow"),
            Err(NfsError::NotExported(_))
        ));
        assert!(matches!(
            s.read("/etc/shadow"),
            Err(NfsError::NotExported(_))
        ));
    }

    #[test]
    fn stale_handle_rejected() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        assert_eq!(s.write(NfsHandle(99), b"x"), Err(NfsError::StaleHandle));
    }

    #[test]
    fn disk_capacity_enforced() {
        let mut s = NfsServer::new(&["/data"], 10);
        let h = s.open("/data/f").unwrap();
        s.write(h, &[0u8; 10]).unwrap();
        assert_eq!(s.write(h, &[0u8; 1]), Err(NfsError::DiskFull));
        assert_eq!(s.used(), 10);
    }

    #[test]
    fn missing_file_is_noentry() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        assert!(matches!(s.read("/data/nope"), Err(NfsError::NoEntry(_))));
    }

    #[test]
    fn io_time_is_modest_relative_to_compute() {
        // A 4^4-per-node double-precision gauge configuration is ~590 kB;
        // writing one from each of 128 nodes through the tree takes
        // seconds, while generating it takes many minutes of CG — the §3.1
        // observation that QCD needs little host I/O.
        let s = NfsServer::paper_host();
        let tree = crate::ethernet::EthernetTree::for_machine(128);
        let config_bytes = 256 * 4 * 18 * 8; // sites x links x reals x 8B
        let t = s.write_seconds(&tree, config_bytes, 128);
        assert!(t < 10.0, "config drain took {t} s");
    }

    #[test]
    fn concurrent_handles_to_different_files() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        let h1 = s.open("/data/a").unwrap();
        let h2 = s.open("/data/b").unwrap();
        s.write(h1, b"one").unwrap();
        s.write(h2, b"two").unwrap();
        assert_eq!(s.read("/data/a").unwrap(), b"one");
        assert_eq!(s.read("/data/b").unwrap(), b"two");
        assert_eq!(s.bytes_written(), 6);
    }
}
