//! The host-side NFS service (§3.2).
//!
//! "The kernel also includes support for NFS mounting of remote disks,
//! which is already being used by application programs to write directly
//! to the host disk system." The server exports directories from the
//! host's RAID (6 TB on the 4096-node machine, §4); nodes mount them and
//! stream configurations out over the Ethernet tree.
//!
//! The server accepts a seeded [`StorageFaultPlan`] (see
//! `qcdoc_fault::storage`): torn writes, bit rot at rest, stale handles,
//! transient I/O errors, and injected disk-full strike at fixed points of
//! the server's operation counters. State-changing verbs (`open`,
//! `write`, `read`, `rename`, `remove`) advance the clock; read-only
//! metadata probes (`stat`, `list`) do not, so fault plans aimed at "the
//! Nth write" survive extra discovery traffic.
//!
//! Appends land on the media in [`WIRE_CHUNK`]-sized transfer units, so
//! capacity exhaustion can surface *mid-call*; the write then rolls the
//! partial append back — per-call writes are all-or-nothing. The one
//! deliberate exception is an injected
//! [`qcdoc_fault::StorageFault::TornWrite`]: the
//! server died mid-call, nobody was left to roll back, and exactly the
//! surviving prefix stays on disk.

use crate::ethernet::EthernetTree;
use qcdoc_fault::{StorageClock, StorageFaultPlan};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// NFS transfer unit: the granularity at which an append reaches the
/// media (and at which a mid-call disk-full or crash can strike).
pub const WIRE_CHUNK: usize = 8 * 1024;

/// An open-file handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NfsHandle(pub u32);

/// NFS operation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsError {
    /// The path is outside every export.
    NotExported(String),
    /// Unknown handle.
    StaleHandle,
    /// The file does not exist (read/stat/rename/remove).
    NoEntry(String),
    /// The server's disk is full.
    DiskFull,
    /// The server crashed mid-call (injected torn write): a prefix of
    /// the bytes may have landed and every open handle is dead.
    ServerCrash,
    /// Transient I/O failure (congestion, brief unreachability); nothing
    /// was touched, the call may simply be retried.
    Transient,
}

impl NfsError {
    /// Whether a bounded retry (after reopening handles if needed) can
    /// reasonably expect to succeed. `DiskFull` is not retryable until
    /// someone frees space; `NotExported`/`NoEntry` are caller bugs.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            NfsError::Transient | NfsError::ServerCrash | NfsError::StaleHandle
        )
    }
}

impl std::fmt::Display for NfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NfsError::NotExported(p) => write!(f, "{p}: not exported"),
            NfsError::StaleHandle => write!(f, "stale NFS handle"),
            NfsError::NoEntry(p) => write!(f, "{p}: no such file"),
            NfsError::DiskFull => write!(f, "disk full"),
            NfsError::ServerCrash => write!(f, "NFS server crashed mid-write"),
            NfsError::Transient => write!(f, "transient NFS I/O error"),
        }
    }
}

impl std::error::Error for NfsError {}

/// The host NFS server.
#[derive(Debug)]
pub struct NfsServer {
    exports: Vec<String>,
    files: HashMap<String, Vec<u8>>,
    handles: HashMap<NfsHandle, String>,
    next_handle: u32,
    capacity: u64,
    used: u64,
    bytes_written: u64,
    bytes_read: u64,
    faults: Option<StorageClock>,
    ops: u64,
    write_ops: u64,
    rot_applied: HashSet<usize>,
}

impl NfsServer {
    /// A server exporting the given path prefixes with `capacity` bytes of
    /// disk (the paper's machine: 6 TB of parallel RAID).
    pub fn new(exports: &[&str], capacity: u64) -> NfsServer {
        NfsServer {
            exports: exports.iter().map(|s| s.to_string()).collect(),
            files: HashMap::new(),
            handles: HashMap::new(),
            next_handle: 1,
            capacity,
            used: 0,
            bytes_written: 0,
            bytes_read: 0,
            faults: None,
            ops: 0,
            write_ops: 0,
            rot_applied: HashSet::new(),
        }
    }

    /// The paper's host storage: 6 TB.
    pub fn paper_host() -> NfsServer {
        NfsServer::new(&["/data"], 6 * 1024 * 1024 * 1024 * 1024)
    }

    /// Arm a seeded storage-fault plan. Replaces any previous plan but
    /// keeps the operation counters, so a plan injected mid-run aims at
    /// ops *from now on*; use [`NfsServer::ops`]/[`NfsServer::write_ops`]
    /// to address them.
    pub fn inject(&mut self, plan: &StorageFaultPlan) {
        self.faults = Some(StorageClock::resolve(plan));
        self.rot_applied.clear();
    }

    /// Disarm storage faults.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Operations performed so far (the global fault-clock index the
    /// next call will run at).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Write calls performed so far (the write-clock index the next
    /// `write` will run at).
    pub fn write_ops(&self) -> u64 {
        self.write_ops
    }

    fn exported(&self, path: &str) -> bool {
        self.exports.iter().any(|e| path.starts_with(e.as_str()))
    }

    /// Advance the global operation clock, applying any scheduled server
    /// reboot (staling every handle) due at this instant.
    fn tick(&mut self) -> u64 {
        let op = self.ops;
        self.ops += 1;
        if self.faults.as_ref().is_some_and(|c| c.handles_stale_at(op)) {
            self.handles.clear();
        }
        op
    }

    fn transient_at(&self, op: u64) -> bool {
        self.faults.as_ref().is_some_and(|c| c.transient(op))
    }

    /// Manifest any bit rot due against `path` (each plan event strikes
    /// at most once, on the first access after its `from_op`).
    fn apply_rot(&mut self, path: &str, op: u64) {
        let due = match &self.faults {
            Some(clock) => clock.rot_due(path, op),
            None => return,
        };
        for (idx, byte, bit) in due {
            if self.rot_applied.contains(&idx) {
                continue;
            }
            if let Some(file) = self.files.get_mut(path) {
                if !file.is_empty() {
                    let i = (byte % file.len() as u64) as usize;
                    file[i] ^= 1 << bit;
                    self.rot_applied.insert(idx);
                }
            }
        }
    }

    /// Open (creating if needed) a file for a node.
    pub fn open(&mut self, path: &str) -> Result<NfsHandle, NfsError> {
        let op = self.tick();
        if self.transient_at(op) {
            return Err(NfsError::Transient);
        }
        if !self.exported(path) {
            return Err(NfsError::NotExported(path.to_string()));
        }
        self.files.entry(path.to_string()).or_default();
        let h = NfsHandle(self.next_handle);
        self.next_handle += 1;
        self.handles.insert(h, path.to_string());
        Ok(h)
    }

    /// Append bytes through a handle — all-or-nothing: if the disk fills
    /// partway through the call's [`WIRE_CHUNK`]s, the partial append is
    /// rolled back and `DiskFull` reports an untouched file. Only an
    /// injected server crash ([`NfsError::ServerCrash`]) leaves a torn
    /// prefix, because the process that would have rolled it back died.
    pub fn write(&mut self, h: NfsHandle, bytes: &[u8]) -> Result<(), NfsError> {
        let op = self.tick();
        if self.transient_at(op) {
            return Err(NfsError::Transient);
        }
        let path = self.handles.get(&h).ok_or(NfsError::StaleHandle)?.clone();
        let wop = self.write_ops;
        self.write_ops += 1;
        if self.faults.as_ref().is_some_and(|c| c.disk_full(wop)) {
            return Err(NfsError::DiskFull);
        }
        let torn = self
            .faults
            .as_ref()
            .and_then(|c| c.torn_keep(wop, bytes.len()));
        let file = self.files.get_mut(&path).ok_or(NfsError::StaleHandle)?;
        if let Some(keep) = torn {
            // Server crash mid-call: the surviving prefix (as far as the
            // disk had room) stays; every handle dies with the server.
            let room = (self.capacity - self.used).min(keep as u64) as usize;
            file.extend_from_slice(&bytes[..room]);
            self.used += room as u64;
            self.bytes_written += room as u64;
            self.handles.clear();
            return Err(NfsError::ServerCrash);
        }
        let base_len = file.len();
        let base_used = self.used;
        // One allocation up front; the per-chunk loop below still models
        // (and can fail) each WIRE_CHUNK transfer individually.
        file.reserve(bytes.len());
        for chunk in bytes.chunks(WIRE_CHUNK) {
            if self.used + chunk.len() as u64 > self.capacity {
                file.truncate(base_len);
                self.used = base_used;
                return Err(NfsError::DiskFull);
            }
            file.extend_from_slice(chunk);
            self.used += chunk.len() as u64;
        }
        self.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Read a whole file (manifesting any bit rot due against it).
    pub fn read(&mut self, path: &str) -> Result<Vec<u8>, NfsError> {
        let op = self.tick();
        if self.transient_at(op) {
            return Err(NfsError::Transient);
        }
        if !self.exported(path) {
            return Err(NfsError::NotExported(path.to_string()));
        }
        self.apply_rot(path, op);
        let data = self
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| NfsError::NoEntry(path.to_string()))?;
        self.bytes_read += data.len() as u64;
        Ok(data)
    }

    /// Atomically rename `from` to `to` (POSIX semantics: an existing
    /// destination is replaced in one step). Handles to either path go
    /// stale; this is the commit primitive the checkpoint store builds
    /// its generation protocol on.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), NfsError> {
        let op = self.tick();
        if self.transient_at(op) {
            return Err(NfsError::Transient);
        }
        if !self.exported(from) {
            return Err(NfsError::NotExported(from.to_string()));
        }
        if !self.exported(to) {
            return Err(NfsError::NotExported(to.to_string()));
        }
        let data = self
            .files
            .remove(from)
            .ok_or_else(|| NfsError::NoEntry(from.to_string()))?;
        if let Some(old) = self.files.insert(to.to_string(), data) {
            self.used -= old.len() as u64;
        }
        self.handles.retain(|_, p| p != from && p != to);
        Ok(())
    }

    /// Remove a file, refunding its bytes. Handles to it go stale.
    pub fn remove(&mut self, path: &str) -> Result<(), NfsError> {
        let op = self.tick();
        if self.transient_at(op) {
            return Err(NfsError::Transient);
        }
        if !self.exported(path) {
            return Err(NfsError::NotExported(path.to_string()));
        }
        let data = self
            .files
            .remove(path)
            .ok_or_else(|| NfsError::NoEntry(path.to_string()))?;
        self.used -= data.len() as u64;
        self.handles.retain(|_, p| p != path);
        Ok(())
    }

    /// Paths starting with `prefix`, sorted (a directory listing; does
    /// not advance the fault clock).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .files
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect();
        out.sort();
        out
    }

    /// File size, if it exists (does not advance the fault clock).
    pub fn stat(&self, path: &str) -> Result<u64, NfsError> {
        self.files
            .get(path)
            .map(|d| d.len() as u64)
            .ok_or_else(|| NfsError::NoEntry(path.to_string()))
    }

    /// Total bytes written so far (for the I/O-rate model).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Disk bytes used.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Seconds to drain `bytes` from `writers` concurrent nodes through
    /// the Ethernet tree (the qualitative point of §3.1: "I/O for QCD
    /// applications is quite modest for the compute power needed").
    pub fn write_seconds(&self, tree: &EthernetTree, bytes_per_node: u64, writers: usize) -> f64 {
        let bits = bytes_per_node as f64 * 8.0;
        let per_port = bits / tree.node_bps;
        let trunk = bits * writers as f64 / tree.trunk_bps();
        per_port.max(trunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcdoc_fault::StorageFault;

    #[test]
    fn open_write_read_roundtrip() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        let h = s.open("/data/configs/lat.0").unwrap();
        s.write(h, b"hello").unwrap();
        s.write(h, b" qcd").unwrap();
        assert_eq!(s.read("/data/configs/lat.0").unwrap(), b"hello qcd");
        assert_eq!(s.stat("/data/configs/lat.0").unwrap(), 9);
    }

    #[test]
    fn unexported_paths_rejected() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        assert!(matches!(
            s.open("/etc/shadow"),
            Err(NfsError::NotExported(_))
        ));
        assert!(matches!(
            s.read("/etc/shadow"),
            Err(NfsError::NotExported(_))
        ));
    }

    #[test]
    fn stale_handle_rejected() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        assert_eq!(s.write(NfsHandle(99), b"x"), Err(NfsError::StaleHandle));
    }

    #[test]
    fn disk_capacity_enforced() {
        let mut s = NfsServer::new(&["/data"], 10);
        let h = s.open("/data/f").unwrap();
        s.write(h, &[0u8; 10]).unwrap();
        assert_eq!(s.write(h, &[0u8; 1]), Err(NfsError::DiskFull));
        assert_eq!(s.used(), 10);
    }

    #[test]
    fn disk_full_mid_call_is_all_or_nothing() {
        // Capacity falls between the first and second WIRE_CHUNK of one
        // call: the chunk that landed must be rolled back.
        let mut s = NfsServer::new(&["/data"], 10_000);
        let h = s.open("/data/f").unwrap();
        assert_eq!(
            s.write(h, &[7u8; WIRE_CHUNK + 4_000]),
            Err(NfsError::DiskFull)
        );
        assert_eq!(s.stat("/data/f").unwrap(), 0, "partial append leaked");
        assert_eq!(s.used(), 0);
        assert_eq!(s.bytes_written(), 0);
        // And a prior append is preserved exactly across a failed one.
        s.write(h, b"safe").unwrap();
        assert_eq!(s.write(h, &[7u8; 12_000]), Err(NfsError::DiskFull));
        assert_eq!(s.read("/data/f").unwrap(), b"safe");
        assert_eq!(s.used(), 4);
    }

    #[test]
    fn injected_disk_full_touches_nothing() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        s.inject(&StorageFaultPlan::new(1).with_event(StorageFault::DiskFull { write_op: 1 }));
        let h = s.open("/data/f").unwrap();
        s.write(h, b"one").unwrap();
        assert_eq!(s.write(h, b"two"), Err(NfsError::DiskFull));
        assert_eq!(s.read("/data/f").unwrap(), b"one");
        // The strike is one-shot: the next write goes through.
        s.write(h, b"three").unwrap();
        assert_eq!(s.read("/data/f").unwrap(), b"onethree");
    }

    #[test]
    fn torn_write_leaves_exact_prefix_and_kills_handles() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        s.inject(
            &StorageFaultPlan::new(1).with_event(StorageFault::TornWrite {
                write_op: 0,
                keep: Some(3),
            }),
        );
        let h = s.open("/data/f").unwrap();
        assert_eq!(s.write(h, b"abcdef"), Err(NfsError::ServerCrash));
        assert_eq!(s.write(h, b"late"), Err(NfsError::StaleHandle));
        assert_eq!(s.read("/data/f").unwrap(), b"abc");
        let h2 = s.open("/data/f").unwrap();
        s.write(h2, b"def").unwrap();
        assert_eq!(s.read("/data/f").unwrap(), b"abcdef");
    }

    #[test]
    fn transient_errors_are_retryable_and_touch_nothing() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        // open is op 0, so the first write runs at op 1.
        s.inject(&StorageFaultPlan::new(1).with_event(StorageFault::Transient { op: 1, count: 1 }));
        let h = s.open("/data/f").unwrap();
        let err = s.write(h, b"x").unwrap_err();
        assert_eq!(err, NfsError::Transient);
        assert!(err.retryable());
        s.write(h, b"x").unwrap();
        assert_eq!(s.read("/data/f").unwrap(), b"x");
    }

    #[test]
    fn scheduled_reboot_stales_handles_but_keeps_bytes() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        s.inject(&StorageFaultPlan::new(1).with_event(StorageFault::StaleHandles { op: 2 }));
        let h = s.open("/data/f").unwrap();
        s.write(h, b"pre").unwrap();
        assert_eq!(s.write(h, b"post"), Err(NfsError::StaleHandle));
        let h2 = s.open("/data/f").unwrap();
        s.write(h2, b"post").unwrap();
        assert_eq!(s.read("/data/f").unwrap(), b"prepost");
    }

    #[test]
    fn bit_rot_flips_one_bit_once() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        let h = s.open("/data/f").unwrap();
        s.write(h, b"hello").unwrap();
        s.inject(&StorageFaultPlan::new(1).with_event(StorageFault::BitRot {
            path: "/data/f".into(),
            from_op: 0,
            byte: 0,
            bit: 0,
        }));
        assert_eq!(s.read("/data/f").unwrap(), b"iello");
        assert_eq!(s.read("/data/f").unwrap(), b"iello", "rot must be one-shot");
    }

    #[test]
    fn rename_is_atomic_commit_and_replaces_destination() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        let h = s.open("/data/tmp").unwrap();
        s.write(h, b"new bytes").unwrap();
        let h2 = s.open("/data/final").unwrap();
        s.write(h2, b"old").unwrap();
        assert_eq!(s.used(), 12);
        s.rename("/data/tmp", "/data/final").unwrap();
        assert_eq!(s.read("/data/final").unwrap(), b"new bytes");
        assert!(matches!(s.read("/data/tmp"), Err(NfsError::NoEntry(_))));
        assert_eq!(s.used(), 9, "replaced destination must refund its bytes");
        assert_eq!(s.write(h2, b"x"), Err(NfsError::StaleHandle));
        assert!(matches!(
            s.rename("/data/nope", "/data/x"),
            Err(NfsError::NoEntry(_))
        ));
        assert!(matches!(
            s.rename("/data/final", "/other/x"),
            Err(NfsError::NotExported(_))
        ));
    }

    #[test]
    fn remove_refunds_bytes_and_stales_handles() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        let h = s.open("/data/f").unwrap();
        s.write(h, b"bytes").unwrap();
        s.remove("/data/f").unwrap();
        assert_eq!(s.used(), 0);
        assert_eq!(s.write(h, b"x"), Err(NfsError::StaleHandle));
        assert!(matches!(s.remove("/data/f"), Err(NfsError::NoEntry(_))));
    }

    #[test]
    fn list_returns_sorted_prefix_matches() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        for p in ["/data/ck/b", "/data/ck/a", "/data/other"] {
            s.open(p).unwrap();
        }
        assert_eq!(s.list("/data/ck/"), vec!["/data/ck/a", "/data/ck/b"]);
        assert!(s.list("/data/none/").is_empty());
    }

    #[test]
    fn missing_file_is_noentry() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        assert!(matches!(s.read("/data/nope"), Err(NfsError::NoEntry(_))));
    }

    #[test]
    fn io_time_is_modest_relative_to_compute() {
        // A 4^4-per-node double-precision gauge configuration is ~590 kB;
        // writing one from each of 128 nodes through the tree takes
        // seconds, while generating it takes many minutes of CG — the §3.1
        // observation that QCD needs little host I/O.
        let s = NfsServer::paper_host();
        let tree = crate::ethernet::EthernetTree::for_machine(128);
        let config_bytes = 256 * 4 * 18 * 8; // sites x links x reals x 8B
        let t = s.write_seconds(&tree, config_bytes, 128);
        assert!(t < 10.0, "config drain took {t} s");
    }

    #[test]
    fn concurrent_handles_to_different_files() {
        let mut s = NfsServer::new(&["/data"], 1 << 20);
        let h1 = s.open("/data/a").unwrap();
        let h2 = s.open("/data/b").unwrap();
        s.write(h1, b"one").unwrap();
        s.write(h2, b"two").unwrap();
        assert_eq!(s.read("/data/a").unwrap(), b"one");
        assert_eq!(s.read("/data/b").unwrap(), b"two");
        assert_eq!(s.bytes_written(), 6);
    }
}
