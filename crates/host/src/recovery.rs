//! Host-side recovery planning: quarantine culprits, re-allocate a
//! partition around them, and degrade gracefully when no spare of the
//! full size remains.
//!
//! The paper's operating model separates detection from repair: the
//! Ethernet/JTAG diagnostics tree "allows the host computer to diagnose
//! any fault", and the partitioning software then carves a working
//! logical machine out of whatever hardware is still good. The
//! [`RecoveryPlanner`] is that loop in software. It owns a partition
//! allocated from the [`Qdaemon`]; when a run's [`HealthLedger`] comes
//! back dirty, [`RecoveryPlanner::quarantine_and_replan`] marks the
//! culprit nodes faulty, releases the tainted partition (quarantined
//! members stay out of the pool), and scans every legal placement of the
//! same spec for a replacement. If none fits and degradation is allowed,
//! it searches progressively smaller specs — dropping one logical axis
//! group at a time — for the largest sub-partition that still allocates.

use crate::qdaemon::{AllocError, Qdaemon};
use qcdoc_fault::{FaultPlan, HealthLedger, NodeSelect};
use qcdoc_geometry::{NodeCoord, NodeId, Partition, PartitionSpec};
use std::collections::VecDeque;

/// Plans quarantine-and-resume repartitions for one job.
#[derive(Debug)]
pub struct RecoveryPlanner {
    partition_id: u32,
    spec: PartitionSpec,
    current: Partition,
    machine_faults: FaultPlan,
    allow_degraded: bool,
}

/// Every origin at which a sub-box of `extents` fits inside the machine
/// (full-extent axes admit only the origin 0).
fn origins_for(machine: &qcdoc_geometry::TorusShape, extents: &[usize]) -> Vec<NodeCoord> {
    let mut origins = vec![NodeCoord::ORIGIN];
    for axis in 0..machine.rank() {
        let slack = machine.extent(axis) - extents.get(axis).copied().unwrap_or(1);
        if slack == 0 {
            continue;
        }
        let mut next = Vec::with_capacity(origins.len() * (slack + 1));
        for base in &origins {
            for off in 0..=slack {
                let mut c = *base;
                c.set(axis, off);
                next.push(c);
            }
        }
        origins = next;
    }
    origins
}

impl RecoveryPlanner {
    /// Allocate the job's initial partition and remember the spec and the
    /// machine-level fault plan (faults are keyed by *physical* node id;
    /// [`RecoveryPlanner::local_faults`] translates them into whatever
    /// partition currently hosts the job).
    pub fn new(
        q: &mut Qdaemon,
        spec: PartitionSpec,
        machine_faults: FaultPlan,
        allow_degraded: bool,
    ) -> Result<RecoveryPlanner, AllocError> {
        let id = q.allocate(spec.clone())?;
        let current = q.partition(id).expect("just allocated").clone();
        Ok(RecoveryPlanner {
            partition_id: id,
            spec,
            current,
            machine_faults,
            allow_degraded,
        })
    }

    /// The partition currently hosting the job.
    pub fn partition(&self) -> &Partition {
        &self.current
    }

    /// The machine fault plan translated into the current partition's
    /// logical ranks. Events aimed at physical nodes outside the
    /// partition are dropped — their hardware is not wired into this
    /// logical machine. Link indices ride along unchanged (the fault
    /// follows the node's transmitter).
    pub fn local_faults(&self) -> FaultPlan {
        let mut phys_to_logical = std::collections::HashMap::new();
        for l in 0..self.current.node_count() {
            let phys = self.current.physical_id(NodeId(l as u32));
            phys_to_logical.insert(phys.0, l as u32);
        }
        let mut local = FaultPlan::new(self.machine_faults.seed);
        for ev in &self.machine_faults.events {
            match ev.node {
                NodeSelect::Node(phys) => {
                    if let Some(&logical) = phys_to_logical.get(&phys) {
                        let mut translated = *ev;
                        translated.node = NodeSelect::Node(logical);
                        local = local.with_event(translated);
                    }
                }
                NodeSelect::Random => {
                    local = local.with_event(*ev);
                }
            }
        }
        local
    }

    /// Digest a dirty health ledger: quarantine the culprits, release the
    /// tainted partition, and hunt for a replacement. Returns the new
    /// partition, its translated fault plan, and whether it is degraded —
    /// or `None` when nothing allocatable remains.
    ///
    /// Culprits are the nodes with *hardware* evidence against them
    /// ([`HealthLedger::culprit_nodes`]): in a tightly-coupled collective
    /// one dead wire wedges every node, and quarantining the collateral
    /// would condemn the whole machine for one bad transmitter. When the
    /// ledger carries no hardware evidence at all, every unhealthy node
    /// is quarantined — something is wrong and the planner must route
    /// around it.
    pub fn quarantine_and_replan(
        &mut self,
        q: &mut Qdaemon,
        ledger: &HealthLedger,
    ) -> Option<(Partition, FaultPlan, bool)> {
        let mut blamed = ledger.culprit_nodes();
        if blamed.is_empty() {
            blamed = ledger.unhealthy_nodes();
        }
        for logical in blamed {
            let phys = self.current.physical_id(NodeId(logical));
            q.mark_faulty(phys);
        }
        q.release(self.partition_id);

        // Breadth-first over specs: the original first, then children with
        // one logical group dropped, then two, … — so the first hit is a
        // largest allocatable sub-partition.
        let machine = q.machine().clone();
        let mut queue = VecDeque::new();
        let mut seen = std::collections::HashSet::new();
        queue.push_back(self.spec.clone());
        seen.insert((self.spec.extents.clone(), self.spec.groups.clone()));
        while let Some(spec) = queue.pop_front() {
            let degraded = spec.groups.len() < self.spec.groups.len();
            if degraded && !self.allow_degraded {
                break;
            }
            for origin in origins_for(&machine, &spec.extents) {
                let mut candidate = spec.clone();
                candidate.origin = origin;
                if let Ok(id) = q.allocate(candidate) {
                    self.partition_id = id;
                    self.current = q.partition(id).expect("just allocated").clone();
                    return Some((self.current.clone(), self.local_faults(), degraded));
                }
            }
            // Children: drop each non-trivial group in turn.
            if spec.groups.len() <= 1 {
                continue;
            }
            for (gi, group) in spec.groups.iter().enumerate() {
                if !group.iter().any(|&a| spec.extents[a] > 1) {
                    continue;
                }
                let mut child = spec.clone();
                child.groups.remove(gi);
                for &a in group {
                    child.extents[a] = 1;
                }
                let key = (child.extents.clone(), child.groups.clone());
                if seen.insert(key) {
                    queue.push_back(child);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcdoc_fault::FaultEvent;
    use qcdoc_geometry::TorusShape;

    fn machine_2222() -> TorusShape {
        TorusShape::new(&[2, 2, 2, 2])
    }

    /// Half-machine spec: a [2,2,2] logical box, placed along axis 3.
    fn half_spec(x3: usize) -> PartitionSpec {
        let mut origin = NodeCoord::ORIGIN;
        origin.set(3, x3);
        PartitionSpec {
            origin,
            extents: vec![2, 2, 2, 1],
            groups: vec![vec![0], vec![1], vec![2]],
        }
    }

    #[test]
    fn replan_moves_the_job_onto_the_spare_half() {
        let mut q = Qdaemon::new(machine_2222());
        q.boot(&[]);
        let faults = FaultPlan::new(1).with_event(FaultEvent::dead_link(3, 0, 0));
        let mut planner = RecoveryPlanner::new(&mut q, half_spec(0), faults, false).unwrap();
        assert_eq!(planner.partition().logical_shape().dims(), &[2, 2, 2]);
        // Physical node 3 sits in the x3=0 half, so the local plan sees it.
        assert_eq!(planner.local_faults().events.len(), 1);

        // The run comes back with logical node 3 wedged and its link dead.
        let mut ledger = HealthLedger::new(8);
        ledger.node_mut(3).links[0].dead = true;
        ledger.node_mut(5).liveness = qcdoc_fault::Liveness::Wedged;
        let (part, local, degraded) = planner
            .quarantine_and_replan(&mut q, &ledger)
            .expect("the x3=1 half is free");
        assert!(!degraded);
        assert_eq!(part.logical_shape().dims(), &[2, 2, 2]);
        // The culprit (physical 3) is quarantined; only it — the wedged
        // bystander stays in the pool.
        assert_eq!(q.node_state(NodeId(3)), crate::qdaemon::NodeState::Faulty);
        assert_ne!(q.node_state(NodeId(5)), crate::qdaemon::NodeState::Faulty);
        // The replacement lives in the other half, clear of the fault, so
        // the translated plan is empty.
        assert_eq!(part.spec().origin.get(3), 1);
        assert!(local.events.is_empty());
        let census = q.census();
        assert_eq!((census.busy, census.faulty), (8, 1));
    }

    #[test]
    fn replan_fails_when_no_spare_exists_and_degradation_is_off() {
        let machine = TorusShape::new(&[2, 2, 2]);
        let mut q = Qdaemon::new(machine.clone());
        q.boot(&[]);
        let spec = PartitionSpec::native(&machine);
        let mut planner = RecoveryPlanner::new(&mut q, spec, FaultPlan::default(), false).unwrap();
        let mut ledger = HealthLedger::new(8);
        ledger.node_mut(6).liveness = qcdoc_fault::Liveness::Crashed { iteration: 0 };
        assert!(planner.quarantine_and_replan(&mut q, &ledger).is_none());
    }

    #[test]
    fn degradation_shrinks_to_the_largest_clean_sub_partition() {
        let machine = TorusShape::new(&[2, 2, 2]);
        let mut q = Qdaemon::new(machine.clone());
        q.boot(&[]);
        let spec = PartitionSpec::native(&machine);
        let mut planner = RecoveryPlanner::new(&mut q, spec, FaultPlan::default(), true).unwrap();
        // Physical node 6 = (0,1,1) dies; the whole machine can't allocate,
        // but a [2,2] slab avoiding x2=1 can.
        let mut ledger = HealthLedger::new(8);
        ledger.node_mut(6).liveness = qcdoc_fault::Liveness::Crashed { iteration: 0 };
        let (part, _, degraded) = planner
            .quarantine_and_replan(&mut q, &ledger)
            .expect("a 4-node slab must fit");
        assert!(degraded);
        assert_eq!(part.logical_shape().node_count(), 4);
        // Every member is clear of the quarantined node.
        for l in 0..part.node_count() {
            assert_ne!(part.physical_id(NodeId(l as u32)).0, 6);
        }
    }

    #[test]
    fn faults_outside_the_partition_are_dropped() {
        let mut q = Qdaemon::new(machine_2222());
        q.boot(&[]);
        // Fault on physical node 11, which lives in the x3=1 half.
        let faults = FaultPlan::new(1).with_event(FaultEvent::dead_link(11, 2, 0));
        let planner = RecoveryPlanner::new(&mut q, half_spec(0), faults, false).unwrap();
        assert!(planner.local_faults().events.is_empty());
    }
}
