//! The chaos soak: the whole autonomic loop under continuous fire.
//!
//! The paper's operational claim (§4) is not that QCDOC hardware never
//! fails — it is that week-long campaigns *finish*, bit-identically,
//! on a machine where links die, nodes crash, memory rots and the host
//! RAID hiccups. This module compresses that week into a seeded soak:
//!
//! * a multi-tenant job mix runs under the scheduler on a live
//!   [`Qdaemon`], checkpointing durably into a [`JobVault`];
//! * a deterministic fault schedule strikes running jobs with every
//!   failure family at once — dead links, node crashes, wedges,
//!   uncorrectable machine checks, link corruption, and storage faults
//!   aimed at the checkpoint traffic;
//! * each strike drives the detect half of the loop: health evidence →
//!   [`qcdoc_fault::classify_ledger`] → quarantine →
//!   [`qcdoc_sched::Scheduler::fail_job`] (checkpoint rollback,
//!   exponential hold-off, failure-domain-avoiding requeue);
//! * the repair pipeline ([`Qdaemon::repair_admit`] /
//!   [`Qdaemon::repair_tick`]) runs concurrently, returning healthy
//!   nodes to the spare pool and blacklisting the seeded "lemons";
//! * optionally the qdaemon process is killed mid-soak: the scheduler
//!   snapshot is parked in the vault under [`qcdoc_sched::STATE_JOB`],
//!   a fresh daemon boots over the surviving disks, and the restored
//!   scheduler must resume the *same* event log.
//!
//! The [`ChaosReport`] carries the machine-level SLOs the acceptance
//! tests and the `chaos` bench gate: zero lost jobs, goodput under
//! fault load, capacity recovered after repair, and — for the tracked
//! CG jobs — a final solve **bit-identical** to the fault-free digest.

use crate::ckstore::JobVault;
use crate::nfs::NfsServer;
use crate::qdaemon::{NodeState, Qdaemon};
use qcdoc_fault::{
    classify_ledger, convicted_nodes, FailureClass, HealthLedger, Liveness, StorageFault,
    StorageFaultPlan,
};
use qcdoc_geometry::{NodeId, TorusShape};
use qcdoc_lattice::checkpoint::write_checkpoint;
use qcdoc_lattice::solver::{resume_cgne_on, solve_cgne_checkpointed, CgParams};
use qcdoc_lattice::wilson::WilsonDirac;
use qcdoc_lattice::{CgCheckpoint, FermionField, GaugeField, Lattice};
use qcdoc_sched::{
    CheckpointVault, JobId, JobSpec, JobStatus, Priority, SchedConfig, SchedEvent, Scheduler,
    ShapeRequest, TenantConfig, STATE_JOB,
};
use qcdoc_telemetry::Histogram;
use std::collections::HashMap;

/// SplitMix64: the soak's only source of randomness, fully determined
/// by the config seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Tunables of one chaos soak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for the fault schedule, job mix, and lemon draw. Same seed,
    /// same machine history, byte for byte.
    pub seed: u64,
    /// Physical machine shape.
    pub machine: TorusShape,
    /// Background (untracked) jobs in the mix.
    pub jobs: usize,
    /// CG jobs whose final solve is checked bit-identical against a
    /// fault-free reference.
    pub tracked_solves: usize,
    /// Ticks between fault strikes during the soak window.
    pub fault_period: u64,
    /// Ticks between durable checkpoint rounds.
    pub ckpt_period: u64,
    /// Ticks between repair-pipeline ticks.
    pub repair_period: u64,
    /// Fault injection stops at this tick; the soak then drains.
    pub soak_ticks: u64,
    /// Kill and restart the qdaemon at this tick (`None` = never).
    pub restart_at: Option<u64>,
    /// Permanently-bad nodes drawn from the seed: they fail every
    /// burn-in until blacklisted.
    pub lemons: usize,
    /// Hard bound on total soak ticks (a stuck soak is a test failure,
    /// not a hang).
    pub max_ticks: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 4096,
            machine: TorusShape::new(&[4, 2, 2, 2, 1, 1]),
            jobs: 8,
            tracked_solves: 2,
            fault_period: 11,
            ckpt_period: 5,
            repair_period: 3,
            soak_ticks: 420,
            restart_at: None,
            lemons: 2,
            max_ticks: 6000,
        }
    }
}

/// What the soak measured — the SLO surface the tests and bench gate.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Final virtual clock.
    pub clock: u64,
    /// Jobs that delivered all their work.
    pub completed: u64,
    /// Jobs lost: terminally failed or cancelled. The headline SLO
    /// gates this at zero.
    pub lost: u64,
    /// Failure requeues the scheduler performed.
    pub requeues: u64,
    /// Machine-side fault strikes injected.
    pub failures_injected: u64,
    /// Storage-side strikes injected into the vault's NFS server.
    pub storage_faults_injected: u64,
    /// Durable checkpoint writes that failed under storage fire.
    pub storage_failures: u64,
    /// Nodes the repair pipeline returned to the spare pool.
    pub repaired: u64,
    /// Nodes stickily blacklisted.
    pub blacklisted: u64,
    /// Delivered-minus-wasted service over capacity (the scheduler's
    /// goodput ratio at drain end).
    pub goodput: f64,
    /// Allocatable nodes (ready + spare) when the soak ended.
    pub capacity_end: usize,
    /// Physical node count, for the capacity ratio.
    pub node_count: usize,
    /// Tracked CG jobs whose post-soak resume matched the fault-free
    /// fingerprint.
    pub tracked_matches: usize,
    /// Tracked CG jobs total.
    pub tracked_total: usize,
    /// Failed → Requeued latency in ticks, per requeue.
    pub requeue_latency: Histogram,
    /// After a mid-soak restart: whether the restored scheduler's event
    /// log was byte-identical to the pre-kill log. `None` when no
    /// restart was scheduled.
    pub restart_log_resumed: Option<bool>,
    /// FNV-1a digest of the full event log — the determinism handle.
    pub event_digest: u64,
    /// Number of scheduler events.
    pub event_count: usize,
    /// Whether the scheduler drained to `Done` (every job terminal).
    pub drained: bool,
}

impl ChaosReport {
    /// Allocatable fraction of the machine at soak end.
    pub fn capacity_ratio(&self) -> f64 {
        self.capacity_end as f64 / self.node_count.max(1) as f64
    }
}

/// The fault families the schedule rotates through.
const FAMILIES: u64 = 6;

/// The global lattice of the tracked CG jobs — small enough to solve in
/// milliseconds, large enough for a nontrivial iteration count.
fn tracked_lattice() -> Lattice {
    Lattice::new([4, 4, 2, 2])
}

/// The fault-free reference for the tracked solves: solution
/// fingerprint, per-iteration checkpoints, and iteration count.
struct TrackedReference {
    fingerprint: u64,
    sink: Vec<CgCheckpoint>,
    iterations: u64,
}

fn tracked_reference(seed: u64) -> TrackedReference {
    let lat = tracked_lattice();
    let gauge = GaugeField::hot(lat, 21 ^ seed);
    let op = WilsonDirac::new(&gauge, 0.12);
    let b = FermionField::gaussian(lat, 22 ^ seed);
    let mut x = FermionField::zero(lat);
    let mut sink = Vec::new();
    let report = solve_cgne_checkpointed(&op, &mut x, &b, CgParams::default(), 1, &mut sink);
    assert!(report.converged, "reference solve must converge");
    TrackedReference {
        fingerprint: x.fingerprint(),
        sink,
        iterations: report.iterations as u64,
    }
}

/// Shape menu every chaos job submits: a half-machine box degrading to a
/// quarter and an eighth, so quarantine never strands a job with a
/// single all-or-nothing shape.
fn shape_menu(machine: &TorusShape) -> Vec<ShapeRequest> {
    let dims = machine.dims();
    let mut menu = Vec::new();
    // Largest first: the full leading axis crossed with progressively
    // fewer of the remaining axes, each kept at full extent (partition
    // validity: grouped single axes must span their physical extent).
    for keep in (1..=dims.len().min(3)).rev() {
        let mut extents = vec![1; dims.len()];
        let mut groups = Vec::new();
        for (axis, extent) in dims.iter().take(keep).enumerate() {
            extents[axis] = *extent;
            groups.push(vec![axis]);
        }
        menu.push(ShapeRequest { extents, groups });
    }
    menu
}

/// Synthesize the health evidence one fault family leaves behind, aimed
/// at `victim`. Returns the ledger and the class the harness *expects*
/// [`classify_ledger`] to assign (asserted by the property tests).
fn evidence_for(family: u64, victim: u32, node_count: usize, tick: u64) -> HealthLedger {
    let mut ledger = HealthLedger::new(node_count);
    let nh = ledger.node_mut(victim);
    match family {
        0 => nh.links[(tick % 12) as usize].dead = true,
        1 => {
            nh.liveness = Liveness::Crashed {
                iteration: tick as usize,
            }
        }
        2 => nh.liveness = Liveness::Wedged,
        3 => nh.machine_checks = 1,
        4 => nh.links[(tick % 12) as usize].checksum_ok = Some(false),
        _ => unreachable!("machine families are 0..5"),
    }
    ledger
}

/// One running chaos soak. Owns the scheduler, daemon and vault so the
/// restart path can tear them down and rebuild from the disks.
struct Soak {
    cfg: ChaosConfig,
    rng: Rng,
    sched: Scheduler,
    q: Qdaemon,
    vault: JobVault,
    reference: TrackedReference,
    tracked: Vec<JobId>,
    lemons: Vec<u32>,
    events_seen: usize,
    failed_at: HashMap<u64, u64>,
    report: ChaosReport,
}

const VAULT_ROOT: &str = "/data/vault";

impl Soak {
    fn new(cfg: ChaosConfig) -> Soak {
        let mut rng = Rng(cfg.seed);
        let node_count = cfg.machine.node_count();
        let mut lemons = Vec::new();
        while lemons.len() < cfg.lemons.min(node_count / 4) {
            let n = rng.below(node_count as u64) as u32;
            if !lemons.contains(&n) {
                lemons.push(n);
            }
        }

        let mut q = Qdaemon::new(cfg.machine.clone());
        q.boot(&[]);
        let vault = JobVault::new(NfsServer::new(&["/data"], 1 << 26), VAULT_ROOT);
        let mut sched = Scheduler::new(
            cfg.machine.clone(),
            SchedConfig {
                // Generous budget: the soak's SLO is zero lost jobs, so
                // the budget must outlast the densest plausible streak
                // of convictions against one unlucky job.
                retry_budget: 12,
                holdoff_base: 2,
                ..SchedConfig::default()
            },
        );
        for tenant in ["alpha", "beta", "gamma"] {
            sched.add_tenant(tenant, TenantConfig::default());
        }

        let reference = tracked_reference(cfg.seed);
        let menu = shape_menu(&cfg.machine);
        let mut tracked = Vec::new();
        for i in 0..cfg.tracked_solves {
            let id = sched
                .submit(JobSpec {
                    tenant: "alpha".into(),
                    priority: Priority::Production,
                    shapes: menu.clone(),
                    work: reference.iterations,
                    preemptible: true,
                })
                .unwrap_or_else(|e| panic!("tracked job {i} refused: {e}"));
            tracked.push(id);
        }
        for i in 0..cfg.jobs {
            let tenant = ["alpha", "beta", "gamma"][i % 3];
            let priority = [
                Priority::Scavenger,
                Priority::Standard,
                Priority::Production,
            ][(rng.below(3)) as usize];
            sched
                .submit(JobSpec {
                    tenant: tenant.into(),
                    priority,
                    shapes: menu.clone(),
                    work: 40 + rng.below(80),
                    preemptible: true,
                })
                .unwrap_or_else(|e| panic!("chaos job {i} refused: {e}"));
        }

        let report = ChaosReport {
            clock: 0,
            completed: 0,
            lost: 0,
            requeues: 0,
            failures_injected: 0,
            storage_faults_injected: 0,
            storage_failures: 0,
            repaired: 0,
            blacklisted: 0,
            goodput: 0.0,
            capacity_end: 0,
            node_count,
            tracked_matches: 0,
            tracked_total: cfg.tracked_solves,
            requeue_latency: Histogram::default(),
            restart_log_resumed: None,
            event_digest: 0,
            event_count: 0,
            drained: false,
        };
        Soak {
            cfg,
            rng,
            sched,
            q,
            vault,
            reference,
            tracked,
            lemons,
            events_seen: 0,
            failed_at: HashMap::new(),
            report,
        }
    }

    /// Member node ids of a running job's placement box.
    fn members(&self, id: JobId) -> Vec<u32> {
        let Some(job) = self.sched.job(id) else {
            return Vec::new();
        };
        let Some(placement) = job.placement.as_ref() else {
            return Vec::new();
        };
        let machine = self.sched.machine();
        let mut extents = job.spec.shapes[placement.shape_index].extents.clone();
        extents.resize(machine.rank(), 1);
        machine
            .coords()
            .filter(|c| {
                (0..machine.rank()).all(|ax| {
                    let lo = placement.origin.get(ax);
                    c.get(ax) >= lo && c.get(ax) < lo + extents[ax]
                })
            })
            .map(|c| machine.rank_of(c).0)
            .collect()
    }

    /// The durable-checkpoint round: every running job parks a blob.
    /// Tracked jobs park the genuine CG checkpoint at their delivered
    /// iteration; background jobs park a synthetic blob. A hard storage
    /// error is itself a failure: the job is failed with class
    /// [`FailureClass::Storage`].
    fn checkpoint_round(&mut self) {
        let running: Vec<JobId> = {
            let mut ids: Vec<JobId> = self
                .sched
                .jobs()
                .filter(|j| j.status == JobStatus::Running)
                .map(|j| j.id)
                .collect();
            ids.sort();
            ids
        };
        for id in running {
            let job = self.sched.job(id).expect("running job");
            let delivered = job.spec.work - job.remaining;
            let blob = if self.tracked.contains(&id) {
                // The genuine exact-bits checkpoint at this service level.
                match self
                    .reference
                    .sink
                    .iter()
                    .find(|c| c.iterations as u64 == delivered)
                {
                    Some(ckpt) => write_checkpoint(ckpt),
                    None => continue, // before the first iteration boundary
                }
            } else {
                let mut b = format!("chaos-job-{}-", id.0).into_bytes();
                b.extend_from_slice(&delivered.to_le_bytes());
                b
            };
            if let Err(e) = self
                .sched
                .store_checkpoint_durable(id, blob, &mut self.vault)
            {
                // The RAID failed the save past its bounded retries:
                // detect, classify as a storage loss, requeue.
                let _ = e;
                self.report.storage_failures += 1;
                self.sched
                    .fail_job(id, FailureClass::Storage, &[], &mut self.q);
            }
        }
    }

    /// One fault strike from the schedule: five machine-side families
    /// plus the storage family, rotated by the seed.
    fn strike(&mut self, tick: u64) {
        let family = self.rng.below(FAMILIES);
        if family == 5 {
            self.storage_strike();
            return;
        }
        let running: Vec<JobId> = {
            let mut ids: Vec<JobId> = self
                .sched
                .jobs()
                .filter(|j| j.status == JobStatus::Running)
                .map(|j| j.id)
                .collect();
            ids.sort();
            ids
        };
        if running.is_empty() {
            return;
        }
        let victim_job = running[self.rng.below(running.len() as u64) as usize];
        let members = self.members(victim_job);
        if members.is_empty() {
            return;
        }
        let victim = members[self.rng.below(members.len() as u64) as usize];
        let ledger = evidence_for(family, victim, self.report.node_count, tick);
        let class = classify_ledger(&ledger);
        let convicted = convicted_nodes(&ledger);
        self.q.ingest_health(&ledger);
        self.sched
            .fail_job(victim_job, class, &convicted, &mut self.q);
        self.report.failures_injected += 1;
    }

    /// A storage strike: alternate transient-error bursts at the next
    /// checkpoint writes with bit rot on a committed generation.
    fn storage_strike(&mut self) {
        let rot = self.rng.below(2) == 0;
        let seed = self.rng.next();
        if rot {
            let committed: Vec<String> = self
                .vault
                .nfs()
                .list(VAULT_ROOT)
                .into_iter()
                .filter(|p| p.contains("/gen-"))
                .collect();
            if let Some(path) = committed
                .get(self.rng.below(committed.len().max(1) as u64) as usize)
                .cloned()
            {
                let byte = self.rng.below(64);
                let bit = (self.rng.below(8)) as u8;
                self.vault
                    .nfs_mut()
                    .inject(
                        &StorageFaultPlan::new(seed).with_event(StorageFault::BitRot {
                            path,
                            from_op: 0,
                            byte,
                            bit,
                        }),
                    );
                self.report.storage_faults_injected += 1;
            }
        } else {
            let op = self.vault.nfs().ops();
            let write_op = self.vault.nfs().write_ops();
            self.vault.nfs_mut().inject(
                &StorageFaultPlan::new(seed)
                    .with_event(StorageFault::Transient { op, count: 2 })
                    .with_event(StorageFault::TornWrite {
                        write_op,
                        keep: None,
                    }),
            );
            self.report.storage_faults_injected += 1;
        }
    }

    /// Advance the repair pipeline one tick; lemons fail burn-in.
    fn repair_round(&mut self) {
        self.q.repair_admit();
        let lemons = self.lemons.clone();
        let tick = self.q.repair_tick(&mut |node| !lemons.contains(&node));
        self.report.repaired += tick.returned.len() as u64;
        self.report.blacklisted += tick.blacklisted.len() as u64;
    }

    /// Fold newly-appended scheduler events into the latency histogram.
    fn absorb_events(&mut self) {
        let events = self.sched.events();
        for event in &events[self.events_seen..] {
            match event {
                SchedEvent::Failed { job, at, .. } => {
                    self.failed_at.insert(job.0, *at);
                }
                SchedEvent::Requeued { job, at } => {
                    if let Some(failed) = self.failed_at.remove(&job.0) {
                        self.report
                            .requeue_latency
                            .observe(at.saturating_sub(failed));
                    }
                }
                _ => {}
            }
        }
        self.events_seen = events.len();
    }

    /// Kill the qdaemon process mid-soak and restart over the surviving
    /// disks: scheduler snapshot through the vault, fresh daemon boot
    /// with the quarantine re-applied, running jobs checkpoint-requeued
    /// without charging their retry budgets.
    fn restart(&mut self) {
        let prekill: Vec<String> = self
            .sched
            .events()
            .iter()
            .map(|e| format!("{e:?}"))
            .collect();
        let bytes = self.sched.save_state();
        self.vault
            .store(STATE_JOB, &bytes)
            .expect("scheduler snapshot must park durably");

        // The process dies. Only the disks — the NFS server inside the
        // vault — survive. Node states are re-derived from what the old
        // daemon knew (operationally: the host's quarantine file).
        let node_count = self.report.node_count;
        let faulty: Vec<u32> = (0..node_count as u32)
            .filter(|&n| {
                matches!(
                    self.q.node_state(NodeId(n)),
                    NodeState::Faulty | NodeState::Blacklisted
                )
            })
            .collect();
        let blacklisted: Vec<u32> = (0..node_count as u32)
            .filter(|&n| self.q.node_state(NodeId(n)) == NodeState::Blacklisted)
            .collect();

        let old_vault = std::mem::replace(
            &mut self.vault,
            JobVault::new(NfsServer::new(&["/data"], 1), VAULT_ROOT),
        );
        self.vault = JobVault::new(old_vault.into_server(), VAULT_ROOT);
        let saved = self
            .vault
            .load(STATE_JOB)
            .expect("snapshot readable")
            .expect("snapshot present");
        self.sched = Scheduler::restore_state(&saved).expect("snapshot restores");
        let resumed: Vec<String> = self
            .sched
            .events()
            .iter()
            .map(|e| format!("{e:?}"))
            .collect();
        self.report.restart_log_resumed = Some(resumed == prekill);
        self.events_seen = self.events_seen.min(resumed.len());

        self.q = Qdaemon::new(self.cfg.machine.clone());
        self.q.boot(&faulty);
        for n in blacklisted {
            self.q.blacklist(NodeId(n));
        }
        self.sched.recover_after_restart();
        self.sched.schedule(&mut self.q);
    }

    /// Verify every tracked job: resume from its newest durable
    /// generation (or solve fresh if it never checkpointed) and compare
    /// fingerprints with the fault-free reference.
    fn verify_tracked(&mut self) {
        let lat = tracked_lattice();
        let gauge = GaugeField::hot(lat, 21 ^ self.cfg.seed);
        let op = WilsonDirac::new(&gauge, 0.12);
        let b = FermionField::gaussian(lat, 22 ^ self.cfg.seed);
        for &id in &self.tracked.clone() {
            let done = self
                .sched
                .job(id)
                .map(|j| j.status == JobStatus::Completed)
                .unwrap_or(false);
            if !done {
                continue;
            }
            let fingerprint = match self.vault.load(id) {
                Ok(Some(blob)) => {
                    let Ok(ckpt) = qcdoc_lattice::checkpoint::read_checkpoint(&blob) else {
                        continue;
                    };
                    let template = FermionField::zero(lat);
                    match resume_cgne_on(&op, &template, &ckpt, CgParams::default()) {
                        Ok((x, _)) => x.fingerprint(),
                        Err(_) => continue,
                    }
                }
                // Never durably checkpointed (or discarded): the job ran
                // fault-free start to finish — solve fresh.
                _ => {
                    let mut x = FermionField::zero(lat);
                    let mut sink = Vec::new();
                    solve_cgne_checkpointed(&op, &mut x, &b, CgParams::default(), 0, &mut sink);
                    x.fingerprint()
                }
            };
            if fingerprint == self.reference.fingerprint {
                self.report.tracked_matches += 1;
            }
        }
    }

    fn run(mut self) -> ChaosReport {
        self.sched.schedule(&mut self.q);
        let mut tick: u64 = 0;
        while tick < self.cfg.max_ticks {
            if self.cfg.restart_at == Some(tick) {
                self.restart();
            }
            if tick > 0 && tick < self.cfg.soak_ticks {
                if tick.is_multiple_of(self.cfg.fault_period) {
                    self.strike(tick);
                }
                if tick.is_multiple_of(self.cfg.ckpt_period) {
                    self.checkpoint_round();
                }
            }
            if tick.is_multiple_of(self.cfg.repair_period) {
                self.repair_round();
            }
            self.absorb_events();
            let all_terminal = self.sched.jobs().all(|j| {
                matches!(
                    j.status,
                    JobStatus::Completed | JobStatus::Canceled | JobStatus::Failed
                )
            });
            if all_terminal && tick >= self.cfg.soak_ticks {
                break;
            }
            self.sched.advance(1, &mut self.q);
            tick += 1;
        }
        // Drain repairs so capacity recovery is measured, not raced.
        for _ in 0..64 {
            self.repair_round();
        }
        self.absorb_events();
        self.verify_tracked();

        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        for event in self.sched.events() {
            for byte in format!("{event:?}").bytes() {
                digest ^= byte as u64;
                digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        let census = self.q.census();
        // Admission-time blacklists (conviction threshold already met)
        // bypass the repair-tick report; the census is authoritative.
        self.report.blacklisted = census.blacklisted as u64;
        self.report.clock = self.sched.clock();
        self.report.completed = self
            .sched
            .jobs()
            .filter(|j| j.status == JobStatus::Completed)
            .count() as u64;
        self.report.lost = self
            .sched
            .jobs()
            .filter(|j| matches!(j.status, JobStatus::Failed | JobStatus::Canceled))
            .count() as u64;
        self.report.requeues = self.sched.requeues();
        self.report.goodput = self.sched.goodput_ratio();
        self.report.capacity_end = census.allocatable();
        self.report.event_digest = digest;
        self.report.event_count = self.sched.events().len();
        self.report.drained = self.sched.jobs().all(|j| {
            matches!(
                j.status,
                JobStatus::Completed | JobStatus::Canceled | JobStatus::Failed
            )
        });
        self.report
    }
}

/// Run one seeded chaos soak to completion and report the SLO surface.
pub fn run_chaos(cfg: ChaosConfig) -> ChaosReport {
    Soak::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_soak_loses_nothing_and_recovers_capacity() {
        let report = run_chaos(ChaosConfig::default());
        assert!(report.drained, "soak must drain: {report:?}");
        assert_eq!(report.lost, 0, "zero lost jobs: {report:?}");
        assert!(report.failures_injected > 10, "{report:?}");
        assert!(report.requeues > 0, "{report:?}");
        assert_eq!(
            report.completed,
            (ChaosConfig::default().jobs + ChaosConfig::default().tracked_solves) as u64
        );
        assert_eq!(report.tracked_matches, report.tracked_total, "{report:?}");
        // Capacity: everything except the blacklisted lemons is back.
        assert!(
            report.capacity_end + report.blacklisted as usize >= report.node_count,
            "{report:?}"
        );
    }

    #[test]
    fn same_seed_same_history() {
        let a = run_chaos(ChaosConfig::default());
        let b = run_chaos(ChaosConfig::default());
        assert_eq!(a.event_digest, b.event_digest);
        assert_eq!(a.event_count, b.event_count);
        assert_eq!(a.clock, b.clock);
        let c = run_chaos(ChaosConfig {
            seed: 5,
            ..ChaosConfig::default()
        });
        assert_ne!(a.event_digest, c.event_digest, "seed must matter");
    }
}
