//! The Ethernet tree: the boot / diagnostics / I/O network (Figure 2).
//!
//! Every node's 100 Mbit port feeds a 5-port hub on its daughterboard;
//! motherboards aggregate those hubs; the host connects over multiple
//! Gigabit links. The tree never carries physics traffic — only boot
//! packets, RPC, and NFS I/O — so a simple capacity model is enough: the
//! bottleneck for a whole-machine boot is the aggregate Gigabit trunk,
//! while any single node is limited by its own 100 Mbit port.

use serde::{Deserialize, Serialize};

/// Capacity model of the Ethernet tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EthernetTree {
    /// Number of nodes on the tree.
    pub nodes: usize,
    /// Per-node port rate, bits/second (100 Mbit).
    pub node_bps: f64,
    /// Number of Gigabit links between the tree and the host.
    pub host_links: usize,
    /// Per-host-link rate, bits/second.
    pub host_link_bps: f64,
}

impl EthernetTree {
    /// A tree for `nodes` nodes with the standard port speeds and one host
    /// Gigabit link per 1024 nodes (at least one).
    pub fn for_machine(nodes: usize) -> EthernetTree {
        EthernetTree {
            nodes,
            node_bps: 100.0e6,
            host_links: (nodes / 1024).max(1),
            host_link_bps: 1.0e9,
        }
    }

    /// Aggregate host-side bandwidth in bits/second.
    pub fn trunk_bps(&self) -> f64 {
        self.host_links as f64 * self.host_link_bps
    }

    /// Time to push `bytes_per_node` to every node simultaneously,
    /// in seconds: limited by the slower of the per-node port and each
    /// node's share of the trunk.
    pub fn broadcast_seconds(&self, bytes_per_node: u64) -> f64 {
        let bits_per_node = bytes_per_node as f64 * 8.0;
        let per_node_port = bits_per_node / self.node_bps;
        let trunk_total = bits_per_node * self.nodes as f64 / self.trunk_bps();
        per_node_port.max(trunk_total)
    }

    /// Number of 5-port hubs needed to aggregate all node ports: each hub
    /// takes 4 downstream ports and one uplink, layered until one root.
    pub fn hub_count(&self) -> usize {
        let mut total = 0usize;
        let mut ports = self.nodes;
        while ports > 1 {
            let hubs = ports.div_ceil(4);
            total += hubs;
            ports = hubs;
        }
        total
    }
}

/// A UDP packet on the tree (boot traffic or RPC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpPacket {
    /// Destination node rank.
    pub dest: u32,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Standard boot-packet payload size (I-cache line write + headers).
pub const BOOT_PACKET_BYTES: u64 = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trunk_scales_with_machine_size() {
        let small = EthernetTree::for_machine(512);
        let big = EthernetTree::for_machine(12288);
        assert_eq!(small.host_links, 1);
        assert_eq!(big.host_links, 12);
        assert!(big.trunk_bps() > small.trunk_bps());
    }

    #[test]
    fn small_machine_broadcast_is_port_limited() {
        // 8 nodes demand 0.8 Gbit of a 1 Gbit trunk: the 100 Mbit node
        // port is the bottleneck. (Ten 100 Mbit ports saturate one trunk
        // link, so anything larger is trunk-limited.)
        let t = EthernetTree::for_machine(8);
        let per_port = 8.0 * 1.0e6 / t.node_bps;
        assert!((t.broadcast_seconds(1_000_000) - per_port).abs() < 1e-9);
    }

    #[test]
    fn large_machine_broadcast_is_trunk_limited() {
        let t = EthernetTree::for_machine(12288);
        let trunk = 8.0e6 * 12288.0 / t.trunk_bps();
        assert!((t.broadcast_seconds(1_000_000) - trunk).abs() < 1e-9);
        // And the trunk time exceeds a single port's time.
        assert!(trunk > 8.0e6 / t.node_bps);
    }

    #[test]
    fn hub_tree_covers_all_nodes() {
        let t = EthernetTree::for_machine(64);
        // 64 ports -> 16 hubs -> 4 hubs -> 1 hub = 21.
        assert_eq!(t.hub_count(), 21);
    }
}
