//! RISCWatch-style debugging over the Ethernet/JTAG path (§2.3).
//!
//! "We can use the Ethernet/JTAG controller to provide the physical
//! transport mechanism required for IBM's standard RISCWatch debugger.
//! Thus a user can debug and single step code on a given node. For
//! hardware debugging, this same mechanism offers us an I/O path to
//! monitor and probe a failing node."
//!
//! The model pairs a [`DebugSession`] (the host side, issuing JTAG
//! commands) with a minimal register-machine core standing in for the PPC
//! 440's debug-visible state: 32 GPRs, a PC, and a program of simple
//! instructions. The point is the *protocol*: halt a running node, read
//! its registers, plant a breakpoint, single-step, resume — all through
//! the packet path that works even when the node's software is wedged.

use crate::jtag::{CpuState, JtagCommand, JtagController, JtagReply};
use serde::{Deserialize, Serialize};

/// A debug-visible instruction of the toy core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DebugInsn {
    /// `r[d] = imm`.
    Li(u8, u32),
    /// `r[d] = r[a] + r[b]` (wrapping).
    Add(u8, u8, u8),
    /// `if r[a] != 0 { pc = target }`.
    Bnz(u8, u32),
    /// `r[a] -= 1` (wrapping).
    Dec(u8),
    /// Spin here forever (the "wedged node" the paper probes).
    Hang,
    /// Stop cleanly.
    Done,
}

/// The debug-visible core state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DebugCpu {
    /// Program counter (instruction index).
    pub pc: u32,
    /// General-purpose registers.
    pub gprs: [u32; 32],
    program: Vec<DebugInsn>,
    breakpoints: Vec<u32>,
    halted_at_breakpoint: bool,
    finished: bool,
}

impl DebugCpu {
    /// Load a program at PC 0.
    pub fn new(program: Vec<DebugInsn>) -> DebugCpu {
        DebugCpu {
            pc: 0,
            gprs: [0; 32],
            program,
            breakpoints: Vec::new(),
            halted_at_breakpoint: false,
            finished: false,
        }
    }

    /// Whether the program ran to `Done`.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Execute one instruction; returns false on `Hang`/`Done` (no
    /// progress).
    pub fn step(&mut self) -> bool {
        if self.finished {
            return false;
        }
        let insn = self
            .program
            .get(self.pc as usize)
            .copied()
            .unwrap_or(DebugInsn::Done);
        match insn {
            DebugInsn::Li(d, imm) => {
                self.gprs[d as usize] = imm;
                self.pc += 1;
            }
            DebugInsn::Add(d, a, b) => {
                self.gprs[d as usize] = self.gprs[a as usize].wrapping_add(self.gprs[b as usize]);
                self.pc += 1;
            }
            DebugInsn::Bnz(a, target) => {
                if self.gprs[a as usize] != 0 {
                    self.pc = target;
                } else {
                    self.pc += 1;
                }
            }
            DebugInsn::Dec(a) => {
                self.gprs[a as usize] = self.gprs[a as usize].wrapping_sub(1);
                self.pc += 1;
            }
            DebugInsn::Hang => return false,
            DebugInsn::Done => {
                self.finished = true;
                return false;
            }
        }
        true
    }

    /// Run until a breakpoint, `Hang`, `Done`, or the step budget runs out.
    fn run(&mut self, budget: u32) -> CpuState {
        for _ in 0..budget {
            if self.breakpoints.contains(&self.pc) && !self.halted_at_breakpoint {
                self.halted_at_breakpoint = true;
                return CpuState::Halted;
            }
            self.halted_at_breakpoint = false;
            if !self.step() {
                return if self.finished {
                    CpuState::Held
                } else {
                    CpuState::Running
                };
            }
        }
        CpuState::Running
    }
}

/// A host-side debug session: RISCWatch over Ethernet/JTAG.
#[derive(Debug)]
pub struct DebugSession {
    jtag: JtagController,
    cpu: DebugCpu,
    packets: u64,
}

impl DebugSession {
    /// Attach to a node running `program`.
    pub fn attach(program: Vec<DebugInsn>) -> DebugSession {
        let mut jtag = JtagController::new();
        jtag.handle(&JtagCommand::StartCpu);
        DebugSession {
            jtag,
            cpu: DebugCpu::new(program),
            packets: 1,
        }
    }

    /// UDP packets exchanged so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Halt the CPU (works even if the node software is wedged — the JTAG
    /// path is pure hardware).
    pub fn halt(&mut self) {
        self.jtag.handle(&JtagCommand::HaltCpu);
        self.packets += 1;
    }

    /// Resume and run up to `budget` instructions (or to a breakpoint).
    pub fn resume(&mut self, budget: u32) -> CpuState {
        self.jtag.handle(&JtagCommand::StartCpu);
        self.packets += 1;
        let state = self.cpu.run(budget);
        if state == CpuState::Halted {
            self.jtag.handle(&JtagCommand::HaltCpu);
            self.packets += 1;
        }
        state
    }

    /// Single-step one instruction (requires halt).
    pub fn step(&mut self) -> bool {
        assert_eq!(
            self.jtag.state(),
            CpuState::Halted,
            "step requires a halted CPU"
        );
        self.jtag.handle(&JtagCommand::SingleStep);
        self.packets += 1;
        self.cpu.step()
    }

    /// Read a GPR through the register window.
    pub fn read_gpr(&mut self, reg: u8) -> u32 {
        self.jtag
            .post_register(reg as u16, self.cpu.gprs[reg as usize]);
        self.packets += 1;
        match self
            .jtag
            .handle(&JtagCommand::ReadRegister { reg: reg as u16 })
        {
            JtagReply::Value(v) => v,
            JtagReply::Ok => unreachable!(),
        }
    }

    /// Current PC.
    pub fn pc(&self) -> u32 {
        self.cpu.pc
    }

    /// Plant a breakpoint at an instruction index.
    pub fn set_breakpoint(&mut self, pc: u32) {
        self.cpu.breakpoints.push(pc);
        self.packets += 1;
    }

    /// Whether the target program completed.
    pub fn finished(&self) -> bool {
        self.cpu.finished()
    }
}

/// A countdown loop: r1 = n; loop { r2 += r1; r1 -= 1 } until r1 == 0.
pub fn countdown_program(n: u32) -> Vec<DebugInsn> {
    vec![
        DebugInsn::Li(1, n),
        DebugInsn::Li(2, 0),
        // loop: (pc 2)
        DebugInsn::Add(2, 2, 1),
        DebugInsn::Dec(1),
        DebugInsn::Bnz(1, 2),
        DebugInsn::Done,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_runs_to_completion() {
        let mut s = DebugSession::attach(countdown_program(5));
        let state = s.resume(1000);
        assert_eq!(state, CpuState::Held, "Done parks the core");
        assert!(s.finished());
        // r2 = 5+4+3+2+1.
        assert_eq!(s.read_gpr(2), 15);
    }

    #[test]
    fn breakpoint_halts_at_loop_head() {
        let mut s = DebugSession::attach(countdown_program(3));
        s.set_breakpoint(2);
        assert_eq!(s.resume(1000), CpuState::Halted);
        assert_eq!(s.pc(), 2);
        // First hit: r1 still 3, r2 still 0.
        assert_eq!(s.read_gpr(1), 3);
        assert_eq!(s.read_gpr(2), 0);
        // Resume to the next hit: one loop body executed.
        assert_eq!(s.resume(1000), CpuState::Halted);
        assert_eq!(s.read_gpr(1), 2);
        assert_eq!(s.read_gpr(2), 3);
    }

    #[test]
    fn single_step_through_the_loop_body() {
        let mut s = DebugSession::attach(countdown_program(2));
        s.set_breakpoint(2);
        s.resume(1000);
        // Step: Add, Dec, Bnz.
        assert!(s.step());
        assert_eq!(s.read_gpr(2), 2);
        assert!(s.step());
        assert_eq!(s.read_gpr(1), 1);
        assert!(s.step());
        assert_eq!(s.pc(), 2, "branch taken back to loop head");
    }

    #[test]
    fn wedged_node_can_still_be_probed() {
        // The paper's hardware-debug scenario: the node hangs, but the
        // JTAG path reads its state anyway.
        let mut s = DebugSession::attach(vec![DebugInsn::Li(7, 0xDEAD), DebugInsn::Hang]);
        let state = s.resume(1000);
        assert_eq!(state, CpuState::Running, "hung, not finished");
        assert!(!s.finished());
        s.halt();
        assert_eq!(
            s.read_gpr(7),
            0xDEAD,
            "state visible through JTAG despite the hang"
        );
        assert_eq!(s.pc(), 1);
    }

    #[test]
    fn every_operation_costs_packets() {
        let mut s = DebugSession::attach(countdown_program(1));
        let p0 = s.packets();
        s.set_breakpoint(2);
        s.resume(10);
        s.read_gpr(1);
        assert!(s.packets() > p0 + 2);
    }
}
