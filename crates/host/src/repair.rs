//! The repair pipeline: quarantine is a waiting room, not a grave.
//!
//! The QCDOC operating model (hep-lat/0309096 §4) assumes week-long
//! campaigns on 12,288 nodes with inevitable hardware attrition. A
//! machine whose quarantine only ever *grows* drains monotonically to
//! uselessness; the real machine's operators pulled daughterboards,
//! reseated cables, and returned racks to service. This module is that
//! loop, made deterministic:
//!
//! 1. **Admit** ([`Qdaemon::repair_admit`]) — quarantined nodes enter
//!    the pipeline, unless their conviction count already exceeds the
//!    sticky-blacklist threshold, in which case they are blacklisted on
//!    the spot.
//! 2. **Scrub** — a full memory scrub pass (modelled as a fixed number
//!    of repair ticks) clears soft errors: the dominant real-world
//!    failure the paper's EDAC scrubbing was built for.
//! 3. **Burn-in** — a link self-test on an isolated partition (the node
//!    exchanges test frames with itself over its 12 wires; no healthy
//!    neighbour is put at risk). More ticks, then a verdict.
//! 4. **Verdict** ([`Qdaemon::repair_tick`]'s callback) — pass returns
//!    the node to the spare pool via [`Qdaemon::return_to_service`];
//!    fail is a fresh conviction, and enough convictions blacklist the
//!    node for good.
//!
//! The pipeline never touches `Busy` or `Ready` nodes, and a node under
//! repair stays `Faulty` — isolation from the allocator is what makes
//! the burn-in safe.

use crate::qdaemon::{NodeState, Qdaemon};
use qcdoc_geometry::NodeId;
use qcdoc_telemetry::{FlightKind, HOST_NODE};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tunables of the repair pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairConfig {
    /// Repair ticks a full memory scrub takes.
    pub scrub_ticks: u32,
    /// Repair ticks the isolated link burn-in takes.
    pub burnin_ticks: u32,
    /// Convictions after which a node is blacklisted instead of
    /// re-admitted (sticky: blacklisting is permanent).
    pub max_convictions: u32,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            scrub_ticks: 4,
            burnin_ticks: 8,
            max_convictions: 3,
        }
    }
}

/// Where one node sits in the repair pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairStage {
    /// Memory scrub in progress; `remaining` ticks to go.
    Scrub {
        /// Repair ticks left in this stage.
        remaining: u32,
    },
    /// Isolated link burn-in in progress; `remaining` ticks to go.
    BurnIn {
        /// Repair ticks left in this stage.
        remaining: u32,
    },
}

impl RepairStage {
    /// Stable label for reports and the `qrepair` verb.
    pub fn label(&self) -> &'static str {
        match self {
            RepairStage::Scrub { .. } => "scrub",
            RepairStage::BurnIn { .. } => "burnin",
        }
    }
}

/// The in-flight repair work, keyed by node id (BTreeMap so iteration —
/// and therefore every verdict order and flight event — is
/// deterministic).
#[derive(Debug, Clone, Default)]
pub struct RepairPipeline {
    /// Pipeline tunables.
    pub config: RepairConfig,
    stages: BTreeMap<u32, RepairStage>,
}

impl RepairPipeline {
    /// Nodes currently in the pipeline, with their stage, in node order.
    pub fn stages(&self) -> impl Iterator<Item = (u32, RepairStage)> + '_ {
        self.stages.iter().map(|(&n, &s)| (n, s))
    }

    /// Whether a node is currently under repair.
    pub fn contains(&self, node: u32) -> bool {
        self.stages.contains_key(&node)
    }

    /// Number of nodes under repair.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Drop a node from the pipeline (on return-to-service/blacklist).
    pub(crate) fn forget(&mut self, node: u32) {
        self.stages.remove(&node);
    }
}

/// What one [`Qdaemon::repair_tick`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairTickReport {
    /// Nodes that passed burn-in and returned to the spare pool.
    pub returned: Vec<u32>,
    /// Nodes that failed burn-in this tick (fresh conviction).
    pub failed: Vec<u32>,
    /// Nodes blacklisted this tick (by a failed burn-in that exhausted
    /// their convictions).
    pub blacklisted: Vec<u32>,
}

impl Qdaemon {
    /// Replace the repair pipeline's tunables (only sensible while the
    /// pipeline is empty; in-flight stages keep their old countdowns).
    pub fn set_repair_config(&mut self, config: RepairConfig) {
        self.repair.config = config;
    }

    /// Read-only view of the repair pipeline.
    pub fn repair_pipeline(&self) -> &RepairPipeline {
        &self.repair
    }

    /// Admit every quarantined node into the repair pipeline. Nodes
    /// whose conviction count already reached the blacklist threshold
    /// are blacklisted instead. Returns the newly admitted node ids.
    pub fn repair_admit(&mut self) -> Vec<u32> {
        let threshold = self.repair.config.max_convictions;
        let scrub = self.repair.config.scrub_ticks;
        let mut admitted = Vec::new();
        for i in 0..self.states.len() {
            if self.states[i] != NodeState::Faulty || self.repair.contains(i as u32) {
                continue;
            }
            if self.convictions[i] >= threshold {
                self.blacklist(NodeId(i as u32));
                continue;
            }
            self.repair
                .stages
                .insert(i as u32, RepairStage::Scrub { remaining: scrub });
            self.flight.record(
                HOST_NODE,
                self.sweeps,
                FlightKind::Repair,
                "repair_admit",
                i as u64,
                self.convictions[i] as u64,
            );
            self.metrics.counter_add("autorepair_admitted", &[], 1);
            admitted.push(i as u32);
        }
        admitted
    }

    /// Advance every in-flight repair by one tick. A finished scrub
    /// moves to burn-in; a finished burn-in asks `verdict(node)` whether
    /// the isolated link self-test passed. Pass → the node returns to
    /// the spare pool; fail → a fresh conviction, and past the threshold
    /// the node is blacklisted (otherwise it leaves the pipeline still
    /// quarantined, eligible for re-admission).
    pub fn repair_tick(&mut self, verdict: &mut dyn FnMut(u32) -> bool) -> RepairTickReport {
        let burnin = self.repair.config.burnin_ticks;
        let threshold = self.repair.config.max_convictions;
        let mut report = RepairTickReport::default();
        let nodes: Vec<u32> = self.repair.stages.keys().copied().collect();
        for node in nodes {
            let stage = self.repair.stages.get_mut(&node).expect("in pipeline");
            match stage {
                RepairStage::Scrub { remaining } => {
                    *remaining -= 1;
                    if *remaining == 0 {
                        *stage = RepairStage::BurnIn { remaining: burnin };
                    }
                }
                RepairStage::BurnIn { remaining } => {
                    *remaining -= 1;
                    if *remaining > 0 {
                        continue;
                    }
                    self.repair.stages.remove(&node);
                    if verdict(node) {
                        self.return_to_service(NodeId(node))
                            .expect("burn-in node is quarantined");
                        report.returned.push(node);
                    } else {
                        // A failed burn-in is hardware evidence, exactly
                        // like a failed health sweep: convict again.
                        self.convictions[node as usize] += 1;
                        self.metrics.counter_add("autorepair_convictions", &[], 1);
                        self.flight.record(
                            HOST_NODE,
                            self.sweeps,
                            FlightKind::Repair,
                            "repair_fail",
                            node as u64,
                            self.convictions[node as usize] as u64,
                        );
                        report.failed.push(node);
                        if self.convictions[node as usize] >= threshold {
                            self.blacklist(NodeId(node));
                            report.blacklisted.push(node);
                        }
                    }
                }
            }
        }
        report
    }

    /// Human-readable pipeline state — the `qrepair` verb's payload.
    pub fn repair_state(&self) -> String {
        let census = self.census();
        let mut out = format!(
            "repair: {} in pipeline, {} faulty, {} spare, {} blacklisted\n",
            self.repair.len(),
            census.faulty,
            census.spare,
            census.blacklisted
        );
        for (node, stage) in self.repair.stages() {
            let remaining = match stage {
                RepairStage::Scrub { remaining } | RepairStage::BurnIn { remaining } => remaining,
            };
            out.push_str(&format!(
                "node {} stage={} remaining={} convictions={}\n",
                node,
                stage.label(),
                remaining,
                self.convictions[node as usize]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcdoc_geometry::TorusShape;

    fn booted() -> Qdaemon {
        let mut q = Qdaemon::new(TorusShape::new(&[4, 2, 2, 2, 1, 1]));
        q.boot(&[]);
        q
    }

    #[test]
    fn repair_returns_a_healthy_node_to_the_spare_pool() {
        let mut q = booted();
        q.mark_faulty(NodeId(5));
        assert_eq!(q.census().faulty, 1);
        assert_eq!(q.repair_admit(), vec![5]);
        assert!(q.repair_pipeline().contains(5));
        // Node stays quarantined (isolated) through scrub + burn-in.
        let cfg = q.repair_pipeline().config;
        let total = cfg.scrub_ticks + cfg.burnin_ticks;
        for tick in 0..total {
            assert_eq!(q.census().faulty, 1, "still isolated at tick {tick}");
            let report = q.repair_tick(&mut |_| true);
            if tick + 1 == total {
                assert_eq!(report.returned, vec![5]);
            } else {
                assert_eq!(report, RepairTickReport::default());
            }
        }
        let census = q.census();
        assert_eq!((census.ready, census.spare, census.faulty), (31, 1, 0));
        assert_eq!(census.allocatable(), 32);
        assert!(q.repair_pipeline().is_empty());
        assert!(q.flight_dump(None).contains("return_to_service"));
        // The spare is genuinely allocatable again.
        use qcdoc_geometry::PartitionSpec;
        assert!(q.allocate(PartitionSpec::native(q.machine())).is_ok());
    }

    #[test]
    fn repeated_convictions_blacklist_stickily() {
        let mut q = booted();
        q.set_repair_config(RepairConfig {
            scrub_ticks: 1,
            burnin_ticks: 1,
            max_convictions: 2,
        });
        q.mark_faulty(NodeId(7)); // conviction 1
        assert_eq!(q.repair_admit(), vec![7]);
        q.repair_tick(&mut |_| true); // scrub done
        let report = q.repair_tick(&mut |_| false); // burn-in fails: conviction 2
        assert_eq!(report.failed, vec![7]);
        assert_eq!(report.blacklisted, vec![7], "threshold reached");
        assert_eq!(q.node_state(NodeId(7)), NodeState::Blacklisted);
        assert_eq!(q.census().blacklisted, 1);
        // Sticky: never re-admitted, never returnable.
        assert!(q.repair_admit().is_empty());
        assert!(q.return_to_service(NodeId(7)).is_err());
        // And a node already over the threshold is blacklisted at
        // admission rather than wasting a repair slot.
        q.mark_faulty(NodeId(3));
        q.mark_faulty(NodeId(3)); // idempotent: still 1 conviction
        assert_eq!(q.convictions(NodeId(3)), 1);
        q.repair_admit();
        q.repair_tick(&mut |_| true);
        let r = q.repair_tick(&mut |_| false); // conviction 2
        assert_eq!(r.blacklisted, vec![3]);
    }

    #[test]
    fn return_to_service_guards_its_inputs() {
        let mut q = booted();
        assert!(q.return_to_service(NodeId(0)).is_err(), "ready node");
        q.mark_faulty(NodeId(0));
        assert!(q.return_to_service(NodeId(0)).is_ok());
        assert_eq!(q.census().spare, 1);
        // A spare that fails again loses its spare status, and the clean
        // return cleared its old conviction: only the fresh one counts.
        q.mark_faulty(NodeId(0));
        let census = q.census();
        assert_eq!((census.spare, census.faulty), (0, 1));
        assert_eq!(q.convictions(NodeId(0)), 1);
    }

    #[test]
    fn repair_state_is_reportable() {
        let mut q = booted();
        q.mark_faulty(NodeId(2));
        q.repair_admit();
        let s = q.repair_state();
        assert!(s.contains("1 in pipeline"));
        assert!(s.contains("node 2 stage=scrub"));
        q.repair_tick(&mut |_| true);
        q.repair_tick(&mut |_| true);
        q.repair_tick(&mut |_| true);
        q.repair_tick(&mut |_| true);
        assert!(q.repair_state().contains("stage=burnin"));
    }
}
