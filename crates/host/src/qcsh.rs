//! The qcsh command interface (§3.1).
//!
//! "The command line interface to QCDOC is a modified UNIX tcsh, which we
//! call the qcsh. The qcsh runs with the UID of the application programmer,
//! gathers commands to send to the qdaemon and manages the returning data
//! stream. A subprocess of the qcsh is also available to the qdaemon, so
//! the qdaemon can request files on the host to be opened and they will
//! have the permissions and protections of the application programmer."

use crate::qdaemon::Qdaemon;
use qcdoc_geometry::PartitionSpec;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A parsed qcsh command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// `qboot` — boot the machine.
    Boot,
    /// `qpartition <rank>` — request a partition remapped to `rank`
    /// dimensions (whole machine, axes folded from the top).
    Partition {
        /// Requested logical rank (1..=6).
        rank: usize,
    },
    /// `qstat` — node census.
    Status,
    /// `qfree <id>` — release a partition.
    Free {
        /// Partition id.
        id: u32,
    },
    /// `qcat <id>` — print the job output of a partition.
    Cat {
        /// Partition id.
        id: u32,
    },
    /// `qhw <id>` — print the hardware report of a partition (link
    /// errors, ECC corrections, checksum result across its nodes).
    Hardware {
        /// Partition id.
        id: u32,
    },
}

/// Parse a command line.
pub fn parse(line: &str) -> Result<Command, String> {
    let mut words = line.split_whitespace();
    match words.next() {
        Some("qboot") => Ok(Command::Boot),
        Some("qpartition") => {
            let rank: usize = words
                .next()
                .ok_or("qpartition needs a rank")?
                .parse()
                .map_err(|e| format!("bad rank: {e}"))?;
            if !(1..=6).contains(&rank) {
                return Err(format!("rank {rank} outside 1..=6"));
            }
            Ok(Command::Partition { rank })
        }
        Some("qstat") => Ok(Command::Status),
        Some("qfree") => {
            let id = words
                .next()
                .ok_or("qfree needs an id")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            Ok(Command::Free { id })
        }
        Some("qcat") => {
            let id = words
                .next()
                .ok_or("qcat needs an id")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            Ok(Command::Cat { id })
        }
        Some("qhw") => {
            let id = words
                .next()
                .ok_or("qhw needs an id")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            Ok(Command::Hardware { id })
        }
        Some(other) => Err(format!("unknown command: {other}")),
        None => Err("empty command".into()),
    }
}

/// A user session: runs with the programmer's UID, and the qdaemon opens
/// host files through it with that user's permissions.
#[derive(Debug)]
pub struct Qcsh {
    uid: u32,
    /// Host paths this user may open (the permission model).
    allowed_paths: Vec<String>,
    /// Files opened on behalf of the qdaemon.
    open_files: HashMap<String, Vec<u8>>,
}

impl Qcsh {
    /// A session for user `uid` with access to the given path prefixes.
    pub fn new(uid: u32, allowed_paths: &[&str]) -> Qcsh {
        Qcsh {
            uid,
            allowed_paths: allowed_paths.iter().map(|s| s.to_string()).collect(),
            open_files: HashMap::new(),
        }
    }

    /// The session's UID.
    pub fn uid(&self) -> u32 {
        self.uid
    }

    /// Execute a command against the qdaemon, returning the textual reply.
    pub fn execute(&mut self, q: &mut Qdaemon, cmd: &Command) -> String {
        match cmd {
            Command::Boot => {
                let report = q.boot(&[]);
                format!(
                    "booted {} nodes ({} faulty) in {:.2} s, machine {}",
                    report.booted,
                    report.faulty.len(),
                    report.boot_seconds,
                    report.detected_shape
                )
            }
            Command::Partition { rank } => {
                let machine = q.machine().clone();
                // Fold the trailing axes into the last logical dimension.
                let keep = rank - 1;
                let mut groups: Vec<Vec<usize>> = (0..keep).map(|a| vec![a]).collect();
                groups.push((keep..machine.rank()).collect());
                let spec = PartitionSpec {
                    origin: qcdoc_geometry::NodeCoord::ORIGIN,
                    extents: machine.dims().to_vec(),
                    groups,
                };
                match q.allocate(spec) {
                    Ok(id) => {
                        let shape = q.partition(id).unwrap().logical_shape().clone();
                        format!("partition {id}: {shape}")
                    }
                    Err(e) => format!("error: {e}"),
                }
            }
            Command::Status => {
                let (ready, busy, faulty, unbooted) = q.census();
                format!("ready {ready} busy {busy} faulty {faulty} unbooted {unbooted}")
            }
            Command::Free { id } => {
                q.release(*id);
                format!("partition {id} released")
            }
            Command::Cat { id } => match q.job_output(*id) {
                Some(out) => String::from_utf8_lossy(out).into_owned(),
                None => format!("error: no partition {id}"),
            },
            Command::Hardware { id } => match q.hardware_report(*id) {
                Some(hw) => format!(
                    "link errors {} ecc corrections {} checksums {}",
                    hw.link_errors,
                    hw.ecc_corrections,
                    if hw.checksums_ok { "ok" } else { "FAILED" }
                ),
                None => format!("error: no partition {id}"),
            },
        }
    }

    /// Open a host file on behalf of the qdaemon — succeeds only under the
    /// user's permitted prefixes.
    pub fn open_for_daemon(&mut self, path: &str) -> Result<(), String> {
        if self
            .allowed_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()))
        {
            self.open_files.insert(path.to_string(), Vec::new());
            Ok(())
        } else {
            Err(format!("uid {}: permission denied: {path}", self.uid))
        }
    }

    /// Write into a file previously opened for the daemon.
    pub fn write_for_daemon(&mut self, path: &str, bytes: &[u8]) -> Result<(), String> {
        match self.open_files.get_mut(path) {
            Some(f) => {
                f.extend_from_slice(bytes);
                Ok(())
            }
            None => Err(format!("{path} not open")),
        }
    }

    /// Contents of a file written through this session.
    pub fn file(&self, path: &str) -> Option<&[u8]> {
        self.open_files.get(path).map(|v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcdoc_geometry::TorusShape;

    fn machine() -> TorusShape {
        TorusShape::new(&[4, 2, 2, 2, 1, 1])
    }

    #[test]
    fn parse_commands() {
        assert_eq!(parse("qboot"), Ok(Command::Boot));
        assert_eq!(parse("qpartition 4"), Ok(Command::Partition { rank: 4 }));
        assert_eq!(parse("qstat"), Ok(Command::Status));
        assert_eq!(parse("qfree 2"), Ok(Command::Free { id: 2 }));
        assert_eq!(parse("qcat 0"), Ok(Command::Cat { id: 0 }));
        assert_eq!(parse("qhw 1"), Ok(Command::Hardware { id: 1 }));
        assert!(parse("qhw").is_err());
        assert!(parse("qpartition 9").is_err());
        assert!(parse("rm -rf /").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn boot_then_partition_session() {
        let mut q = Qdaemon::new(machine());
        let mut sh = Qcsh::new(1001, &["/home/physics"]);
        let boot_reply = sh.execute(&mut q, &Command::Boot);
        assert!(boot_reply.contains("booted 32 nodes"));
        let part_reply = sh.execute(&mut q, &Command::Partition { rank: 4 });
        assert!(part_reply.starts_with("partition 0:"), "{part_reply}");
        let stat = sh.execute(&mut q, &Command::Status);
        assert_eq!(stat, "ready 0 busy 32 faulty 0 unbooted 0");
        sh.execute(&mut q, &Command::Free { id: 0 });
        let stat = sh.execute(&mut q, &Command::Status);
        assert_eq!(stat, "ready 32 busy 0 faulty 0 unbooted 0");
    }

    #[test]
    fn job_output_through_qcat() {
        let mut q = Qdaemon::new(machine());
        let mut sh = Qcsh::new(1001, &[]);
        sh.execute(&mut q, &Command::Boot);
        sh.execute(&mut q, &Command::Partition { rank: 6 });
        q.return_output(0, b"sweep 1: plaquette 0.5812\n");
        let out = sh.execute(&mut q, &Command::Cat { id: 0 });
        assert!(out.contains("plaquette"));
    }

    #[test]
    fn hardware_report_through_qhw() {
        use qcdoc_fault::HealthLedger;
        let mut q = Qdaemon::new(machine());
        let mut sh = Qcsh::new(1001, &[]);
        sh.execute(&mut q, &Command::Boot);
        sh.execute(&mut q, &Command::Partition { rank: 6 });
        // A sweep saw three corrected memory errors on node 5 and two
        // checksum-rejected DMA blocks on node 7; all healed in place.
        let mut ledger = HealthLedger::new(32);
        ledger.node_mut(5).ecc_corrected = 3;
        ledger.node_mut(7).links[2].block_rejects = 2;
        q.ingest_health(&ledger);
        let out = sh.execute(&mut q, &Command::Hardware { id: 0 });
        assert_eq!(out, "link errors 2 ecc corrections 3 checksums ok");
        // An end-of-run checksum mismatch flips the verdict and sticks.
        ledger.node_mut(2).links[0].checksum_ok = Some(false);
        q.ingest_health(&ledger);
        let out = sh.execute(&mut q, &Command::Hardware { id: 0 });
        assert_eq!(out, "link errors 2 ecc corrections 3 checksums FAILED");
        // Unknown partitions report an error, not a panic.
        let out = sh.execute(&mut q, &Command::Hardware { id: 9 });
        assert_eq!(out, "error: no partition 9");
    }

    #[test]
    fn daemon_file_access_uses_user_permissions() {
        let mut sh = Qcsh::new(1001, &["/home/physics"]);
        assert!(sh.open_for_daemon("/home/physics/configs/lat.0").is_ok());
        assert!(sh.open_for_daemon("/etc/passwd").is_err());
        sh.write_for_daemon("/home/physics/configs/lat.0", b"binary")
            .unwrap();
        assert_eq!(sh.file("/home/physics/configs/lat.0"), Some(&b"binary"[..]));
        assert!(sh.write_for_daemon("/never/opened", b"x").is_err());
    }
}
