//! The qcsh command interface (§3.1).
//!
//! "The command line interface to QCDOC is a modified UNIX tcsh, which we
//! call the qcsh. The qcsh runs with the UID of the application programmer,
//! gathers commands to send to the qdaemon and manages the returning data
//! stream. A subprocess of the qcsh is also available to the qdaemon, so
//! the qdaemon can request files on the host to be opened and they will
//! have the permissions and protections of the application programmer."

use crate::qdaemon::Qdaemon;
use qcdoc_geometry::PartitionSpec;
use qcdoc_sched::{JobId, JobSpec, JobStatus, Priority, Scheduler, ShapeRequest};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A parsed qcsh command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// `qboot` — boot the machine.
    Boot,
    /// `qpartition <rank>` — request a partition remapped to `rank`
    /// dimensions (whole machine, axes folded from the top).
    Partition {
        /// Requested logical rank (1..=6).
        rank: usize,
    },
    /// `qstat` — node census.
    Status,
    /// `qfree <id>` — release a partition.
    Free {
        /// Partition id.
        id: u32,
    },
    /// `qcat <id>` — print the job output of a partition.
    Cat {
        /// Partition id.
        id: u32,
    },
    /// `qhw <id>` — print the hardware report of a partition (link
    /// errors, ECC corrections, checksum result across its nodes).
    Hardware {
        /// Partition id.
        id: u32,
    },
    /// `qsub <tenant> <class> <work> <shape>...` — submit a batch job to
    /// the scheduler. Each shape is `EXTENTSxEXTENTS.../GROUP-GROUP...`
    /// with groups as digit strings of physical axes, e.g.
    /// `4x2x1/01` (axes 0 and 1 folded into one logical axis) or
    /// `4x2x2/0-1-2` (three logical axes).
    Submit {
        /// Owning tenant.
        tenant: String,
        /// Priority class.
        priority: Priority,
        /// Service demand in scheduler ticks.
        work: u64,
        /// Acceptable shapes in preference order.
        shapes: Vec<ShapeRequest>,
    },
    /// `qflight [<node>]` — dump the host's flight recorder (the black
    /// box of quarantines and ingested node events), optionally filtered
    /// to one node's events.
    Flight {
        /// Restrict the dump to this node's events.
        node: Option<u32>,
    },
    /// `qjobs` — list the scheduler's jobs.
    Jobs,
    /// `qdel <job>` — cancel a batch job.
    Delete {
        /// The job number (as printed by `qsub`/`qjobs`).
        job: u64,
    },
    /// `qretry <job>` — manually requeue a held or terminally-failed
    /// job (releases its hold-off immediately, or revives a job whose
    /// retry budget ran out).
    Retry {
        /// The job number (as printed by `qsub`/`qjobs`).
        job: u64,
    },
    /// `qrepair` — dump the repair pipeline's state (nodes under
    /// scrub/burn-in, convictions, spares, blacklist).
    Repair,
}

/// Parse a `qsub` shape argument: `4x2x1/01` or `4x2x2/0-1-2`.
fn parse_shape(word: &str) -> Result<ShapeRequest, String> {
    let (extents_part, groups_part) = word
        .split_once('/')
        .ok_or_else(|| format!("shape {word} needs EXTENTS/GROUPS"))?;
    let extents = extents_part
        .split('x')
        .map(|e| {
            e.parse::<usize>()
                .map_err(|err| format!("bad extent: {err}"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let groups = groups_part
        .split('-')
        .map(|g| {
            g.chars()
                .map(|c| {
                    c.to_digit(10)
                        .map(|d| d as usize)
                        .ok_or_else(|| format!("bad axis digit {c:?} in shape {word}"))
                })
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ShapeRequest { extents, groups })
}

/// Parse a command line.
pub fn parse(line: &str) -> Result<Command, String> {
    let mut words = line.split_whitespace();
    match words.next() {
        Some("qboot") => Ok(Command::Boot),
        Some("qpartition") => {
            let rank: usize = words
                .next()
                .ok_or("qpartition needs a rank")?
                .parse()
                .map_err(|e| format!("bad rank: {e}"))?;
            if !(1..=6).contains(&rank) {
                return Err(format!("rank {rank} outside 1..=6"));
            }
            Ok(Command::Partition { rank })
        }
        Some("qstat") => Ok(Command::Status),
        Some("qfree") => {
            let id = words
                .next()
                .ok_or("qfree needs an id")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            Ok(Command::Free { id })
        }
        Some("qcat") => {
            let id = words
                .next()
                .ok_or("qcat needs an id")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            Ok(Command::Cat { id })
        }
        Some("qhw") => {
            let id = words
                .next()
                .ok_or("qhw needs an id")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            Ok(Command::Hardware { id })
        }
        Some("qsub") => {
            let tenant = words.next().ok_or("qsub needs a tenant")?.to_string();
            let priority = match words.next().ok_or("qsub needs a class")? {
                "scavenger" => Priority::Scavenger,
                "standard" => Priority::Standard,
                "production" => Priority::Production,
                other => return Err(format!("unknown class {other}")),
            };
            let work: u64 = words
                .next()
                .ok_or("qsub needs a work amount")?
                .parse()
                .map_err(|e| format!("bad work: {e}"))?;
            let shapes = words.map(parse_shape).collect::<Result<Vec<_>, _>>()?;
            if shapes.is_empty() {
                return Err("qsub needs at least one shape".into());
            }
            Ok(Command::Submit {
                tenant,
                priority,
                work,
                shapes,
            })
        }
        Some("qflight") => {
            let node = match words.next() {
                Some(w) => Some(w.parse().map_err(|e| format!("bad node: {e}"))?),
                None => None,
            };
            Ok(Command::Flight { node })
        }
        Some("qjobs") => Ok(Command::Jobs),
        Some("qdel") => {
            let job = words
                .next()
                .ok_or("qdel needs a job number")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            Ok(Command::Delete { job })
        }
        Some("qretry") => {
            let job = words
                .next()
                .ok_or("qretry needs a job number")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            Ok(Command::Retry { job })
        }
        Some("qrepair") => Ok(Command::Repair),
        Some(other) => Err(format!("unknown command: {other}")),
        None => Err("empty command".into()),
    }
}

/// Stable lowercase word for a job status in qcsh output.
fn status_word(status: JobStatus) -> &'static str {
    match status {
        JobStatus::Queued => "queued",
        JobStatus::Running => "running",
        JobStatus::Preempted => "preempted",
        JobStatus::Held => "held",
        JobStatus::Failed => "failed",
        JobStatus::Completed => "completed",
        JobStatus::Canceled => "canceled",
    }
}

/// A user session: runs with the programmer's UID, and the qdaemon opens
/// host files through it with that user's permissions.
#[derive(Debug)]
pub struct Qcsh {
    uid: u32,
    /// Host paths this user may open (the permission model).
    allowed_paths: Vec<String>,
    /// Files opened on behalf of the qdaemon.
    open_files: HashMap<String, Vec<u8>>,
}

impl Qcsh {
    /// A session for user `uid` with access to the given path prefixes.
    pub fn new(uid: u32, allowed_paths: &[&str]) -> Qcsh {
        Qcsh {
            uid,
            allowed_paths: allowed_paths.iter().map(|s| s.to_string()).collect(),
            open_files: HashMap::new(),
        }
    }

    /// The session's UID.
    pub fn uid(&self) -> u32 {
        self.uid
    }

    /// Execute a command against the qdaemon, returning the textual reply.
    pub fn execute(&mut self, q: &mut Qdaemon, cmd: &Command) -> String {
        match cmd {
            Command::Boot => {
                let report = q.boot(&[]);
                format!(
                    "booted {} nodes ({} faulty) in {:.2} s, machine {}",
                    report.booted,
                    report.faulty.len(),
                    report.boot_seconds,
                    report.detected_shape
                )
            }
            Command::Partition { rank } => {
                let machine = q.machine().clone();
                // Fold the trailing axes into the last logical dimension.
                let keep = rank - 1;
                let mut groups: Vec<Vec<usize>> = (0..keep).map(|a| vec![a]).collect();
                groups.push((keep..machine.rank()).collect());
                let spec = PartitionSpec {
                    origin: qcdoc_geometry::NodeCoord::ORIGIN,
                    extents: machine.dims().to_vec(),
                    groups,
                };
                match q.allocate(spec) {
                    Ok(id) => {
                        let shape = q.partition(id).unwrap().logical_shape().clone();
                        format!("partition {id}: {shape}")
                    }
                    Err(e) => format!("error: {e}"),
                }
            }
            Command::Status => {
                let census = q.census();
                format!(
                    "ready {} busy {} faulty {} unbooted {} spare {} blacklisted {}",
                    census.ready,
                    census.busy,
                    census.faulty,
                    census.unbooted,
                    census.spare,
                    census.blacklisted
                )
            }
            Command::Submit { .. }
            | Command::Jobs
            | Command::Delete { .. }
            | Command::Retry { .. } => {
                "error: batch commands need a scheduler (use execute_batch)".into()
            }
            Command::Repair => q.repair_state(),
            Command::Free { id } => {
                q.release(*id);
                format!("partition {id} released")
            }
            Command::Cat { id } => match q.job_output(*id) {
                Some(out) => String::from_utf8_lossy(out).into_owned(),
                None => format!("error: no partition {id}"),
            },
            Command::Flight { node } => q.flight_dump(*node),
            Command::Hardware { id } => match q.hardware_report(*id) {
                Some(hw) => format!(
                    "link errors {} ecc corrections {} checksums {}",
                    hw.link_errors,
                    hw.ecc_corrections,
                    if hw.checksums_ok { "ok" } else { "FAILED" }
                ),
                None => format!("error: no partition {id}"),
            },
        }
    }

    /// Execute a command in a batch session: the scheduler handles
    /// `qsub`/`qjobs`/`qdel` (submissions trigger an immediate
    /// scheduling pass against the daemon), everything else falls
    /// through to [`Qcsh::execute`].
    pub fn execute_batch(
        &mut self,
        q: &mut Qdaemon,
        sched: &mut Scheduler,
        cmd: &Command,
    ) -> String {
        match cmd {
            Command::Submit {
                tenant,
                priority,
                work,
                shapes,
            } => {
                let spec = JobSpec {
                    tenant: tenant.clone(),
                    priority: *priority,
                    shapes: shapes.clone(),
                    work: *work,
                    preemptible: true,
                };
                match sched.submit(spec) {
                    Ok(id) => {
                        sched.schedule(q);
                        let status = sched.job(id).expect("just submitted").status;
                        format!("{id} {}", status_word(status))
                    }
                    Err(e) => format!("error: {e}"),
                }
            }
            Command::Jobs => {
                let mut lines: Vec<String> = sched
                    .jobs()
                    .map(|j| {
                        let shape = j
                            .placement
                            .as_ref()
                            .map(|p| p.logical.to_string())
                            .unwrap_or_else(|| "-".into());
                        let failure = j
                            .last_failure
                            .map(|c| c.label())
                            .unwrap_or("-");
                        format!(
                            "{} tenant={} class={} {} shape={} wait={} preempted={} retries={} failure={}",
                            j.id,
                            j.spec.tenant,
                            j.spec.priority.label(),
                            status_word(j.status),
                            shape,
                            j.wait_ticks,
                            j.preemptions,
                            j.retries,
                            failure
                        )
                    })
                    .collect();
                if lines.is_empty() {
                    lines.push("no jobs".into());
                }
                lines.join("\n")
            }
            Command::Delete { job } => {
                if sched.cancel(JobId(*job), q) {
                    format!("job{job} canceled")
                } else {
                    format!("error: no cancellable job{job}")
                }
            }
            Command::Retry { job } => {
                if sched.retry(JobId(*job), q) {
                    let status = sched.job(JobId(*job)).expect("retried job").status;
                    format!("job{job} {}", status_word(status))
                } else {
                    format!("error: no retryable job{job}")
                }
            }
            other => self.execute(q, other),
        }
    }

    /// Open a host file on behalf of the qdaemon — succeeds only under the
    /// user's permitted prefixes.
    pub fn open_for_daemon(&mut self, path: &str) -> Result<(), String> {
        if self
            .allowed_paths
            .iter()
            .any(|p| path.starts_with(p.as_str()))
        {
            self.open_files.insert(path.to_string(), Vec::new());
            Ok(())
        } else {
            Err(format!("uid {}: permission denied: {path}", self.uid))
        }
    }

    /// Write into a file previously opened for the daemon.
    pub fn write_for_daemon(&mut self, path: &str, bytes: &[u8]) -> Result<(), String> {
        match self.open_files.get_mut(path) {
            Some(f) => {
                f.extend_from_slice(bytes);
                Ok(())
            }
            None => Err(format!("{path} not open")),
        }
    }

    /// Contents of a file written through this session.
    pub fn file(&self, path: &str) -> Option<&[u8]> {
        self.open_files.get(path).map(|v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcdoc_geometry::TorusShape;

    fn machine() -> TorusShape {
        TorusShape::new(&[4, 2, 2, 2, 1, 1])
    }

    #[test]
    fn parse_commands() {
        assert_eq!(parse("qboot"), Ok(Command::Boot));
        assert_eq!(parse("qpartition 4"), Ok(Command::Partition { rank: 4 }));
        assert_eq!(parse("qstat"), Ok(Command::Status));
        assert_eq!(parse("qfree 2"), Ok(Command::Free { id: 2 }));
        assert_eq!(parse("qcat 0"), Ok(Command::Cat { id: 0 }));
        assert_eq!(parse("qhw 1"), Ok(Command::Hardware { id: 1 }));
        assert!(parse("qhw").is_err());
        assert!(parse("qpartition 9").is_err());
        assert!(parse("rm -rf /").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn boot_then_partition_session() {
        let mut q = Qdaemon::new(machine());
        let mut sh = Qcsh::new(1001, &["/home/physics"]);
        let boot_reply = sh.execute(&mut q, &Command::Boot);
        assert!(boot_reply.contains("booted 32 nodes"));
        let part_reply = sh.execute(&mut q, &Command::Partition { rank: 4 });
        assert!(part_reply.starts_with("partition 0:"), "{part_reply}");
        let stat = sh.execute(&mut q, &Command::Status);
        assert_eq!(
            stat,
            "ready 0 busy 32 faulty 0 unbooted 0 spare 0 blacklisted 0"
        );
        sh.execute(&mut q, &Command::Free { id: 0 });
        let stat = sh.execute(&mut q, &Command::Status);
        assert_eq!(
            stat,
            "ready 32 busy 0 faulty 0 unbooted 0 spare 0 blacklisted 0"
        );
    }

    #[test]
    fn job_output_through_qcat() {
        let mut q = Qdaemon::new(machine());
        let mut sh = Qcsh::new(1001, &[]);
        sh.execute(&mut q, &Command::Boot);
        sh.execute(&mut q, &Command::Partition { rank: 6 });
        q.return_output(0, b"sweep 1: plaquette 0.5812\n");
        let out = sh.execute(&mut q, &Command::Cat { id: 0 });
        assert!(out.contains("plaquette"));
    }

    #[test]
    fn hardware_report_through_qhw() {
        use qcdoc_fault::HealthLedger;
        let mut q = Qdaemon::new(machine());
        let mut sh = Qcsh::new(1001, &[]);
        sh.execute(&mut q, &Command::Boot);
        sh.execute(&mut q, &Command::Partition { rank: 6 });
        // A sweep saw three corrected memory errors on node 5 and two
        // checksum-rejected DMA blocks on node 7; all healed in place.
        let mut ledger = HealthLedger::new(32);
        ledger.node_mut(5).ecc_corrected = 3;
        ledger.node_mut(7).links[2].block_rejects = 2;
        q.ingest_health(&ledger);
        let out = sh.execute(&mut q, &Command::Hardware { id: 0 });
        assert_eq!(out, "link errors 2 ecc corrections 3 checksums ok");
        // An end-of-run checksum mismatch flips the verdict and sticks.
        ledger.node_mut(2).links[0].checksum_ok = Some(false);
        q.ingest_health(&ledger);
        let out = sh.execute(&mut q, &Command::Hardware { id: 0 });
        assert_eq!(out, "link errors 2 ecc corrections 3 checksums FAILED");
        // Unknown partitions report an error, not a panic.
        let out = sh.execute(&mut q, &Command::Hardware { id: 9 });
        assert_eq!(out, "error: no partition 9");
    }

    #[test]
    fn flight_dump_through_qflight() {
        use qcdoc_fault::{HealthLedger, Liveness};
        let mut q = Qdaemon::new(machine());
        let mut sh = Qcsh::new(1001, &[]);
        sh.execute(&mut q, &Command::Boot);
        // Nothing has gone wrong yet: the black box is empty.
        assert_eq!(parse("qflight"), Ok(Command::Flight { node: None }));
        assert_eq!(parse("qflight 9"), Ok(Command::Flight { node: Some(9) }));
        assert!(parse("qflight nine").is_err());
        let out = sh.execute(&mut q, &Command::Flight { node: None });
        assert_eq!(out, "(no flight events)\n");
        // A sweep condemns node 9; the quarantine lands in the ring.
        let mut ledger = HealthLedger::new(32);
        ledger.node_mut(9).liveness = Liveness::Wedged;
        q.ingest_health(&ledger);
        let out = sh.execute(&mut q, &Command::Flight { node: None });
        assert!(out.contains("quarantine"), "{out}");
        assert!(out.contains("a=9"), "{out}");
        // Filtering to an uninvolved node shows nothing.
        let out = sh.execute(&mut q, &Command::Flight { node: Some(3) });
        assert_eq!(out, "(no flight events)\n");
    }

    #[test]
    fn parse_batch_commands() {
        assert_eq!(
            parse("qsub phys production 100 4x2x1/01"),
            Ok(Command::Submit {
                tenant: "phys".into(),
                priority: Priority::Production,
                work: 100,
                shapes: vec![ShapeRequest {
                    extents: vec![4, 2, 1],
                    groups: vec![vec![0, 1]],
                }],
            })
        );
        // Alternate shapes and multi-group folds.
        assert_eq!(
            parse("qsub phys scavenger 5 4x2x2/01-2 4x2x1/01"),
            Ok(Command::Submit {
                tenant: "phys".into(),
                priority: Priority::Scavenger,
                work: 5,
                shapes: vec![
                    ShapeRequest {
                        extents: vec![4, 2, 2],
                        groups: vec![vec![0, 1], vec![2]],
                    },
                    ShapeRequest {
                        extents: vec![4, 2, 1],
                        groups: vec![vec![0, 1]],
                    },
                ],
            })
        );
        assert_eq!(parse("qjobs"), Ok(Command::Jobs));
        assert_eq!(parse("qdel 3"), Ok(Command::Delete { job: 3 }));
        assert_eq!(parse("qretry 3"), Ok(Command::Retry { job: 3 }));
        assert_eq!(parse("qrepair"), Ok(Command::Repair));
        assert!(parse("qsub phys production 100").is_err(), "no shapes");
        assert!(parse("qsub phys urgent 1 4x2x1/01").is_err(), "bad class");
        assert!(parse("qsub phys standard 1 4x2x1").is_err(), "no groups");
        assert!(parse("qdel").is_err());
        assert!(parse("qretry").is_err());
    }

    #[test]
    fn batch_session_submits_lists_and_cancels() {
        use qcdoc_sched::{SchedConfig, TenantConfig};
        let mut q = Qdaemon::new(machine());
        let mut sched = Scheduler::new(machine(), SchedConfig::default());
        sched.add_tenant("phys", TenantConfig::default());
        let mut sh = Qcsh::new(1001, &[]);
        sh.execute(&mut q, &Command::Boot);
        // Whole machine folded to 3-D: runs immediately.
        let reply = sh.execute_batch(
            &mut q,
            &mut sched,
            &parse("qsub phys standard 50 4x2x2x2x1x1/0-1-23").unwrap(),
        );
        assert_eq!(reply, "job0 running");
        // Second identical job queues behind it.
        let reply = sh.execute_batch(
            &mut q,
            &mut sched,
            &parse("qsub phys standard 50 4x2x2x2x1x1/0-1-23").unwrap(),
        );
        assert_eq!(reply, "job1 queued");
        let listing = sh.execute_batch(&mut q, &mut sched, &Command::Jobs);
        assert!(listing.contains("job0 tenant=phys class=standard running"));
        assert!(listing.contains("job1 tenant=phys class=standard queued"));
        // Unknown tenants are refused at the prompt.
        let reply = sh.execute_batch(
            &mut q,
            &mut sched,
            &parse("qsub ghost standard 1 4x2x2x2x1x1/0-1-23").unwrap(),
        );
        assert!(reply.starts_with("error: unknown tenant"));
        // qdel frees the machine; the queued job takes over.
        let reply = sh.execute_batch(&mut q, &mut sched, &parse("qdel 0").unwrap());
        assert_eq!(reply, "job0 canceled");
        assert_eq!(
            sh.execute_batch(&mut q, &mut sched, &parse("qdel 0").unwrap()),
            "error: no cancellable job0"
        );
        let listing = sh.execute_batch(&mut q, &mut sched, &Command::Jobs);
        assert!(listing.contains("job1 tenant=phys class=standard running"));
        // Batch commands without a scheduler answer with an error.
        assert!(sh
            .execute(&mut q, &Command::Jobs)
            .starts_with("error: batch commands need a scheduler"));
    }

    #[test]
    fn retry_and_repair_verbs_drive_the_autonomic_loop() {
        use qcdoc_fault::FailureClass;
        use qcdoc_sched::{SchedConfig, TenantConfig};
        let mut q = Qdaemon::new(machine());
        let mut sched = Scheduler::new(machine(), SchedConfig::default());
        sched.add_tenant("phys", TenantConfig::default());
        let mut sh = Qcsh::new(1001, &[]);
        sh.execute(&mut q, &Command::Boot);
        let reply = sh.execute_batch(
            &mut q,
            &mut sched,
            &parse("qsub phys standard 50 4x2x2x2x1x1/0-1-23").unwrap(),
        );
        assert_eq!(reply, "job0 running");
        // The run dies; qjobs shows the hold-off and the failure class.
        sched.fail_job(JobId(0), FailureClass::NodeCrash, &[], &mut q);
        let listing = sh.execute_batch(&mut q, &mut sched, &Command::Jobs);
        assert!(
            listing.contains("job0 tenant=phys class=standard held"),
            "{listing}"
        );
        assert!(
            listing.contains("retries=1 failure=node_crash"),
            "{listing}"
        );
        // qretry releases the hold-off immediately: the job runs again.
        let reply = sh.execute_batch(&mut q, &mut sched, &parse("qretry 0").unwrap());
        assert_eq!(reply, "job0 running");
        assert_eq!(
            sh.execute_batch(&mut q, &mut sched, &parse("qretry 7").unwrap()),
            "error: no retryable job7"
        );
        // qrepair reports the pipeline; a quarantined node shows up.
        q.release(1); // free the partition job0 re-acquired
        let before = sh.execute(&mut q, &Command::Repair);
        assert!(before.starts_with("repair: 0 in pipeline"), "{before}");
        q.mark_faulty(qcdoc_geometry::NodeId(4));
        q.repair_admit();
        let during = sh.execute(&mut q, &Command::Repair);
        assert!(during.contains("1 in pipeline"), "{during}");
        assert!(during.contains("node 4 stage=scrub"), "{during}");
    }

    #[test]
    fn error_paths_answer_in_prose_never_panic() {
        use qcdoc_sched::SchedConfig;
        let mut q = Qdaemon::new(machine());
        let mut sched = Scheduler::new(machine(), SchedConfig::default());
        let mut sh = Qcsh::new(1001, &[]);

        // Before anything runs: every dump verb has an "empty" answer.
        assert_eq!(
            sh.execute(&mut q, &parse("qflight").unwrap()),
            "(no flight events)\n"
        );
        assert_eq!(
            sh.execute_batch(&mut q, &mut sched, &parse("qjobs").unwrap()),
            "no jobs"
        );

        // Unknown / out-of-range targets come back as errors in prose.
        // A node number beyond the 32-node machine is simply a filter
        // that matches nothing, like an uninvolved node.
        assert_eq!(
            sh.execute(&mut q, &parse("qflight 999").unwrap()),
            "(no flight events)\n"
        );
        assert_eq!(
            sh.execute(&mut q, &parse("qhw 7").unwrap()),
            "error: no partition 7"
        );
        assert_eq!(
            sh.execute(&mut q, &parse("qcat 7").unwrap()),
            "error: no partition 7"
        );
        assert_eq!(
            sh.execute_batch(&mut q, &mut sched, &parse("qdel 42").unwrap()),
            "error: no cancellable job42"
        );

        // The same verbs still answer before boot AND after a boot with
        // real traffic — the unknown-target replies are stable.
        sh.execute(&mut q, &Command::Boot);
        sh.execute(&mut q, &Command::Partition { rank: 6 });
        assert_eq!(
            sh.execute(&mut q, &parse("qhw 9").unwrap()),
            "error: no partition 9"
        );
        assert_eq!(
            sh.execute(&mut q, &parse("qflight 999").unwrap()),
            "(no flight events)\n"
        );

        // Malformed arguments are parse errors, not daemon traffic.
        for bad in ["qhw seven", "qcat -1", "qdel job0", "qflight x1"] {
            assert!(parse(bad).is_err(), "{bad} should fail to parse");
        }
    }

    #[test]
    fn daemon_file_access_uses_user_permissions() {
        let mut sh = Qcsh::new(1001, &["/home/physics"]);
        assert!(sh.open_for_daemon("/home/physics/configs/lat.0").is_ok());
        assert!(sh.open_for_daemon("/etc/passwd").is_err());
        sh.write_for_daemon("/home/physics/configs/lat.0", b"binary")
            .unwrap();
        assert_eq!(sh.file("/home/physics/configs/lat.0"), Some(&b"binary"[..]));
        assert!(sh.write_for_daemon("/never/opened", b"x").is_err());
    }
}
