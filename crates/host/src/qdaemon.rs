//! The qdaemon — the host-side manager of the machine (§3.1).
//!
//! "Our primary host software is called the qdaemon. This software is
//! responsible for booting QCDOC, coordinating the initialization of the
//! various networks, keeping track of the status of the nodes (including
//! hardware problems), allocating user partitions of QCDOC, loading and
//! starting execution of applications, and returning application output to
//! the user."
//!
//! The boot sequence per node (§3.1): ≈100 UDP packets through the
//! Ethernet/JTAG path load the boot kernel straight into the I-cache; the
//! boot kernel runs hardware tests and brings up the standard Ethernet
//! controller; ≈100 more packets load the run kernel, which trains the SCU
//! links and determines the machine's six-dimensional size. From then on
//! host↔node traffic uses RPC.

use crate::ethernet::{EthernetTree, BOOT_PACKET_BYTES};
use crate::jtag::{JtagCommand, JtagController};
use crate::kernel::{KernelPhase, RunKernel};
use qcdoc_geometry::{NodeId, Partition, PartitionError, PartitionSpec, TorusShape};
use qcdoc_telemetry::{FlightEvent, FlightKind, FlightRecorder, MetricsRegistry, HOST_NODE};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Boot-packet counts from §3.1.
pub const BOOT_KERNEL_PACKETS: u64 = 100;
/// Run-kernel load is "also taking about 100 UDP packets".
pub const RUN_KERNEL_PACKETS: u64 = 100;

/// Per-node status as tracked by the qdaemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Powered but not yet booted.
    PoweredOn,
    /// Boot kernel loaded and hardware-tested.
    BootKernel,
    /// Run kernel up; links trained; node idle.
    Ready,
    /// Assigned to a partition and running a job.
    Busy {
        /// The owning partition.
        partition: u32,
    },
    /// Hardware fault detected (kept out of allocations). Candidates for
    /// the repair pipeline, which either returns them to service or
    /// escalates them to [`NodeState::Blacklisted`].
    Faulty,
    /// Convicted too many times: permanently out of the allocation pool
    /// until a human intervenes. The repair pipeline never re-admits a
    /// blacklisted node.
    Blacklisted,
}

/// The result of booting the machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootReport {
    /// Nodes booted successfully.
    pub booted: usize,
    /// Nodes marked faulty during hardware test.
    pub faulty: Vec<u32>,
    /// Total UDP packets sent.
    pub packets_sent: u64,
    /// Modelled wall-clock boot time in seconds (Ethernet capacity model).
    pub boot_seconds: f64,
    /// The detected six-dimensional machine size.
    pub detected_shape: TorusShape,
}

/// An allocated partition and its job state.
#[derive(Debug)]
struct Allocation {
    partition: Partition,
    job_output: Vec<u8>,
}

/// Node-state census: how many nodes sit in each lifecycle state. The
/// quarantine ledger distinguishes *quarantined* (faulty, repairable),
/// *blacklisted* (convicted for good), and *spare* (repaired and
/// returned to the pool) so capacity accounting after a chaos soak is
/// honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeCensus {
    /// Booted, idle, allocatable, never condemned.
    pub ready: usize,
    /// Allocatable nodes that went through quarantine and repair — the
    /// spare pool. Counted separately from `ready` so a soak can assert
    /// that capacity *recovered* rather than merely never degrading.
    pub spare: usize,
    /// Assigned to a partition.
    pub busy: usize,
    /// Quarantined by a hardware test or health sweep; repairable.
    pub faulty: usize,
    /// Permanently removed after repeated convictions.
    pub blacklisted: usize,
    /// Powered on but not yet through the boot sequence.
    pub unbooted: usize,
}

impl NodeCensus {
    /// All nodes the daemon tracks.
    pub fn total(&self) -> usize {
        self.ready + self.spare + self.busy + self.faulty + self.blacklisted + self.unbooted
    }

    /// Nodes the scheduler can actually place on right now.
    pub fn allocatable(&self) -> usize {
        self.ready + self.spare
    }
}

impl std::fmt::Display for NodeCensus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ready, {} busy, {} faulty, {} unbooted, {} spare, {} blacklisted",
            self.ready, self.busy, self.faulty, self.unbooted, self.spare, self.blacklisted
        )
    }
}

/// Most recently released outputs kept readable after `release` — bounded
/// so thousands of unread soak jobs cannot leak the host's memory.
pub const RETAINED_OUTPUT_CAP: usize = 64;

/// The host daemon.
#[derive(Debug)]
pub struct Qdaemon {
    machine: TorusShape,
    jtag: Vec<JtagController>,
    kernels: Vec<RunKernel>,
    pub(crate) states: Vec<NodeState>,
    /// Times each node has been condemned (entered `Faulty`) — the
    /// repair pipeline's sticky-blacklist evidence.
    pub(crate) convictions: Vec<u32>,
    /// Nodes that went through quarantine and returned to service: the
    /// spare pool the census reports.
    pub(crate) repaired: Vec<bool>,
    /// The autonomic repair pipeline (scrub + burn-in stages).
    pub(crate) repair: crate::repair::RepairPipeline,
    allocations: HashMap<u32, Allocation>,
    /// Outputs of released partitions, awaiting a read. Keyed by
    /// partition id (monotonic, so the smallest key is the oldest entry
    /// and eviction under [`RETAINED_OUTPUT_CAP`] is deterministic).
    retained_output: std::collections::BTreeMap<u32, Vec<u8>>,
    next_partition_id: u32,
    ethernet: EthernetTree,
    packets_sent: u64,
    pub(crate) metrics: MetricsRegistry,
    /// The host's own black box: quarantines and ingested node events,
    /// cycle-free (the daemon stamps host events with its sweep count).
    pub(crate) flight: FlightRecorder,
    pub(crate) sweeps: u64,
}

impl Qdaemon {
    /// A daemon managing a machine of the given shape, all nodes powered
    /// on but unbooted.
    pub fn new(machine: TorusShape) -> Qdaemon {
        let n = machine.node_count();
        Qdaemon {
            ethernet: EthernetTree::for_machine(n),
            jtag: (0..n).map(|_| JtagController::new()).collect(),
            kernels: (0..n).map(|_| RunKernel::new()).collect(),
            states: vec![NodeState::PoweredOn; n],
            convictions: vec![0; n],
            repaired: vec![false; n],
            repair: crate::repair::RepairPipeline::default(),
            allocations: HashMap::new(),
            retained_output: std::collections::BTreeMap::new(),
            next_partition_id: 0,
            machine,
            packets_sent: 0,
            metrics: MetricsRegistry::new(),
            flight: FlightRecorder::default(),
            sweeps: 0,
        }
    }

    /// The machine shape.
    pub fn machine(&self) -> &TorusShape {
        &self.machine
    }

    /// State of one node.
    pub fn node_state(&self, node: NodeId) -> NodeState {
        self.states[node.index()]
    }

    /// Boot the whole machine. `faulty` lists nodes whose hardware test
    /// fails (fault injection for tests; empty on a healthy machine).
    pub fn boot(&mut self, faulty: &[u32]) -> BootReport {
        let n = self.machine.node_count();
        // Phase 1: boot kernel via Ethernet/JTAG into each I-cache.
        for node in 0..n {
            for i in 0..BOOT_KERNEL_PACKETS {
                self.jtag[node].handle(&JtagCommand::WriteICache {
                    addr: (i * 4) as u32,
                    data: 0x6000_0000 | i as u32,
                });
                self.packets_sent += 1;
            }
            self.jtag[node].handle(&JtagCommand::StartCpu);
            self.packets_sent += 1;
        }
        // Boot kernel runs hardware tests.
        let mut bad = Vec::new();
        for node in 0..n {
            if faulty.contains(&(node as u32)) {
                self.states[node] = NodeState::Faulty;
                bad.push(node as u32);
                continue;
            }
            self.states[node] = NodeState::BootKernel;
        }
        // Phase 2: run kernel over standard Ethernet; SCU init.
        for node in 0..n {
            if self.states[node] != NodeState::BootKernel {
                continue;
            }
            self.packets_sent += RUN_KERNEL_PACKETS;
            self.kernels[node].finish_hardware_test();
            self.states[node] = NodeState::Ready;
        }
        // Timing: both kernel loads ride the Ethernet capacity model.
        let bytes_per_node = (BOOT_KERNEL_PACKETS + RUN_KERNEL_PACKETS + 1) * BOOT_PACKET_BYTES;
        let boot_seconds = self.ethernet.broadcast_seconds(bytes_per_node);
        self.metrics
            .gauge_set("qdaemon_boot_packets", &[], self.packets_sent as f64);
        self.metrics
            .gauge_set("qdaemon_boot_seconds", &[], boot_seconds);
        BootReport {
            booted: n - bad.len(),
            faulty: bad,
            packets_sent: self.packets_sent,
            boot_seconds,
            detected_shape: self.machine.clone(),
        }
    }

    /// Allocate a partition: validates the spec, checks every member node
    /// is `Ready`, and marks them busy. Returns the partition id.
    pub fn allocate(&mut self, spec: PartitionSpec) -> Result<u32, AllocError> {
        let partition = Partition::new(&self.machine, spec).map_err(AllocError::Partition)?;
        // Collect member nodes.
        let members: Vec<NodeId> = (0..partition.node_count())
            .map(|i| partition.physical_id(NodeId(i as u32)))
            .collect();
        for &m in &members {
            match self.states[m.index()] {
                NodeState::Ready => {}
                other => {
                    return Err(AllocError::NodeUnavailable {
                        node: m.0,
                        state: other,
                    })
                }
            }
        }
        let id = self.next_partition_id;
        self.next_partition_id += 1;
        for &m in &members {
            self.states[m.index()] = NodeState::Busy { partition: id };
        }
        self.allocations.insert(
            id,
            Allocation {
                partition,
                job_output: Vec::new(),
            },
        );
        Ok(id)
    }

    /// The partition object for an allocation.
    pub fn partition(&self, id: u32) -> Option<&Partition> {
        self.allocations.get(&id).map(|a| &a.partition)
    }

    /// Append job output returned from a node (RPC path).
    pub fn return_output(&mut self, id: u32, bytes: &[u8]) {
        if let Some(a) = self.allocations.get_mut(&id) {
            a.job_output.extend_from_slice(bytes);
        }
    }

    /// The output stream of a partition's job — live or retained after
    /// release. Does not consume the buffer; see
    /// [`Qdaemon::take_output`].
    pub fn job_output(&self, id: u32) -> Option<&[u8]> {
        self.allocations
            .get(&id)
            .map(|a| a.job_output.as_slice())
            .or_else(|| self.retained_output.get(&id).map(Vec::as_slice))
    }

    /// Consume a job's output: the buffer is handed to the caller and the
    /// daemon forgets it. This is how batch output leaves the host —
    /// reading frees the memory, so a soak of thousands of jobs holds at
    /// most [`RETAINED_OUTPUT_CAP`] unread buffers at any moment.
    pub fn take_output(&mut self, id: u32) -> Option<Vec<u8>> {
        if let Some(a) = self.allocations.get_mut(&id) {
            return Some(std::mem::take(&mut a.job_output));
        }
        self.retained_output.remove(&id)
    }

    /// Release a partition; member nodes return to `Ready`. A member that
    /// was marked faulty while the job ran (health sweep, checksum report)
    /// stays quarantined — releasing a job must never launder a broken
    /// node back into the allocation pool.
    ///
    /// Any unread job output is retained for a later [`Qdaemon::job_output`]
    /// or [`Qdaemon::take_output`], bounded by [`RETAINED_OUTPUT_CAP`]:
    /// when a release would exceed the cap, the oldest retained buffer is
    /// dropped. (Earlier versions dropped the output *with* the
    /// allocation, which lost batch output; naive retention without the
    /// cap leaks a buffer per job under soak load.)
    pub fn release(&mut self, id: u32) {
        if let Some(a) = self.allocations.remove(&id) {
            for i in 0..a.partition.node_count() {
                let m = a.partition.physical_id(NodeId(i as u32));
                if self.states[m.index()] == (NodeState::Busy { partition: id }) {
                    self.states[m.index()] = NodeState::Ready;
                }
            }
            if !a.job_output.is_empty() {
                self.retained_output.insert(id, a.job_output);
                while self.retained_output.len() > RETAINED_OUTPUT_CAP {
                    let oldest = *self.retained_output.keys().next().expect("nonempty");
                    self.retained_output.remove(&oldest);
                    self.metrics.counter_add("qdaemon_output_evictions", &[], 1);
                }
            }
        }
    }

    /// Mark a node faulty (e.g. after a checksum mismatch report). The
    /// quarantine is logged in the host's flight ring so a post-mortem
    /// can see *when* the daemon condemned the node, not just that it did.
    /// Each fresh condemnation counts as a *conviction*; the repair
    /// pipeline blacklists nodes convicted too often. A blacklisted node
    /// stays blacklisted.
    pub fn mark_faulty(&mut self, node: NodeId) {
        match self.states[node.index()] {
            NodeState::Faulty | NodeState::Blacklisted => {}
            _ => {
                self.convictions[node.index()] += 1;
                self.repaired[node.index()] = false;
                self.flight.record(
                    HOST_NODE,
                    self.sweeps,
                    FlightKind::Quarantine,
                    "mark_faulty",
                    node.0 as u64,
                    self.convictions[node.index()] as u64,
                );
                self.states[node.index()] = NodeState::Faulty;
            }
        }
    }

    /// Return a quarantined node to the allocation pool, flagging it as
    /// a repaired spare in the census. Only the repair pipeline (or an
    /// operator who knows better) should call this; it refuses to touch
    /// blacklisted nodes or nodes that were never quarantined.
    ///
    /// A clean return **clears the conviction counter**: the node just
    /// proved itself on an isolated burn-in, so its earlier convictions
    /// were collateral or transient. Blacklisting therefore means
    /// "repeatedly convicted *without* a clean burn-in in between" — a
    /// genuine lemon — not "unlucky enough to sit near several faults".
    pub fn return_to_service(&mut self, node: NodeId) -> Result<(), String> {
        match self.states[node.index()] {
            NodeState::Faulty => {
                let cleared = self.convictions[node.index()];
                self.states[node.index()] = NodeState::Ready;
                self.repaired[node.index()] = true;
                self.convictions[node.index()] = 0;
                self.repair.forget(node.0);
                self.flight.record(
                    HOST_NODE,
                    self.sweeps,
                    FlightKind::Repair,
                    "return_to_service",
                    node.0 as u64,
                    cleared as u64,
                );
                self.metrics.counter_add("autorepair_returned", &[], 1);
                Ok(())
            }
            NodeState::Blacklisted => Err(format!(
                "node {} is blacklisted ({} convictions); not eligible for service",
                node.0,
                self.convictions[node.index()]
            )),
            other => Err(format!(
                "node {} is not quarantined (state {other:?})",
                node.0
            )),
        }
    }

    /// Permanently remove a node from the allocation pool (sticky: the
    /// repair pipeline never re-admits it). Idempotent.
    pub fn blacklist(&mut self, node: NodeId) {
        if self.states[node.index()] != NodeState::Blacklisted {
            self.states[node.index()] = NodeState::Blacklisted;
            self.repaired[node.index()] = false;
            self.repair.forget(node.0);
            self.flight.record(
                HOST_NODE,
                self.sweeps,
                FlightKind::Repair,
                "blacklist",
                node.0 as u64,
                self.convictions[node.index()] as u64,
            );
            self.metrics.counter_add("autorepair_blacklisted", &[], 1);
        }
    }

    /// Times a node has been condemned to quarantine.
    pub fn convictions(&self, node: NodeId) -> u32 {
        self.convictions[node.index()]
    }

    /// Ingest an end-of-run machine-health sweep (§2.2 / §3.1): the
    /// daemon walks the ledger the way it would walk the Ethernet/JTAG
    /// tree after a job, quarantines every node the ledger flags (dead
    /// link, crash, wedge, checksum mismatch, memory error) so later
    /// allocations route around it, and prices the sweep itself on the
    /// Ethernet capacity model.
    pub fn ingest_health(&mut self, ledger: &qcdoc_fault::HealthLedger) -> HealthReport {
        self.sweeps += 1;
        let unhealthy = ledger.unhealthy_nodes();
        let mut quarantined = Vec::new();
        for &node in &unhealthy {
            if self.states[node as usize] != NodeState::Faulty {
                self.mark_faulty(NodeId(node));
                quarantined.push(node);
            }
        }
        let checksum_mismatches = ledger
            .nodes
            .iter()
            .flat_map(|n| &n.links)
            .filter(|l| l.checksum_ok == Some(false))
            .count();
        // Feed each node's kernel the hardware counters the sweep carried,
        // so the RPC `HardwareReport` triple reflects what the machine
        // actually saw. `merge_hardware` is a max-merge: re-ingesting the
        // same sweep changes nothing.
        if ledger.nodes.len() == self.machine.node_count() {
            for (node, nh) in ledger.nodes.iter().enumerate() {
                let link_errors = nh
                    .links
                    .iter()
                    .map(|l| l.rejects + l.block_rejects)
                    .sum::<u64>();
                let checksums_ok = nh.links.iter().all(|l| l.checksum_ok != Some(false));
                self.kernels[node].merge_hardware(crate::kernel::HardwareStatus {
                    link_errors,
                    ecc_corrections: nh.ecc_corrected,
                    checksums_ok,
                });
            }
        }
        // Each node reports 12 links × 9 counters/checksums (8 bytes each)
        // plus a small per-node header, collected over the same tree that
        // carried the boot kernels.
        let readout_bytes = 12 * 9 * 8 + 16;
        // Fold the ledger readout into the daemon's registry: the export
        // uses absolute gauges, so re-ingesting a sweep never double-counts
        // and the scrape shows one consistent view of the machine.
        ledger.export_metrics(&mut self.metrics);
        self.metrics.counter_add("qdaemon_health_sweeps", &[], 1);
        HealthReport {
            quarantined,
            total_resends: ledger.total_resends(),
            total_injected: ledger.total_injected(),
            dead_links: ledger.dead_links(),
            checksum_mismatches,
            sweep_seconds: self.ethernet.broadcast_seconds(readout_bytes),
        }
    }

    /// Count of nodes in each state. Repaired nodes sitting idle count
    /// as `spare`, not `ready`, so capacity recovery is visible.
    pub fn census(&self) -> NodeCensus {
        let mut census = NodeCensus::default();
        for (i, s) in self.states.iter().enumerate() {
            match s {
                NodeState::Ready if self.repaired[i] => census.spare += 1,
                NodeState::Ready => census.ready += 1,
                NodeState::Busy { .. } => census.busy += 1,
                NodeState::Faulty => census.faulty += 1,
                NodeState::Blacklisted => census.blacklisted += 1,
                _ => census.unbooted += 1,
            }
        }
        census
    }

    /// Merge an application-side telemetry snapshot (e.g. the registry a
    /// [`qcdoc_telemetry::MachineTelemetry`] run produced) into the
    /// daemon's machine-wide view. Counters add, gauges take the incoming
    /// value, histograms merge — the same series the health sweep writes
    /// (all gauges) therefore stay consistent rather than double-counting.
    pub fn ingest_metrics(&mut self, snapshot: &MetricsRegistry) {
        self.metrics.merge(snapshot);
    }

    /// One Prometheus-style scrape of everything the daemon knows: the
    /// node-state census, boot statistics, every ingested health-sweep
    /// gauge and every ingested application metric (§3.1 — "keeping track
    /// of the status of the nodes (including hardware problems)").
    pub fn scrape(&mut self) -> String {
        let census = self.census();
        for (state, count) in [
            ("ready", census.ready),
            ("spare", census.spare),
            ("busy", census.busy),
            ("faulty", census.faulty),
            ("blacklisted", census.blacklisted),
            ("unbooted", census.unbooted),
        ] {
            self.metrics.gauge_set(
                "qdaemon_nodes",
                &[("state", state.to_string())],
                count as f64,
            );
        }
        qcdoc_telemetry::prometheus_text(&self.metrics)
    }

    /// Read-only view of the daemon's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Ingest node flight-recorder events (e.g. the
    /// [`qcdoc_telemetry::MachineTelemetry::flight`] stream a run
    /// produced) into the host's black box, re-stamped in arrival order.
    pub fn ingest_flight(&mut self, events: &[FlightEvent]) {
        self.flight.ingest(events);
    }

    /// Deterministic dump of the host's flight ring, optionally filtered
    /// to one node's events — the `qflight` verb's payload.
    pub fn flight_dump(&self, node: Option<u32>) -> String {
        self.flight.dump(node)
    }

    /// Read-only view of the host's flight recorder.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Run kernel of a node (for job wiring in `qcdoc-core`).
    pub fn kernel_mut(&mut self, node: NodeId) -> &mut RunKernel {
        &mut self.kernels[node.index()]
    }

    /// Read-only view of a node's run kernel.
    pub fn kernel(&self, node: NodeId) -> &RunKernel {
        &self.kernels[node.index()]
    }

    /// Aggregate hardware status over an allocated partition — the §3.2
    /// end-of-job report the user sees: summed link parity errors and ECC
    /// corrections over the member nodes, checksums good only if every
    /// member's pairings agreed. `None` for an unknown partition id.
    pub fn hardware_report(&self, id: u32) -> Option<crate::kernel::HardwareStatus> {
        let a = self.allocations.get(&id)?;
        let mut total = crate::kernel::HardwareStatus {
            checksums_ok: true,
            ..Default::default()
        };
        for i in 0..a.partition.node_count() {
            let m = a.partition.physical_id(NodeId(i as u32));
            let s = self.kernels[m.index()].hardware_status();
            total.link_errors += s.link_errors;
            total.ecc_corrections += s.ecc_corrections;
            total.checksums_ok &= s.checksums_ok;
        }
        Some(total)
    }

    /// Whether a node's kernel is idle and ready for a job.
    pub fn node_idle(&self, node: NodeId) -> bool {
        self.kernels[node.index()].phase() == KernelPhase::Idle
    }
}

/// The daemon as the scheduler's machine: scheduled placements become
/// real qdaemon partitions, and everything not `Ready` — busy, faulty,
/// unbooted — is opaque occupied territory to the packer. This is the
/// production [`qcdoc_sched::MeshHost`]; `SimMesh` stands in for it in
/// scheduler unit tests.
impl qcdoc_sched::MeshHost for Qdaemon {
    fn shape(&self) -> &TorusShape {
        &self.machine
    }

    fn occupancy(&self) -> qcdoc_geometry::OccupancyMap {
        let mut map = qcdoc_geometry::OccupancyMap::new(self.machine.clone());
        for (i, s) in self.states.iter().enumerate() {
            if *s != NodeState::Ready {
                map.set_taken(NodeId(i as u32), true);
            }
        }
        map
    }

    fn place(&mut self, spec: &PartitionSpec) -> Result<qcdoc_sched::Placement, String> {
        let id = self.allocate(spec.clone()).map_err(|e| e.to_string())?;
        let logical = self
            .partition(id)
            .expect("freshly allocated partition exists")
            .logical_shape()
            .clone();
        Ok(qcdoc_sched::Placement { id, logical })
    }

    fn vacate(&mut self, id: u32) {
        self.release(id);
    }
}

/// The daemon's digest of an end-of-run machine-health sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Nodes newly quarantined by this sweep.
    pub quarantined: Vec<u32>,
    /// Machine-wide go-back-N retransmission count.
    pub total_resends: u64,
    /// Machine-wide injected-corruption count (fault-injection runs).
    pub total_injected: u64,
    /// Every wire reported dead, as `(node, link_index)`.
    pub dead_links: Vec<(u32, usize)>,
    /// Link-checksum pairings that disagreed at end of run.
    pub checksum_mismatches: usize,
    /// Modelled wall-clock time of the sweep over the Ethernet tree.
    pub sweep_seconds: f64,
}

impl HealthReport {
    /// Whether the sweep found nothing wrong at all.
    pub fn clean(&self) -> bool {
        self.quarantined.is_empty() && self.dead_links.is_empty() && self.checksum_mismatches == 0
    }
}

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The partition spec was invalid.
    Partition(PartitionError),
    /// A member node is not in the `Ready` state.
    NodeUnavailable {
        /// The node.
        node: u32,
        /// Its current state.
        state: NodeState,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Partition(e) => write!(f, "invalid partition: {e}"),
            AllocError::NodeUnavailable { node, state } => {
                write!(f, "node {node} unavailable ({state:?})")
            }
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;
    use qcdoc_geometry::NodeCoord;

    fn small_machine() -> TorusShape {
        TorusShape::new(&[4, 2, 2, 2, 1, 1])
    }

    #[test]
    fn boot_counts_match_paper() {
        let mut q = Qdaemon::new(small_machine());
        let report = q.boot(&[]);
        assert_eq!(report.booted, 32);
        // ~100 JTAG packets + StartCpu + ~100 run-kernel packets per node.
        assert_eq!(
            report.packets_sent,
            32 * (BOOT_KERNEL_PACKETS + 1 + RUN_KERNEL_PACKETS)
        );
        assert!(report.boot_seconds > 0.0);
        let census = q.census();
        assert_eq!(
            census,
            NodeCensus {
                ready: 32,
                ..NodeCensus::default()
            }
        );
        assert_eq!(census.total(), 32);
    }

    #[test]
    fn faulty_nodes_are_quarantined() {
        let mut q = Qdaemon::new(small_machine());
        let report = q.boot(&[3, 17]);
        assert_eq!(report.booted, 30);
        assert_eq!(report.faulty, vec![3, 17]);
        assert_eq!(q.node_state(NodeId(3)), NodeState::Faulty);
        // Allocating the whole machine must fail on the faulty node.
        let spec = PartitionSpec::native(q.machine());
        let err = q.allocate(spec).unwrap_err();
        assert!(matches!(err, AllocError::NodeUnavailable { .. }));
    }

    #[test]
    fn allocate_remap_and_release() {
        let mut q = Qdaemon::new(small_machine());
        q.boot(&[]);
        // Remap the whole 6-D machine to 4-D, per §3.1.
        let spec = PartitionSpec::whole_machine(q.machine(), &[&[0], &[1], &[2], &[3, 4, 5]]);
        let id = q.allocate(spec).unwrap();
        assert_eq!(
            q.partition(id).unwrap().logical_shape().dims(),
            &[4, 2, 2, 2]
        );
        let census = q.census();
        assert_eq!((census.ready, census.busy), (0, 32));
        q.release(id);
        let census = q.census();
        assert_eq!((census.ready, census.busy), (32, 0));
    }

    #[test]
    fn two_disjoint_partitions() {
        let mut q = Qdaemon::new(small_machine());
        q.boot(&[]);
        // Split along axis 0: two 2x2x2x2 sub-boxes, each folded to 4-D.
        let mk = |x0: usize| PartitionSpec {
            origin: {
                let mut c = NodeCoord::ORIGIN;
                c.set(0, x0);
                c
            },
            extents: vec![2, 2, 2, 2, 1, 1],
            groups: vec![vec![0], vec![1], vec![2], vec![3]],
        };
        // Sub-extent 2 of an axis-4 machine: single-axis groups need full
        // extent... axis 0 has extent 4, so group [0] with extent 2 fails;
        // use a fold pairing axes 0 and 3 instead.
        let mk_ok = |x0: usize| PartitionSpec {
            origin: {
                let mut c = NodeCoord::ORIGIN;
                c.set(0, x0);
                c
            },
            extents: vec![2, 2, 2, 2, 1, 1],
            groups: vec![vec![0, 3], vec![1], vec![2]],
        };
        let _ = mk; // the failing shape is exercised below
        assert!(q.allocate(mk(0)).is_err(), "partial single axis must fail");
        let a = q.allocate(mk_ok(0)).unwrap();
        let b = q.allocate(mk_ok(2)).unwrap();
        assert_ne!(a, b);
        let census = q.census();
        assert_eq!((census.ready, census.busy), (0, 32));
        // No double allocation.
        assert!(q.allocate(mk_ok(0)).is_err());
    }

    #[test]
    fn release_does_not_resurrect_nodes_marked_faulty_mid_job() {
        let mut q = Qdaemon::new(small_machine());
        q.boot(&[]);
        let id = q.allocate(PartitionSpec::native(q.machine())).unwrap();
        // Mid-job, the health sweep condemns a member node.
        q.mark_faulty(NodeId(5));
        q.release(id);
        assert_eq!(
            q.node_state(NodeId(5)),
            NodeState::Faulty,
            "release must not launder a quarantined node back to Ready"
        );
        let census = q.census();
        assert_eq!((census.ready, census.busy, census.faulty), (31, 0, 1));
        // And the quarantine holds against the next full-machine request.
        assert!(q.allocate(PartitionSpec::native(q.machine())).is_err());
    }

    #[test]
    fn job_output_round_trip() {
        let mut q = Qdaemon::new(small_machine());
        q.boot(&[]);
        let id = q.allocate(PartitionSpec::native(q.machine())).unwrap();
        q.return_output(id, b"CG converged in 213 iterations\n");
        assert_eq!(
            q.job_output(id).unwrap(),
            b"CG converged in 213 iterations\n"
        );
    }

    #[test]
    fn output_survives_release_and_is_dropped_once_read() {
        let mut q = Qdaemon::new(small_machine());
        q.boot(&[]);
        let id = q.allocate(PartitionSpec::native(q.machine())).unwrap();
        q.return_output(id, b"batch output\n");
        q.release(id);
        // Batch semantics: the output outlives the allocation...
        assert_eq!(q.job_output(id).unwrap(), b"batch output\n");
        // ...until it is read, after which the daemon forgets it.
        assert_eq!(q.take_output(id).unwrap(), b"batch output\n");
        assert_eq!(q.job_output(id), None);
        assert_eq!(q.take_output(id), None);
    }

    #[test]
    fn retained_outputs_are_capped_under_soak_load() {
        let mut q = Qdaemon::new(small_machine());
        q.boot(&[]);
        let spec = PartitionSpec::whole_machine(q.machine(), &[&[0], &[1], &[2], &[3, 4, 5]]);
        let mut ids = Vec::new();
        for i in 0..(RETAINED_OUTPUT_CAP + 10) {
            let id = q.allocate(spec.clone()).unwrap();
            q.return_output(id, format!("job {i}\n").as_bytes());
            q.release(id);
            ids.push(id);
        }
        // The ten oldest unread buffers were evicted; the rest remain.
        for (i, &id) in ids.iter().enumerate() {
            if i < 10 {
                assert_eq!(q.job_output(id), None, "old buffer {i} must be evicted");
            } else {
                assert!(q.job_output(id).is_some(), "recent buffer {i} must remain");
            }
        }
        assert_eq!(q.metrics().counter("qdaemon_output_evictions", &[]), 10);
        // Jobs with no output retain nothing.
        let quiet = q.allocate(spec.clone()).unwrap();
        q.release(quiet);
        assert_eq!(q.job_output(quiet), None);
    }

    #[test]
    fn health_sweep_quarantines_flagged_nodes() {
        use qcdoc_fault::{HealthLedger, Liveness};
        let mut q = Qdaemon::new(small_machine());
        q.boot(&[]);
        let mut ledger = HealthLedger::new(32);
        ledger.node_mut(6).links[2].dead = true;
        ledger.node_mut(9).liveness = Liveness::Wedged;
        ledger.node_mut(9).links[0].resends = 4;
        let report = q.ingest_health(&ledger);
        assert_eq!(report.quarantined, vec![6, 9]);
        assert_eq!(report.dead_links, vec![(6, 2)]);
        assert_eq!(report.total_resends, 4);
        assert!(report.sweep_seconds > 0.0);
        assert!(!report.clean());
        assert_eq!(q.node_state(NodeId(6)), NodeState::Faulty);
        assert_eq!(q.node_state(NodeId(9)), NodeState::Faulty);
        // A full-machine allocation now routes into the failure, so it is
        // refused; the census shows the quarantine.
        assert!(q.allocate(PartitionSpec::native(q.machine())).is_err());
        let census = q.census();
        assert_eq!((census.ready, census.faulty), (30, 2));
        // Re-ingesting the same ledger quarantines nothing new.
        assert!(q.ingest_health(&ledger).quarantined.is_empty());
    }

    #[test]
    fn clean_sweep_reports_clean() {
        let mut q = Qdaemon::new(small_machine());
        q.boot(&[]);
        let mut ledger = qcdoc_fault::HealthLedger::new(32);
        // Healed corruption: resends happened but nothing is flagged.
        ledger.node_mut(3).links[1].resends = 2;
        ledger.node_mut(3).links[1].injected = 2;
        let report = q.ingest_health(&ledger);
        assert!(report.clean());
        assert_eq!(report.total_injected, 2);
        let census = q.census();
        assert_eq!((census.ready, census.faulty), (32, 0));
    }

    #[test]
    fn sweep_counters_feed_the_kernels() {
        use qcdoc_fault::HealthLedger;
        let mut q = Qdaemon::new(small_machine());
        q.boot(&[]);
        let id = q.allocate(PartitionSpec::native(q.machine())).unwrap();
        let mut ledger = HealthLedger::new(32);
        ledger.node_mut(4).ecc_corrected = 5;
        ledger.node_mut(4).links[1].rejects = 2;
        ledger.node_mut(8).links[0].block_rejects = 1;
        q.ingest_health(&ledger);
        // Per-node kernels carry exactly what the sweep saw for them.
        let s4 = q.kernel(NodeId(4)).hardware_status();
        assert_eq!((s4.link_errors, s4.ecc_corrections), (2, 5));
        assert!(s4.checksums_ok);
        let s8 = q.kernel(NodeId(8)).hardware_status();
        assert_eq!((s8.link_errors, s8.ecc_corrections), (1, 0));
        // The partition aggregate sums counters over all members.
        let hw = q.hardware_report(id).unwrap();
        assert_eq!((hw.link_errors, hw.ecc_corrections), (3, 5));
        assert!(hw.checksums_ok);
        // Re-ingesting the same sweep is idempotent: cumulative totals
        // max-merge instead of double-counting.
        q.ingest_health(&ledger);
        let hw2 = q.hardware_report(id).unwrap();
        assert_eq!(hw, hw2);
    }

    #[test]
    fn scrape_reports_census_boot_and_health_in_one_view() {
        use qcdoc_fault::HealthLedger;
        let mut q = Qdaemon::new(small_machine());
        q.boot(&[]);
        let mut ledger = HealthLedger::new(32);
        ledger.node_mut(3).links[1].resends = 4;
        ledger.node_mut(3).links[1].injected = 4;
        q.ingest_health(&ledger);
        let first = q.scrape();
        assert!(first.contains("qdaemon_nodes{state=\"ready\"} 32"));
        assert!(first.contains("qdaemon_boot_packets"));
        assert!(first.contains("machine_total_resends 4"));
        assert!(first.contains("scu_link_resends{link=\"1\",node=\"3\"} 4"));
        // Re-ingesting the same sweep must not double-count: the gauges
        // are absolute, so the scrape is byte-identical.
        q.ingest_health(&ledger);
        let second = q.scrape();
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("qdaemon_health_sweeps"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&first), strip(&second));
        // Application metrics merge into the same view.
        let mut app = MetricsRegistry::new();
        app.counter_add("cg_iterations", &[("node", "0".into())], 213);
        q.ingest_metrics(&app);
        assert!(q.scrape().contains("cg_iterations{node=\"0\"} 213"));
    }

    #[test]
    fn boot_time_grows_with_machine() {
        let mut small = Qdaemon::new(TorusShape::new(&[4, 2, 2, 2, 1, 1]));
        let mut big = Qdaemon::new(TorusShape::new(&[8, 8, 6, 4, 4, 2]));
        assert_eq!(big.machine().node_count(), 12288);
        let rs = small.boot(&[]);
        let rb = big.boot(&[]);
        assert!(rb.boot_seconds > rs.boot_seconds);
    }
}
