//! The Ethernet/JTAG controller (§2.3).
//!
//! Each ASIC has a second Ethernet connection that "receives only UDP
//! Ethernet packets and, in particular, only responds to Ethernet packets
//! which carry JTAG commands as their payload … requires no software to do
//! the UDP packet decoding". Because it is pure hardware, it is alive the
//! moment power arrives — which is how boot code gets into a machine with
//! no PROMs, and how a wedged node can still be probed (the RISCWatch debug
//! path).

use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// A JTAG command carried as a UDP payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JtagCommand {
    /// Write one 32-bit instruction word directly into the I-cache.
    WriteICache {
        /// Target address.
        addr: u32,
        /// Instruction word.
        data: u32,
    },
    /// Read a device register (returns its value in the reply).
    ReadRegister {
        /// Register number.
        reg: u16,
    },
    /// Release the CPU to execute from the I-cache.
    StartCpu,
    /// Halt the CPU (debug).
    HaltCpu,
    /// Single-step one instruction (RISCWatch).
    SingleStep,
    /// Read the node's hardware status word.
    ReadStatus,
}

/// Reply to a JTAG command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JtagReply {
    /// Command applied.
    Ok,
    /// Register or status value.
    Value(u32),
}

/// CPU execution state as seen through JTAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpuState {
    /// Power-on: CPU held, I-cache empty.
    Held,
    /// Released and executing.
    Running,
    /// Halted by the debugger.
    Halted,
}

/// The per-node Ethernet/JTAG controller state machine.
#[derive(Debug, Clone)]
pub struct JtagController {
    icache: Vec<(u32, u32)>,
    registers: [u32; 64],
    state: CpuState,
    steps: u64,
    packets_handled: u64,
}

impl Default for JtagController {
    fn default() -> Self {
        JtagController::new()
    }
}

impl JtagController {
    /// Power-on state: ready to receive packets immediately.
    pub fn new() -> JtagController {
        JtagController {
            icache: Vec::new(),
            registers: [0; 64],
            state: CpuState::Held,
            steps: 0,
            packets_handled: 0,
        }
    }

    /// Execute one command (hardware path — always available, even when
    /// the CPU is wedged).
    pub fn handle(&mut self, cmd: &JtagCommand) -> JtagReply {
        self.packets_handled += 1;
        match *cmd {
            JtagCommand::WriteICache { addr, data } => {
                self.icache.push((addr, data));
                JtagReply::Ok
            }
            JtagCommand::ReadRegister { reg } => {
                JtagReply::Value(self.registers[reg as usize % 64])
            }
            JtagCommand::StartCpu => {
                self.state = CpuState::Running;
                JtagReply::Ok
            }
            JtagCommand::HaltCpu => {
                self.state = CpuState::Halted;
                JtagReply::Ok
            }
            JtagCommand::SingleStep => {
                if self.state == CpuState::Halted {
                    self.steps += 1;
                }
                JtagReply::Ok
            }
            JtagCommand::ReadStatus => JtagReply::Value(self.status_word()),
        }
    }

    /// Hardware status word: state plus loaded-word count.
    pub fn status_word(&self) -> u32 {
        let s = match self.state {
            CpuState::Held => 0,
            CpuState::Running => 1,
            CpuState::Halted => 2,
        };
        (s << 24) | (self.icache.len() as u32 & 0x00FF_FFFF)
    }

    /// Current CPU state.
    pub fn state(&self) -> CpuState {
        self.state
    }

    /// Words loaded into the I-cache so far.
    pub fn loaded_words(&self) -> usize {
        self.icache.len()
    }

    /// Packets processed since power-on.
    pub fn packets_handled(&self) -> u64 {
        self.packets_handled
    }

    /// Instructions single-stepped (debug statistics).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Set a register (hardware side — used by the kernel model to post
    /// status the host can read back).
    pub fn post_register(&mut self, reg: u16, value: u32) {
        self.registers[reg as usize % 64] = value;
    }
}

/// Serialize a command into its UDP payload form.
pub fn encode(cmd: &JtagCommand) -> Vec<u8> {
    let mut buf = BytesMut::new();
    match *cmd {
        JtagCommand::WriteICache { addr, data } => {
            buf.put_u8(1);
            buf.put_u32(addr);
            buf.put_u32(data);
        }
        JtagCommand::ReadRegister { reg } => {
            buf.put_u8(2);
            buf.put_u16(reg);
        }
        JtagCommand::StartCpu => buf.put_u8(3),
        JtagCommand::HaltCpu => buf.put_u8(4),
        JtagCommand::SingleStep => buf.put_u8(5),
        JtagCommand::ReadStatus => buf.put_u8(6),
    }
    buf.to_vec()
}

/// Decode a UDP payload; `None` for anything that is not a JTAG command
/// (the controller ignores all other traffic).
pub fn decode(payload: &[u8]) -> Option<JtagCommand> {
    let mut buf = payload;
    if buf.is_empty() {
        return None;
    }
    let tag = buf.get_u8();
    Some(match tag {
        1 => {
            if buf.len() < 8 {
                return None;
            }
            JtagCommand::WriteICache {
                addr: buf.get_u32(),
                data: buf.get_u32(),
            }
        }
        2 => {
            if buf.len() < 2 {
                return None;
            }
            JtagCommand::ReadRegister { reg: buf.get_u16() }
        }
        3 => JtagCommand::StartCpu,
        4 => JtagCommand::HaltCpu,
        5 => JtagCommand::SingleStep,
        6 => JtagCommand::ReadStatus,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_at_power_on() {
        let mut c = JtagController::new();
        assert_eq!(c.state(), CpuState::Held);
        // First packet works with no prior setup — the no-PROM boot path.
        assert_eq!(
            c.handle(&JtagCommand::WriteICache {
                addr: 0,
                data: 0x6000_0000
            }),
            JtagReply::Ok
        );
        assert_eq!(c.loaded_words(), 1);
    }

    #[test]
    fn boot_load_then_start() {
        let mut c = JtagController::new();
        for i in 0..100u32 {
            c.handle(&JtagCommand::WriteICache {
                addr: i * 4,
                data: i,
            });
        }
        assert_eq!(c.loaded_words(), 100);
        c.handle(&JtagCommand::StartCpu);
        assert_eq!(c.state(), CpuState::Running);
        assert_eq!(c.packets_handled(), 101);
    }

    #[test]
    fn status_word_encodes_state_and_count() {
        let mut c = JtagController::new();
        c.handle(&JtagCommand::WriteICache { addr: 0, data: 0 });
        assert_eq!(c.status_word(), 1);
        c.handle(&JtagCommand::StartCpu);
        assert_eq!(c.status_word() >> 24, 1);
    }

    #[test]
    fn single_step_requires_halt() {
        let mut c = JtagController::new();
        c.handle(&JtagCommand::StartCpu);
        c.handle(&JtagCommand::SingleStep);
        assert_eq!(c.steps(), 0, "stepping a running CPU is ignored");
        c.handle(&JtagCommand::HaltCpu);
        c.handle(&JtagCommand::SingleStep);
        c.handle(&JtagCommand::SingleStep);
        assert_eq!(c.steps(), 2);
    }

    #[test]
    fn register_read_returns_posted_value() {
        let mut c = JtagController::new();
        c.post_register(7, 0xABCD);
        assert_eq!(
            c.handle(&JtagCommand::ReadRegister { reg: 7 }),
            JtagReply::Value(0xABCD)
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        for cmd in [
            JtagCommand::WriteICache {
                addr: 0x100,
                data: 0xDEAD_BEEF,
            },
            JtagCommand::ReadRegister { reg: 5 },
            JtagCommand::StartCpu,
            JtagCommand::HaltCpu,
            JtagCommand::SingleStep,
            JtagCommand::ReadStatus,
        ] {
            assert_eq!(decode(&encode(&cmd)), Some(cmd));
        }
    }

    #[test]
    fn non_jtag_traffic_ignored() {
        assert_eq!(decode(&[]), None);
        assert_eq!(decode(&[99, 1, 2, 3]), None);
        assert_eq!(decode(&[1, 2]), None, "truncated WriteICache");
    }
}
