//! QCDOC host software: booting, diagnostics, I/O and job control (§2.3,
//! §3.1, §3.2).
//!
//! Physics runs on the 6-D mesh; *everything else* runs over a conventional
//! Ethernet tree connecting every node to an SMP host:
//!
//! * [`jtag`] — the Ethernet/JTAG controller: a hardware UDP decoder that
//!   executes JTAG commands with **no software on the node** (there are no
//!   PROMs on QCDOC — the first code a node ever runs arrives through this
//!   path straight into the PPC 440's instruction cache);
//! * [`ethernet`] — the Ethernet tree itself: 5-port hubs on daughter- and
//!   motherboards aggregating into Gigabit links at the host;
//! * [`kernel`] — the custom run kernel: two threads (kernel +
//!   application), no scheduler, syscall servicing, hardware status
//!   monitoring and UDP/NFS services;
//! * [`qdaemon`] — the host daemon: boots the machine (≈100 UDP packets to
//!   load the boot kernel per node, ≈100 more for the run kernel), tracks
//!   node status, allocates partitions, launches applications and returns
//!   their output;
//! * [`qcsh`] — the modified-tcsh command interface through which users
//!   talk to the qdaemon;
//! * [`recovery`] — the quarantine-and-replan side of self-healing runs:
//!   translate a dirty health ledger into quarantined hardware and a
//!   replacement (possibly degraded) partition from the qdaemon;
//! * [`repair`] — the return-to-service side: scrub + isolated link
//!   burn-in for quarantined nodes, sticky blacklisting for repeat
//!   offenders, spares back into the allocatable pool;
//! * [`chaos`] — the seeded chaos soak harness that drives scheduler,
//!   qdaemon, vault and fault plans together and checks machine-level
//!   SLOs (zero lost jobs, bit-identical solves, capacity recovery).

#![warn(missing_docs)]

pub mod chaos;
pub mod ckstore;
pub mod debug;
pub mod ethernet;
pub mod jtag;
pub mod kernel;
pub mod nfs;
pub mod qcsh;
pub mod qdaemon;
pub mod recovery;
pub mod repair;
pub mod rpc;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use qdaemon::{BootReport, NodeCensus, NodeState, Qdaemon};
pub use recovery::RecoveryPlanner;
pub use repair::{RepairConfig, RepairPipeline, RepairStage, RepairTickReport};
