//! The node run kernel (§3.2).
//!
//! "We have chosen to write our own lean, run-time kernel … essentially two
//! threads — a kernel thread and an application thread. For QCD, we have no
//! reason to multitask on the node level, so the run kernels do not do any
//! scheduling." The kernel services syscalls, monitors hardware status, and
//! reports back to the qdaemon at program termination.

use serde::{Deserialize, Serialize};

/// Which thread currently owns the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActiveThread {
    /// Boot, initialization, debugging, syscall service.
    Kernel,
    /// The user application.
    Application,
}

/// The lifecycle of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelPhase {
    /// Boot kernel running: basic hardware tests of ASIC + DRAM.
    HardwareTest,
    /// Run kernel loaded; SCU links trained; waiting for work.
    Idle,
    /// Application thread executing.
    Running,
    /// Application finished; kernel checking hardware status.
    Finished,
}

/// A system call from the application thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Syscall {
    /// Write bytes to the job's output stream (returned via qdaemon).
    WriteOutput(Vec<u8>),
    /// Open a file on an NFS-mounted host disk.
    NfsOpen {
        /// Path on the host.
        path: String,
    },
    /// Write to an open NFS file.
    NfsWrite {
        /// Handle from `NfsOpen`.
        handle: u32,
        /// Data.
        bytes: Vec<u8>,
    },
    /// Terminate the application.
    Exit {
        /// Exit code.
        code: i32,
    },
}

/// Hardware status the kernel reports at job end (§3.2: "it checks on
/// hardware status and reports back to the qdaemon and user").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareStatus {
    /// SCU link parity errors detected (each auto-resent).
    pub link_errors: u64,
    /// EDRAM ECC corrections.
    pub ecc_corrections: u64,
    /// Whether all 24 link checksums matched their partners.
    pub checksums_ok: bool,
}

/// The run kernel of one node.
#[derive(Debug, Clone)]
pub struct RunKernel {
    phase: KernelPhase,
    active: ActiveThread,
    output: Vec<u8>,
    nfs_handles: u32,
    nfs_written: u64,
    status: HardwareStatus,
    exit_code: Option<i32>,
    syscalls_serviced: u64,
}

impl Default for RunKernel {
    fn default() -> Self {
        RunKernel::new()
    }
}

impl RunKernel {
    /// A freshly loaded run kernel, starting in hardware test.
    pub fn new() -> RunKernel {
        RunKernel {
            phase: KernelPhase::HardwareTest,
            active: ActiveThread::Kernel,
            output: Vec::new(),
            nfs_handles: 0,
            nfs_written: 0,
            status: HardwareStatus {
                checksums_ok: true,
                ..Default::default()
            },
            exit_code: None,
            syscalls_serviced: 0,
        }
    }

    /// Complete hardware tests and go idle (links trained).
    pub fn finish_hardware_test(&mut self) {
        assert_eq!(self.phase, KernelPhase::HardwareTest);
        self.phase = KernelPhase::Idle;
    }

    /// Launch the application thread.
    pub fn launch(&mut self) {
        assert_eq!(self.phase, KernelPhase::Idle, "node busy or untested");
        self.phase = KernelPhase::Running;
        self.active = ActiveThread::Application;
    }

    /// Service one syscall: control passes to the kernel thread and back —
    /// the only "scheduling" the kernel does (§3.2).
    pub fn syscall(&mut self, call: Syscall) -> Option<u32> {
        assert_eq!(
            self.phase,
            KernelPhase::Running,
            "syscall outside application"
        );
        self.active = ActiveThread::Kernel;
        self.syscalls_serviced += 1;
        let ret = match call {
            Syscall::WriteOutput(bytes) => {
                self.output.extend_from_slice(&bytes);
                None
            }
            Syscall::NfsOpen { .. } => {
                self.nfs_handles += 1;
                Some(self.nfs_handles)
            }
            Syscall::NfsWrite { bytes, .. } => {
                self.nfs_written += bytes.len() as u64;
                None
            }
            Syscall::Exit { code } => {
                self.exit_code = Some(code);
                self.phase = KernelPhase::Finished;
                return None;
            }
        };
        // Control returns to the application.
        self.active = ActiveThread::Application;
        ret
    }

    /// Record a hardware event observed during the run.
    pub fn record_link_error(&mut self) {
        self.status.link_errors += 1;
    }

    /// Record the end-of-run checksum comparison result.
    pub fn record_checksum_result(&mut self, ok: bool) {
        self.status.checksums_ok &= ok;
    }

    /// Record single-bit memory corrections the ECC hardware performed.
    pub fn record_ecc_corrections(&mut self, count: u64) {
        self.status.ecc_corrections += count;
    }

    /// Fold a machine-sweep snapshot of this node's hardware counters into
    /// the kernel's status. Sweep counters are cumulative totals, so the
    /// merge takes the maximum — re-ingesting the same sweep is idempotent
    /// — while a checksum failure stays sticky.
    pub fn merge_hardware(&mut self, snapshot: HardwareStatus) {
        self.status.link_errors = self.status.link_errors.max(snapshot.link_errors);
        self.status.ecc_corrections = self.status.ecc_corrections.max(snapshot.ecc_corrections);
        self.status.checksums_ok &= snapshot.checksums_ok;
    }

    /// Current phase.
    pub fn phase(&self) -> KernelPhase {
        self.phase
    }

    /// Which thread owns the CPU.
    pub fn active_thread(&self) -> ActiveThread {
        self.active
    }

    /// Job output accumulated so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Exit code, once the application has terminated.
    pub fn exit_code(&self) -> Option<i32> {
        self.exit_code
    }

    /// The end-of-run hardware report.
    pub fn hardware_status(&self) -> HardwareStatus {
        self.status
    }

    /// Syscalls serviced.
    pub fn syscalls_serviced(&self) -> u64 {
        self.syscalls_serviced
    }

    /// Bytes written to NFS disks.
    pub fn nfs_written(&self) -> u64 {
        self.nfs_written
    }

    /// Reset to idle for the next job (kernel thread reclaims the node).
    pub fn reset_for_next_job(&mut self) {
        assert_eq!(self.phase, KernelPhase::Finished);
        self.phase = KernelPhase::Idle;
        self.active = ActiveThread::Kernel;
        self.output.clear();
        self.exit_code = None;
        self.status = HardwareStatus {
            checksums_ok: true,
            ..Default::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut k = RunKernel::new();
        assert_eq!(k.phase(), KernelPhase::HardwareTest);
        k.finish_hardware_test();
        assert_eq!(k.phase(), KernelPhase::Idle);
        k.launch();
        assert_eq!(k.phase(), KernelPhase::Running);
        assert_eq!(k.active_thread(), ActiveThread::Application);
        k.syscall(Syscall::Exit { code: 0 });
        assert_eq!(k.phase(), KernelPhase::Finished);
        assert_eq!(k.exit_code(), Some(0));
    }

    #[test]
    fn syscall_bounces_through_kernel_thread() {
        let mut k = RunKernel::new();
        k.finish_hardware_test();
        k.launch();
        k.syscall(Syscall::WriteOutput(b"plaquette = 0.5937".to_vec()));
        // After a non-exit syscall, control is back with the application.
        assert_eq!(k.active_thread(), ActiveThread::Application);
        assert_eq!(k.output(), b"plaquette = 0.5937");
        assert_eq!(k.syscalls_serviced(), 1);
    }

    #[test]
    fn nfs_write_path() {
        let mut k = RunKernel::new();
        k.finish_hardware_test();
        k.launch();
        let h = k
            .syscall(Syscall::NfsOpen {
                path: "/host/configs/lat.0".into(),
            })
            .unwrap();
        k.syscall(Syscall::NfsWrite {
            handle: h,
            bytes: vec![0u8; 4096],
        });
        assert_eq!(k.nfs_written(), 4096);
    }

    #[test]
    fn hardware_status_accumulates() {
        let mut k = RunKernel::new();
        k.finish_hardware_test();
        k.launch();
        k.record_link_error();
        k.record_link_error();
        k.record_checksum_result(true);
        k.syscall(Syscall::Exit { code: 0 });
        let s = k.hardware_status();
        assert_eq!(s.link_errors, 2);
        assert!(s.checksums_ok);
    }

    #[test]
    fn checksum_failure_is_sticky() {
        let mut k = RunKernel::new();
        k.record_checksum_result(false);
        k.record_checksum_result(true);
        assert!(!k.hardware_status().checksums_ok);
    }

    #[test]
    #[should_panic(expected = "node busy or untested")]
    fn cannot_launch_before_hardware_test() {
        let mut k = RunKernel::new();
        k.launch();
    }

    #[test]
    fn reset_allows_next_job() {
        let mut k = RunKernel::new();
        k.finish_hardware_test();
        k.launch();
        k.syscall(Syscall::WriteOutput(b"x".to_vec()));
        k.syscall(Syscall::Exit { code: 7 });
        k.reset_for_next_job();
        assert_eq!(k.phase(), KernelPhase::Idle);
        assert!(k.output().is_empty());
        k.launch();
        assert_eq!(k.phase(), KernelPhase::Running);
    }
}
