//! The host↔node RPC protocol (§3.1).
//!
//! "At this point, QCDOC is ready for applications to run. All subsequent
//! communications between the host and nodes uses the RPC protocol."
//!
//! UDP-framed request/response with sequence numbers: the qdaemon side
//! retries on loss, the node side deduplicates on the sequence number so a
//! retried request executes at most once. Calls mirror what the qdaemon
//! actually does after boot: launch applications, poll status, collect
//! output, and ask the kernel for its hardware report.

use crate::kernel::{HardwareStatus, KernelPhase, RunKernel};
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// An RPC call from the qdaemon to a node's run kernel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RpcCall {
    /// Launch the application thread.
    Launch,
    /// Poll the kernel phase.
    Poll,
    /// Collect (and clear) buffered application output.
    CollectOutput,
    /// Request the end-of-run hardware status.
    HardwareReport,
}

/// The node's reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RpcReply {
    /// Acknowledged with no payload.
    Ok,
    /// The kernel phase.
    Phase(KernelPhase),
    /// Output bytes.
    Output(Vec<u8>),
    /// Hardware status triple (link errors, ECC corrections, checksums ok).
    Hardware(u64, u64, bool),
    /// The call could not be serviced in the current phase.
    Busy,
}

/// A framed request on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcRequest {
    /// Sequence number (dedup + retry matching).
    pub seq: u32,
    /// The call.
    pub call: RpcCall,
}

/// Encode a request as a UDP payload.
pub fn encode_request(req: &RpcRequest) -> Vec<u8> {
    let mut b = BytesMut::new();
    b.put_u32(req.seq);
    match req.call {
        RpcCall::Launch => b.put_u8(1),
        RpcCall::Poll => b.put_u8(2),
        RpcCall::CollectOutput => b.put_u8(3),
        RpcCall::HardwareReport => b.put_u8(4),
    }
    b.to_vec()
}

/// Decode a request payload.
pub fn decode_request(payload: &[u8]) -> Option<RpcRequest> {
    let mut buf = payload;
    if buf.len() < 5 {
        return None;
    }
    let seq = buf.get_u32();
    let call = match buf.get_u8() {
        1 => RpcCall::Launch,
        2 => RpcCall::Poll,
        3 => RpcCall::CollectOutput,
        4 => RpcCall::HardwareReport,
        _ => return None,
    };
    Some(RpcRequest { seq, call })
}

/// The node-side RPC server: executes calls against the run kernel,
/// deduplicating retries by sequence number.
#[derive(Debug)]
pub struct RpcServer {
    kernel: RunKernel,
    last_seq: Option<u32>,
    last_reply: Option<RpcReply>,
    duplicates: u64,
}

impl RpcServer {
    /// Wrap a booted kernel.
    pub fn new(kernel: RunKernel) -> RpcServer {
        RpcServer {
            kernel,
            last_seq: None,
            last_reply: None,
            duplicates: 0,
        }
    }

    /// Kernel access (the application model drives syscalls through this).
    pub fn kernel_mut(&mut self) -> &mut RunKernel {
        &mut self.kernel
    }

    /// Retried requests seen.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Execute one request; a repeat of the last sequence number returns
    /// the cached reply without re-executing (at-most-once semantics).
    pub fn handle(&mut self, req: &RpcRequest) -> RpcReply {
        if self.last_seq == Some(req.seq) {
            self.duplicates += 1;
            return self.last_reply.clone().expect("cached reply");
        }
        let reply = match req.call {
            RpcCall::Launch => {
                if self.kernel.phase() == KernelPhase::Idle {
                    self.kernel.launch();
                    RpcReply::Ok
                } else {
                    RpcReply::Busy
                }
            }
            RpcCall::Poll => RpcReply::Phase(self.kernel.phase()),
            RpcCall::CollectOutput => RpcReply::Output(self.kernel.output().to_vec()),
            RpcCall::HardwareReport => {
                let HardwareStatus {
                    link_errors,
                    ecc_corrections,
                    checksums_ok,
                } = self.kernel.hardware_status();
                RpcReply::Hardware(link_errors, ecc_corrections, checksums_ok)
            }
        };
        self.last_seq = Some(req.seq);
        self.last_reply = Some(reply.clone());
        reply
    }
}

/// The host-side client: sequences requests and retries through a lossy
/// channel.
#[derive(Debug, Default)]
pub struct RpcClient {
    next_seq: u32,
    retries: u64,
}

impl RpcClient {
    /// A fresh client.
    pub fn new() -> RpcClient {
        RpcClient::default()
    }

    /// Total retransmissions performed.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Issue `call` through `transport`, which returns `None` to model a
    /// lost datagram; retries up to `max_retries` times with the same
    /// sequence number.
    pub fn call<F>(
        &mut self,
        server: &mut RpcServer,
        call: RpcCall,
        max_retries: u32,
        mut transport: F,
    ) -> Option<RpcReply>
    where
        F: FnMut(u32) -> bool,
    {
        let seq = self.next_seq;
        self.next_seq += 1;
        let req = RpcRequest { seq, call };
        for attempt in 0..=max_retries {
            if attempt > 0 {
                self.retries += 1;
            }
            // Encode/decode through the real framing each attempt.
            let wire = encode_request(&req);
            let decoded = decode_request(&wire).expect("self-framed request");
            if transport(attempt) {
                return Some(server.handle(&decoded));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Syscall;

    fn booted_server() -> RpcServer {
        let mut k = RunKernel::new();
        k.finish_hardware_test();
        RpcServer::new(k)
    }

    #[test]
    fn frame_roundtrip() {
        for call in [
            RpcCall::Launch,
            RpcCall::Poll,
            RpcCall::CollectOutput,
            RpcCall::HardwareReport,
        ] {
            let req = RpcRequest {
                seq: 77,
                call: call.clone(),
            };
            assert_eq!(decode_request(&encode_request(&req)), Some(req));
        }
        assert_eq!(decode_request(&[1, 2]), None);
        assert_eq!(decode_request(&[0, 0, 0, 1, 99]), None);
    }

    #[test]
    fn launch_poll_collect_cycle() {
        let mut server = booted_server();
        let mut client = RpcClient::new();
        let ok = |_: u32| true;
        assert_eq!(
            client.call(&mut server, RpcCall::Launch, 0, ok),
            Some(RpcReply::Ok)
        );
        assert_eq!(
            client.call(&mut server, RpcCall::Poll, 0, ok),
            Some(RpcReply::Phase(KernelPhase::Running))
        );
        server
            .kernel_mut()
            .syscall(Syscall::WriteOutput(b"42".to_vec()));
        server.kernel_mut().syscall(Syscall::Exit { code: 0 });
        assert_eq!(
            client.call(&mut server, RpcCall::CollectOutput, 0, ok),
            Some(RpcReply::Output(b"42".to_vec()))
        );
        assert_eq!(
            client.call(&mut server, RpcCall::Poll, 0, ok),
            Some(RpcReply::Phase(KernelPhase::Finished))
        );
    }

    #[test]
    fn launch_twice_is_busy() {
        let mut server = booted_server();
        let mut client = RpcClient::new();
        let ok = |_: u32| true;
        assert_eq!(
            client.call(&mut server, RpcCall::Launch, 0, ok),
            Some(RpcReply::Ok)
        );
        assert_eq!(
            client.call(&mut server, RpcCall::Launch, 0, ok),
            Some(RpcReply::Busy)
        );
    }

    #[test]
    fn lost_datagrams_are_retried_and_deduplicated() {
        let mut server = booted_server();
        let mut client = RpcClient::new();
        // Drop the first two attempts.
        let reply = client.call(&mut server, RpcCall::Launch, 5, |attempt| attempt >= 2);
        assert_eq!(reply, Some(RpcReply::Ok));
        assert_eq!(client.retries(), 2);
        // Executed exactly once: a duplicate Launch (same seq, as if the
        // reply were lost and the request retried late) returns the cached
        // Ok instead of Busy.
        let dup = RpcRequest {
            seq: 0,
            call: RpcCall::Launch,
        };
        assert_eq!(server.handle(&dup), RpcReply::Ok);
        assert_eq!(server.duplicates(), 1);
    }

    #[test]
    fn exhausted_retries_report_loss() {
        let mut server = booted_server();
        let mut client = RpcClient::new();
        let reply = client.call(&mut server, RpcCall::Poll, 3, |_| false);
        assert_eq!(reply, None);
        assert_eq!(client.retries(), 3);
    }

    #[test]
    fn hardware_report_carries_kernel_status() {
        let mut server = booted_server();
        server.kernel_mut().record_link_error();
        server.kernel_mut().record_checksum_result(true);
        server.kernel_mut().record_ecc_corrections(3);
        let mut client = RpcClient::new();
        let reply = client.call(&mut server, RpcCall::HardwareReport, 0, |_| true);
        assert_eq!(reply, Some(RpcReply::Hardware(1, 3, true)));
    }

    #[test]
    fn sweep_fed_counters_surface_in_the_rpc_reply() {
        use crate::qdaemon::Qdaemon;
        use qcdoc_fault::HealthLedger;
        use qcdoc_geometry::{NodeId, TorusShape};
        // The qdaemon ingests a machine sweep that saw corrected memory
        // errors and a checksum-rejected DMA block; the node kernel's
        // hardware triple — what `HardwareReport` returns to the user —
        // must carry those real counters.
        let mut q = Qdaemon::new(TorusShape::new(&[4, 2, 2, 2, 1, 1]));
        q.boot(&[]);
        let mut ledger = HealthLedger::new(32);
        ledger.node_mut(6).ecc_corrected = 4;
        ledger.node_mut(6).links[3].block_rejects = 1;
        q.ingest_health(&ledger);
        let mut server = RpcServer::new(q.kernel(NodeId(6)).clone());
        let mut client = RpcClient::new();
        let reply = client.call(&mut server, RpcCall::HardwareReport, 0, |_| true);
        assert_eq!(reply, Some(RpcReply::Hardware(1, 4, true)));
    }
}
