//! Durable checkpoint store over the host NFS layer (§3.2, §4).
//!
//! The paper's recovery story assumes the host RAID is where state
//! outlives hardware: nodes write checkpoints to NFS-mounted disks so an
//! operator can pull a daughterboard and resume. But disks fail too —
//! the companion paper (hep-lat/0306023 §4) calls the host system the
//! *other* half of reliability. This store makes a checkpoint survive
//! the storage failures `qcdoc_fault::storage` can inject:
//!
//! * **Atomic generations** — each save goes write-to-temp → read-back
//!   verify → one atomic `rename` into `gen-NNNNNN.<digest>.ckpt`. A
//!   crash mid-save leaves a torn *temp*, never a torn generation; the
//!   committed name itself carries a content digest over every byte of
//!   the blob — header scalars included, closing the hole the NERSC
//!   payload checksum leaves — so commit and identity travel in the
//!   same atomic step. The clean path stays cheap: the read-back is
//!   compared byte-for-byte against the bytes just written and the
//!   digest is a word-folded FNV, so no archive parse taxes a save.
//! * **Verified restore with fallback** — restore walks generations
//!   newest-first, re-checking each against the digest in its file
//!   name; in [`VerifyMode::CgArchive`] a mismatch is then *classified*
//!   by parsing the archive (payload-checksum failure → rot, truncation
//!   → torn) and a match is still re-parsed before it may win. A torn
//!   or bit-rotted generation is skipped — detected, recorded in the
//!   flight ring — and the previous good one wins.
//! * **Bounded retry + backoff** — transient I/O errors and server
//!   crashes are retried under the same [`RetryPolicy`] discipline the
//!   SCU links use (PR 3): a budget of consecutive failures and a
//!   doubling, capped hold-off.
//! * **Retention GC** — `retain` newest generations are kept,
//!   oldest-first collection; a genuinely full disk sacrifices the
//!   oldest surplus generation to make room for the new one.
//!
//! Everything the store does on an exceptional path leaves a
//! [`HOST_NODE`] flight event, and `export_metrics` publishes the
//! `ckstore_*` counters the qdaemon scrape carries.

use crate::nfs::{NfsError, NfsServer};
use qcdoc_lattice::checkpoint::{read_checkpoint, CgCheckpoint};
use qcdoc_lattice::io::IoError;
use qcdoc_sched::{CheckpointVault, JobId};
use qcdoc_scu::RetryPolicy;
use qcdoc_telemetry::{FlightEvent, FlightKind, FlightRecorder, MetricsRegistry, HOST_NODE};
use std::collections::HashMap;

/// How a stored blob is validated on restore. Both modes commit the
/// same content digest in the generation's file name and check it
/// first; they differ in what happens around that check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// The blob is a [`CgCheckpoint`] archive: a digest mismatch is
    /// classified by parsing the archive (NERSC payload-checksum
    /// failure → rot, truncation → torn), and even a digest match must
    /// parse before it is allowed to restore.
    CgArchive,
    /// Opaque bytes: a digest mismatch is reported as rot, nothing is
    /// parsed.
    Opaque,
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory under an NFS export holding this store's generations,
    /// e.g. `/data/ck/job42` (no trailing slash).
    pub root: String,
    /// Newest generations kept after a successful commit.
    pub retain: usize,
    /// Validation discipline.
    pub verify: VerifyMode,
    /// Bounded retry + backoff for transient failures (PR 3 idiom).
    pub retry: RetryPolicy,
}

impl StoreConfig {
    /// Defaults: keep 3 generations of verified CG archives, retry up to
    /// 4 consecutive failures with a 2→16-tick doubling hold-off.
    pub fn new(root: impl Into<String>) -> StoreConfig {
        StoreConfig {
            root: root.into(),
            retain: 3,
            verify: VerifyMode::CgArchive,
            retry: RetryPolicy::bounded(4, 2, 16),
        }
    }
}

/// Terminal store failures (transient ones are retried internally).
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// A non-retryable NFS failure (bad path, disk full with nothing
    /// left to collect).
    Nfs(NfsError),
    /// The retry budget ran out on a retryable NFS failure.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The failure of the last attempt.
        last: NfsError,
    },
    /// Read-back verification kept failing within the retry budget — the
    /// disk is eating writes (or the caller handed us a blob that does
    /// not parse under [`VerifyMode::CgArchive`]).
    VerifyFailed {
        /// Attempts made.
        attempts: u32,
        /// Last verification failure.
        reason: String,
    },
    /// Restore examined every generation and none validated.
    NoGoodGeneration {
        /// Generations examined.
        examined: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Nfs(e) => write!(f, "checkpoint store: {e}"),
            StoreError::Exhausted { attempts, last } => {
                write!(
                    f,
                    "checkpoint store: gave up after {attempts} attempts: {last}"
                )
            }
            StoreError::VerifyFailed { attempts, reason } => {
                write!(
                    f,
                    "checkpoint store: verify failed {attempts} times: {reason}"
                )
            }
            StoreError::NoGoodGeneration { examined } => {
                write!(f, "checkpoint store: no good generation among {examined}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// A successful restore.
#[derive(Debug, Clone, PartialEq)]
pub struct Restored {
    /// Generation number that validated.
    pub generation: u64,
    /// Its verified bytes.
    pub bytes: Vec<u8>,
    /// Newer generations that were examined and rejected, newest first,
    /// with the rejection reason — non-empty means a fallback happened.
    pub skipped: Vec<(u64, String)>,
}

/// One attempt's failure, before retry policy is applied.
enum Attempt {
    Nfs(NfsError),
    Verify(String),
}

/// Content digest committed in a generation's file name: four
/// interleaved FNV-1a lanes over 8-byte little-endian words
/// (length-seeded, byte-wise tail), folded together at the end. It
/// covers every byte of the blob — header scalars and payload alike —
/// at a fraction of the cost of parsing the archive: the lanes break
/// the serial multiply dependency so a ~150 KB archive digests in a
/// few microseconds, keeping the clean save path off the solver's
/// critical-path budget.
fn content_digest(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x100_0000_01B3;
    let mut lanes = [
        OFFSET ^ bytes.len() as u64,
        OFFSET.wrapping_mul(PRIME),
        OFFSET.rotate_left(17),
        OFFSET.rotate_left(43),
    ];
    let mut quads = bytes.chunks_exact(32);
    for q in &mut quads {
        for (lane, w) in lanes.iter_mut().zip(q.chunks_exact(8)) {
            let w = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
            *lane = (*lane ^ w).wrapping_mul(PRIME);
        }
    }
    let mut h = lanes
        .into_iter()
        .fold(OFFSET, |h, lane| (h ^ lane).wrapping_mul(PRIME));
    for &b in quads.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// The durable checkpoint store.
#[derive(Debug)]
pub struct CheckpointStore {
    cfg: StoreConfig,
    next_gen: u64,
    clock: u64,
    flight: FlightRecorder,
    // ckstore_* counters
    commits: u64,
    retries: u64,
    verify_failures: u64,
    torn_detected: u64,
    rot_detected: u64,
    fallbacks: u64,
    restores: u64,
    gc_removed: u64,
    bytes_committed: u64,
    backoff_held: u64,
    last_gen_count: usize,
}

impl CheckpointStore {
    /// Open (or re-open) a store, discovering committed generations from
    /// the server. A leftover temp file — the footprint of a crash
    /// mid-save — is detected, recorded, and cleared.
    pub fn open(cfg: StoreConfig, nfs: &mut NfsServer) -> CheckpointStore {
        let mut store = CheckpointStore {
            cfg,
            next_gen: 0,
            clock: 0,
            flight: FlightRecorder::default(),
            commits: 0,
            retries: 0,
            verify_failures: 0,
            torn_detected: 0,
            rot_detected: 0,
            fallbacks: 0,
            restores: 0,
            gc_removed: 0,
            bytes_committed: 0,
            backoff_held: 0,
            last_gen_count: 0,
        };
        let committed = store.committed(nfs);
        store.next_gen = committed.last().map(|(g, _, _)| g + 1).unwrap_or(0);
        store.last_gen_count = committed.len();
        let tmp = store.temp_path();
        if nfs.stat(&tmp).is_ok() {
            store.torn_detected += 1;
            store.clock += 1;
            store.flight.record(
                HOST_NODE,
                store.clock,
                FlightKind::Info,
                "ckstore_torn_leftover",
                0,
                0,
            );
            let _ = nfs.remove(&tmp);
        }
        store
    }

    fn temp_path(&self) -> String {
        format!("{}/tmp.ckpt", self.cfg.root)
    }

    fn committed_name(&self, gen: u64, digest: u64) -> String {
        format!("{}/gen-{gen:06}.{digest:016x}.ckpt", self.cfg.root)
    }

    /// Committed generations `(gen, digest, path)`, oldest first.
    fn committed(&self, nfs: &NfsServer) -> Vec<(u64, u64, String)> {
        let prefix = format!("{}/gen-", self.cfg.root);
        let mut out: Vec<(u64, u64, String)> = nfs
            .list(&prefix)
            .into_iter()
            .filter_map(|path| {
                let rest = path.strip_prefix(&prefix)?.strip_suffix(".ckpt")?;
                let (gen_s, dig_s) = rest.split_once('.')?;
                if dig_s.len() != 16 {
                    return None;
                }
                Some((
                    gen_s.parse::<u64>().ok()?,
                    u64::from_str_radix(dig_s, 16).ok()?,
                    path.clone(),
                ))
            })
            .collect();
        out.sort();
        out
    }

    /// Committed `(generation, path)` pairs, oldest first — the paths
    /// fault plans aim bit rot at.
    pub fn committed_paths(&self, nfs: &NfsServer) -> Vec<(u64, String)> {
        self.committed(nfs)
            .into_iter()
            .map(|(g, _, p)| (g, p))
            .collect()
    }

    /// Generation numbers currently on disk, oldest first.
    pub fn generations(&self, nfs: &NfsServer) -> Vec<u64> {
        self.committed(nfs).into_iter().map(|(g, _, _)| g).collect()
    }

    /// The store's flight ring ([`HOST_NODE`] events).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Drain flight events (for ingestion into the qdaemon's recorder).
    pub fn drain_flight(&mut self) -> Vec<FlightEvent> {
        self.flight.drain()
    }

    /// Simulated hold-off (PR 3 backoff discipline): doubling per
    /// consecutive failure, capped, accounted in store ticks.
    fn hold_off(&mut self, consecutive: u32) {
        let base = u64::from(self.cfg.retry.backoff_base);
        if base > 0 {
            let hold =
                (base << (consecutive - 1).min(16)).min(u64::from(self.cfg.retry.backoff_cap));
            self.backoff_held += hold;
            self.clock += hold;
        }
        self.clock += 1;
    }

    /// One save attempt: temp write, read-back verify, atomic commit,
    /// then retention GC. Any failure is reported for retry policy.
    fn attempt_save(
        &mut self,
        nfs: &mut NfsServer,
        bytes: &[u8],
        gen: u64,
    ) -> Result<u64, Attempt> {
        let tmp = self.temp_path();
        if nfs.stat(&tmp).is_ok() {
            nfs.remove(&tmp).map_err(Attempt::Nfs)?;
        }
        let h = nfs.open(&tmp).map_err(Attempt::Nfs)?;
        nfs.write(h, bytes).map_err(Attempt::Nfs)?;
        let back = nfs.read(&tmp).map_err(Attempt::Nfs)?;
        if back != bytes {
            return Err(Attempt::Verify(
                "read-back differs from written bytes".into(),
            ));
        }
        // The read-back matched the in-memory truth byte-for-byte, so
        // digesting `bytes` digests exactly what the media holds.
        let dest = self.committed_name(gen, content_digest(bytes));
        nfs.rename(&tmp, &dest).map_err(Attempt::Nfs)?;
        self.next_gen = gen + 1;
        self.commits += 1;
        self.bytes_committed += bytes.len() as u64;
        self.clock += 1;
        self.flight.record(
            HOST_NODE,
            self.clock,
            FlightKind::Checkpoint,
            "ckstore_commit",
            gen,
            bytes.len() as u64,
        );
        self.retention_gc(nfs);
        Ok(gen)
    }

    /// Collect generations beyond the retention window, oldest first.
    fn retention_gc(&mut self, nfs: &mut NfsServer) {
        let mut gens = self.committed(nfs);
        while gens.len() > self.cfg.retain {
            let (g, _, path) = gens.remove(0);
            if nfs.remove(&path).is_err() {
                // Transient mid-GC: leave the surplus for the next save.
                break;
            }
            self.gc_removed += 1;
            self.clock += 1;
            self.flight
                .record(HOST_NODE, self.clock, FlightKind::Info, "ckstore_gc", g, 0);
        }
        self.last_gen_count = gens.len();
    }

    /// Sacrifice the oldest generation to free disk space (keeping at
    /// least one). Returns whether anything was freed.
    fn gc_for_space(&mut self, nfs: &mut NfsServer) -> bool {
        let gens = self.committed(nfs);
        if gens.len() < 2 {
            return false;
        }
        let (g, _, path) = gens.into_iter().next().unwrap();
        if nfs.remove(&path).is_err() {
            return false;
        }
        self.gc_removed += 1;
        self.clock += 1;
        self.flight.record(
            HOST_NODE,
            self.clock,
            FlightKind::Info,
            "ckstore_gc_for_space",
            g,
            0,
        );
        true
    }

    /// Durably save one checkpoint blob; returns its generation number.
    ///
    /// Transient failures, server crashes, and stale handles are retried
    /// under the configured [`RetryPolicy`]; a full disk collects the
    /// oldest surplus generation and tries again.
    pub fn save(&mut self, nfs: &mut NfsServer, bytes: &[u8]) -> Result<u64, StoreError> {
        let gen = self.next_gen;
        let mut failures: u32 = 0;
        loop {
            let err = match self.attempt_save(nfs, bytes, gen) {
                Ok(gen) => return Ok(gen),
                Err(e) => e,
            };
            match err {
                Attempt::Nfs(NfsError::DiskFull) => {
                    // Not a flaky disk but a full one: freeing space is
                    // the fix, and does not consume retry budget.
                    if !self.gc_for_space(nfs) {
                        return Err(StoreError::Nfs(NfsError::DiskFull));
                    }
                }
                Attempt::Nfs(e) if e.retryable() => {
                    failures += 1;
                    if e == NfsError::ServerCrash {
                        // The crash tore our temp write; say so in the
                        // black box before retrying.
                        self.torn_detected += 1;
                        self.clock += 1;
                        self.flight.record(
                            HOST_NODE,
                            self.clock,
                            FlightKind::Info,
                            "ckstore_torn_write",
                            gen,
                            0,
                        );
                    }
                    if failures > self.cfg.retry.budget {
                        return Err(StoreError::Exhausted {
                            attempts: failures,
                            last: e,
                        });
                    }
                    self.retries += 1;
                    self.hold_off(failures);
                    self.flight.record(
                        HOST_NODE,
                        self.clock,
                        FlightKind::Retry,
                        "ckstore_retry",
                        gen,
                        u64::from(failures),
                    );
                }
                Attempt::Nfs(e) => return Err(StoreError::Nfs(e)),
                Attempt::Verify(reason) => {
                    failures += 1;
                    self.verify_failures += 1;
                    self.clock += 1;
                    self.flight.record(
                        HOST_NODE,
                        self.clock,
                        FlightKind::Info,
                        "ckstore_verify_fail",
                        gen,
                        u64::from(failures),
                    );
                    if failures > self.cfg.retry.budget {
                        return Err(StoreError::VerifyFailed {
                            attempts: failures,
                            reason,
                        });
                    }
                    self.hold_off(failures);
                }
            }
        }
    }

    /// Read a path with bounded retry on retryable failures.
    fn read_retry(&mut self, nfs: &mut NfsServer, path: &str) -> Result<Vec<u8>, NfsError> {
        let mut failures: u32 = 0;
        loop {
            match nfs.read(path) {
                Ok(bytes) => return Ok(bytes),
                Err(e) if e.retryable() && failures < self.cfg.retry.budget => {
                    failures += 1;
                    self.retries += 1;
                    self.hold_off(failures);
                    self.flight.record(
                        HOST_NODE,
                        self.clock,
                        FlightKind::Retry,
                        "ckstore_retry",
                        0,
                        u64::from(failures),
                    );
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Validate stored bytes against the digest committed in the file
    /// name; classifies the failure for the black box.
    fn validate(&mut self, bytes: &[u8], named_digest: u64, gen: u64) -> Result<(), String> {
        let digest_ok = content_digest(bytes) == named_digest;
        let (reason, detail): (String, &'static str) = match self.cfg.verify {
            VerifyMode::CgArchive => match (digest_ok, read_checkpoint(bytes)) {
                (true, Ok(_)) => return Ok(()),
                // Digest intact but unparseable: the caller committed a
                // blob that was never a valid archive — surface it as
                // torn rather than restore garbage.
                (true, Err(e)) => (format!("unparseable archive: {e}"), "ckstore_torn"),
                (false, Err(e @ IoError::Checksum { .. })) => (format!("{e}"), "ckstore_rot"),
                (false, Err(e)) => (format!("torn archive: {e}"), "ckstore_torn"),
                // Rot the payload checksum cannot see — a flipped header
                // scalar — still trips the whole-blob digest.
                (false, Ok(_)) => ("content digest mismatch".into(), "ckstore_rot"),
            },
            VerifyMode::Opaque => {
                if digest_ok {
                    return Ok(());
                }
                ("digest mismatch".into(), "ckstore_rot")
            }
        };
        if detail == "ckstore_rot" {
            self.rot_detected += 1;
        } else {
            self.torn_detected += 1;
        }
        self.clock += 1;
        self.flight
            .record(HOST_NODE, self.clock, FlightKind::Info, detail, gen, 0);
        Err(reason)
    }

    /// Restore the newest generation that validates, falling back past
    /// torn or rotted ones.
    pub fn restore(&mut self, nfs: &mut NfsServer) -> Result<Restored, StoreError> {
        let gens = self.committed(nfs);
        let examined = gens.len();
        let mut skipped: Vec<(u64, String)> = Vec::new();
        for (gen, named_digest, path) in gens.into_iter().rev() {
            let bytes = match self.read_retry(nfs, &path) {
                Ok(bytes) => bytes,
                Err(e) => {
                    skipped.push((gen, format!("unreadable: {e}")));
                    continue;
                }
            };
            match self.validate(&bytes, named_digest, gen) {
                Ok(()) => {
                    self.restores += 1;
                    self.clock += 1;
                    self.flight.record(
                        HOST_NODE,
                        self.clock,
                        FlightKind::Resume,
                        "ckstore_restore",
                        gen,
                        bytes.len() as u64,
                    );
                    if !skipped.is_empty() {
                        self.fallbacks += 1;
                        self.flight.record(
                            HOST_NODE,
                            self.clock,
                            FlightKind::Rollback,
                            "ckstore_fallback",
                            gen,
                            skipped.len() as u64,
                        );
                    }
                    return Ok(Restored {
                        generation: gen,
                        bytes,
                        skipped,
                    });
                }
                Err(reason) => skipped.push((gen, reason)),
            }
        }
        Err(StoreError::NoGoodGeneration { examined })
    }

    /// Restore and parse a [`CgCheckpoint`] (convenience for the solver
    /// resume path; requires [`VerifyMode::CgArchive`]).
    pub fn restore_cg(
        &mut self,
        nfs: &mut NfsServer,
    ) -> Result<(CgCheckpoint, Restored), StoreError> {
        let restored = self.restore(nfs)?;
        // Already validated by restore(); a parse failure here would be
        // a logic error, but stay typed anyway.
        match read_checkpoint(&restored.bytes) {
            Ok(ckpt) => Ok((ckpt, restored)),
            Err(e) => Err(StoreError::VerifyFailed {
                attempts: 1,
                reason: format!("{e}"),
            }),
        }
    }

    /// Publish the `ckstore_*` counters.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.gauge_set("ckstore_commits", &[], self.commits as f64);
        reg.gauge_set("ckstore_retries", &[], self.retries as f64);
        reg.gauge_set("ckstore_verify_failures", &[], self.verify_failures as f64);
        reg.gauge_set("ckstore_torn_detected", &[], self.torn_detected as f64);
        reg.gauge_set("ckstore_rot_detected", &[], self.rot_detected as f64);
        reg.gauge_set("ckstore_fallbacks", &[], self.fallbacks as f64);
        reg.gauge_set("ckstore_restores", &[], self.restores as f64);
        reg.gauge_set("ckstore_gc_removed", &[], self.gc_removed as f64);
        reg.gauge_set("ckstore_bytes_committed", &[], self.bytes_committed as f64);
        reg.gauge_set("ckstore_backoff_held", &[], self.backoff_held as f64);
        reg.gauge_set("ckstore_generations", &[], self.last_gen_count as f64);
    }

    /// Commits performed by this store instance.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Retries spent on retryable failures.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Torn writes detected (mid-save crashes, leftover temps, torn
    /// archives found on restore).
    pub fn torn_detected(&self) -> u64 {
        self.torn_detected
    }

    /// Bit rot detected on restore (checksum or digest mismatches).
    pub fn rot_detected(&self) -> u64 {
        self.rot_detected
    }

    /// Restores that had to fall back past a bad newer generation.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Generations collected (retention + disk-full sacrifices).
    pub fn gc_removed(&self) -> u64 {
        self.gc_removed
    }

    /// Total archive bytes committed by this store instance.
    pub fn bytes_committed(&self) -> u64 {
        self.bytes_committed
    }
}

/// The host's implementation of the scheduler's durable parking
/// boundary ([`CheckpointVault`]): one [`CheckpointStore`] per job under
/// `<root>/job-NNNNNN/`, blobs opaque (the scheduler already treats
/// them as opaque bytes), every save atomic and read-back verified.
/// Because the generations live on the NFS server, a parked job
/// survives a qdaemon restart: rebuild the vault over the same server
/// and `load` finds the newest good generation.
#[derive(Debug)]
pub struct JobVault {
    nfs: NfsServer,
    root: String,
    retain: usize,
    retry: RetryPolicy,
    stores: HashMap<u64, CheckpointStore>,
}

impl JobVault {
    /// A vault over `nfs` keeping its stores under `root` (must be
    /// inside an export). Retains 2 generations per job.
    pub fn new(nfs: NfsServer, root: impl Into<String>) -> JobVault {
        JobVault {
            nfs,
            root: root.into(),
            retain: 2,
            retry: RetryPolicy::bounded(4, 2, 16),
            stores: HashMap::new(),
        }
    }

    /// The underlying server (for stats and fault-plan aiming).
    pub fn nfs(&self) -> &NfsServer {
        &self.nfs
    }

    /// Mutable access to the underlying server (fault injection).
    pub fn nfs_mut(&mut self) -> &mut NfsServer {
        &mut self.nfs
    }

    /// Tear the vault down to its server — what survives a qdaemon
    /// restart (the disks, not the process state).
    pub fn into_server(self) -> NfsServer {
        self.nfs
    }

    /// The per-job store and the server, borrowed disjointly.
    fn parts(&mut self, job: u64) -> (&mut CheckpointStore, &mut NfsServer) {
        let JobVault {
            nfs,
            root,
            retain,
            retry,
            stores,
        } = self;
        let store = stores.entry(job).or_insert_with(|| {
            CheckpointStore::open(
                StoreConfig {
                    root: format!("{root}/job-{job:06}"),
                    retain: *retain,
                    verify: VerifyMode::Opaque,
                    retry: *retry,
                },
                nfs,
            )
        });
        (store, nfs)
    }

    /// Drain flight events from every per-job store (for ingestion into
    /// the qdaemon's machine-level recorder).
    pub fn drain_flight(&mut self) -> Vec<FlightEvent> {
        let mut out = Vec::new();
        let mut jobs: Vec<u64> = self.stores.keys().copied().collect();
        jobs.sort();
        for job in jobs {
            out.extend(self.stores.get_mut(&job).unwrap().drain_flight());
        }
        out
    }

    /// Aggregate `ckstore_*` counters across every per-job store.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        let mut agg = CheckpointStore {
            cfg: StoreConfig::new(self.root.clone()),
            next_gen: 0,
            clock: 0,
            flight: FlightRecorder::new(0),
            commits: 0,
            retries: 0,
            verify_failures: 0,
            torn_detected: 0,
            rot_detected: 0,
            fallbacks: 0,
            restores: 0,
            gc_removed: 0,
            bytes_committed: 0,
            backoff_held: 0,
            last_gen_count: 0,
        };
        for store in self.stores.values() {
            agg.commits += store.commits;
            agg.retries += store.retries;
            agg.verify_failures += store.verify_failures;
            agg.torn_detected += store.torn_detected;
            agg.rot_detected += store.rot_detected;
            agg.fallbacks += store.fallbacks;
            agg.restores += store.restores;
            agg.gc_removed += store.gc_removed;
            agg.bytes_committed += store.bytes_committed;
            agg.backoff_held += store.backoff_held;
            agg.last_gen_count += store.last_gen_count;
        }
        agg.export_metrics(reg);
    }
}

impl CheckpointVault for JobVault {
    fn store(&mut self, job: JobId, blob: &[u8]) -> Result<u64, String> {
        let (store, nfs) = self.parts(job.0);
        store.save(nfs, blob).map_err(|e| e.to_string())
    }

    fn load(&mut self, job: JobId) -> Result<Option<Vec<u8>>, String> {
        let (store, nfs) = self.parts(job.0);
        match store.restore(nfs) {
            Ok(restored) => Ok(Some(restored.bytes)),
            // Nothing ever stored: a legitimate "no checkpoint".
            Err(StoreError::NoGoodGeneration { examined: 0 }) => Ok(None),
            // Generations exist but none validate — that is a failure
            // the caller must hear about, not an empty answer.
            Err(e) => Err(e.to_string()),
        }
    }

    fn discard(&mut self, job: JobId) {
        let (store, nfs) = self.parts(job.0);
        for (_, path) in store.committed_paths(nfs) {
            let _ = nfs.remove(&path);
        }
        self.stores.remove(&job.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcdoc_fault::{StorageFault, StorageFaultPlan};
    use qcdoc_lattice::checkpoint::write_checkpoint;

    fn opaque_cfg(root: &str) -> StoreConfig {
        StoreConfig {
            verify: VerifyMode::Opaque,
            ..StoreConfig::new(root)
        }
    }

    fn small_ckpt(iters: usize) -> CgCheckpoint {
        CgCheckpoint {
            operator: "wilson_dirac".into(),
            iterations: iters,
            converged: false,
            rsq: 0.5 / iters as f64,
            bref: 2.0,
            residuals: (1..=iters).map(|i| 1.0 / i as f64).collect(),
            applications: 2 * iters,
            reductions: 3 * iters,
            x: (0..32).map(|i| (i * iters) as u64).collect(),
            r: (0..32).map(|i| (i + iters) as u64).collect(),
            p: (0..32).map(|i| (i ^ iters) as u64).collect(),
        }
    }

    #[test]
    fn save_restore_roundtrip_and_retention_gc() {
        let mut nfs = NfsServer::new(&["/data"], 1 << 20);
        let mut store = CheckpointStore::open(
            StoreConfig {
                retain: 2,
                ..opaque_cfg("/data/ck")
            },
            &mut nfs,
        );
        for (i, blob) in [b"alpha", b"bravo", b"charl", b"delta"].iter().enumerate() {
            assert_eq!(store.save(&mut nfs, *blob).unwrap(), i as u64);
        }
        assert_eq!(store.generations(&nfs), vec![2, 3], "oldest-first GC");
        assert_eq!(store.gc_removed(), 2);
        let restored = store.restore(&mut nfs).unwrap();
        assert_eq!(restored.generation, 3);
        assert_eq!(restored.bytes, b"delta");
        assert!(restored.skipped.is_empty());
        let dump = store.flight().dump(None);
        assert!(dump.contains("checkpoint ckstore_commit"), "{dump}");
        assert!(dump.contains("info ckstore_gc"), "{dump}");
    }

    #[test]
    fn reopen_continues_generation_sequence() {
        let mut nfs = NfsServer::new(&["/data"], 1 << 20);
        let mut store = CheckpointStore::open(opaque_cfg("/data/ck"), &mut nfs);
        store.save(&mut nfs, b"one").unwrap();
        store.save(&mut nfs, b"two").unwrap();
        drop(store);
        // "qdaemon restart": a fresh store over the same server.
        let mut store = CheckpointStore::open(opaque_cfg("/data/ck"), &mut nfs);
        assert_eq!(store.save(&mut nfs, b"three").unwrap(), 2);
        assert_eq!(store.generations(&nfs), vec![0, 1, 2]);
    }

    #[test]
    fn transient_errors_are_retried_within_budget() {
        let mut nfs = NfsServer::new(&["/data"], 1 << 20);
        let mut store = CheckpointStore::open(opaque_cfg("/data/ck"), &mut nfs);
        // The next save's first NFS call (open) runs at the current op.
        let plan = StorageFaultPlan::new(9).with_event(StorageFault::Transient {
            op: nfs.ops(),
            count: 2,
        });
        nfs.inject(&plan);
        store.save(&mut nfs, b"persist").unwrap();
        assert_eq!(store.retries(), 2);
        assert!(store.flight().dump(None).contains("retry ckstore_retry"));
        assert_eq!(store.restore(&mut nfs).unwrap().bytes, b"persist");
    }

    #[test]
    fn retry_budget_exhaustion_is_typed() {
        let mut nfs = NfsServer::new(&["/data"], 1 << 20);
        let mut store = CheckpointStore::open(opaque_cfg("/data/ck"), &mut nfs);
        nfs.inject(
            &StorageFaultPlan::new(9).with_event(StorageFault::Transient {
                op: nfs.ops(),
                count: 1000,
            }),
        );
        match store.save(&mut nfs, b"x") {
            Err(StoreError::Exhausted { attempts, last }) => {
                assert_eq!(attempts, 5, "budget 4 = 5 attempts");
                assert_eq!(last, NfsError::Transient);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn torn_temp_write_never_corrupts_a_generation() {
        let mut nfs = NfsServer::new(&["/data"], 1 << 20);
        let mut store = CheckpointStore::open(opaque_cfg("/data/ck"), &mut nfs);
        store.save(&mut nfs, b"good-gen-0").unwrap();
        // Crash the server mid-way through the next save's temp write.
        nfs.inject(
            &StorageFaultPlan::new(7).with_event(StorageFault::TornWrite {
                write_op: nfs.write_ops(),
                keep: None,
            }),
        );
        store.save(&mut nfs, b"good-gen-1").unwrap();
        assert!(store.torn_detected() >= 1, "torn write must be recorded");
        assert!(store.retries() >= 1);
        // Both generations committed intact despite the crash.
        let restored = store.restore(&mut nfs).unwrap();
        assert_eq!(restored.generation, 1);
        assert_eq!(restored.bytes, b"good-gen-1");
        assert!(store.flight().dump(None).contains("ckstore_torn_write"));
    }

    #[test]
    fn bit_rot_on_newest_falls_back_to_previous_good_generation() {
        let mut nfs = NfsServer::new(&["/data"], 1 << 20);
        let mut store = CheckpointStore::open(opaque_cfg("/data/ck"), &mut nfs);
        store.save(&mut nfs, b"generation-zero").unwrap();
        store.save(&mut nfs, b"generation-one!").unwrap();
        let (newest_gen, newest_path) = store.committed_paths(&nfs).pop().unwrap();
        assert_eq!(newest_gen, 1);
        nfs.inject(&StorageFaultPlan::new(3).with_event(StorageFault::BitRot {
            path: newest_path,
            from_op: 0,
            byte: 4,
            bit: 6,
        }));
        let restored = store.restore(&mut nfs).unwrap();
        assert_eq!(restored.generation, 0);
        assert_eq!(restored.bytes, b"generation-zero");
        assert_eq!(restored.skipped.len(), 1);
        assert_eq!(restored.skipped[0].0, 1);
        assert_eq!(store.fallbacks(), 1);
        assert_eq!(store.rot_detected(), 1);
        assert!(store
            .flight()
            .dump(None)
            .contains("rollback ckstore_fallback"));
    }

    #[test]
    fn cg_archive_mode_detects_payload_rot_and_header_rot() {
        let mut nfs = NfsServer::new(&["/data"], 1 << 20);
        let mut store = CheckpointStore::open(StoreConfig::new("/data/ck"), &mut nfs);
        let old = small_ckpt(5);
        let new = small_ckpt(9);
        store.save(&mut nfs, &write_checkpoint(&old)).unwrap();
        store.save(&mut nfs, &write_checkpoint(&new)).unwrap();
        // Rot a payload byte of the newest archive (the archive is header
        // + payload; byte len-3 is deep in the payload).
        let (_, newest_path) = store.committed_paths(&nfs).pop().unwrap();
        let len = nfs.stat(&newest_path).unwrap();
        nfs.inject(&StorageFaultPlan::new(3).with_event(StorageFault::BitRot {
            path: newest_path,
            from_op: 0,
            byte: len - 3,
            bit: 1,
        }));
        let (ckpt, restored) = store.restore_cg(&mut nfs).unwrap();
        assert_eq!(restored.generation, 0, "fell back past the rotted archive");
        assert_eq!(
            ckpt.digest(),
            old.digest(),
            "restored state is bit-identical"
        );
        assert!(
            restored.skipped[0].1.contains("checksum"),
            "{:?}",
            restored.skipped
        );
        assert_eq!(store.rot_detected(), 1);

        // Now rot a *header* byte of the surviving generation: the NERSC
        // payload checksum cannot see it, but the digest in the file name
        // does.
        let (g0, path0) = store.committed_paths(&nfs).first().cloned().unwrap();
        assert_eq!(g0, 0);
        nfs.clear_faults();
        nfs.inject(&StorageFaultPlan::new(4).with_event(StorageFault::BitRot {
            path: path0,
            from_op: 0,
            byte: 150, // inside the ASCII header (ITERATIONS/RSQ lines)
            bit: 0,
        }));
        match store.restore(&mut nfs) {
            Err(StoreError::NoGoodGeneration { examined }) => assert_eq!(examined, 2),
            Ok(r) => {
                // If the header flip broke parsing instead, the archive is
                // classified torn — either way it must NOT restore.
                panic!("rotted header restored: gen {}", r.generation)
            }
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn disk_full_sacrifices_oldest_generation_for_space() {
        // Room for two 40-byte generations plus a temp, not three.
        let mut nfs = NfsServer::new(&["/data"], 100);
        let mut store = CheckpointStore::open(
            StoreConfig {
                retain: 3,
                ..opaque_cfg("/data/ck")
            },
            &mut nfs,
        );
        let blob = [7u8; 40];
        store.save(&mut nfs, &blob).unwrap();
        store.save(&mut nfs, &blob).unwrap();
        // Third save: temp write hits real capacity, store frees gen 0.
        store.save(&mut nfs, &blob).unwrap();
        assert_eq!(store.generations(&nfs), vec![1, 2]);
        assert!(store.flight().dump(None).contains("ckstore_gc_for_space"));
        // With a single generation left and no surplus, a hopeless save
        // reports DiskFull instead of looping.
        let mut tiny = NfsServer::new(&["/data"], 32);
        let mut s2 = CheckpointStore::open(opaque_cfg("/data/ck"), &mut tiny);
        s2.save(&mut tiny, &[1u8; 20]).unwrap();
        assert_eq!(
            s2.save(&mut tiny, &[2u8; 20]),
            Err(StoreError::Nfs(NfsError::DiskFull))
        );
    }

    #[test]
    fn leftover_temp_from_crash_is_detected_and_cleared_on_open() {
        let mut nfs = NfsServer::new(&["/data"], 1 << 20);
        let h = nfs.open("/data/ck/tmp.ckpt").unwrap();
        nfs.write(h, b"torn leftover").unwrap();
        let mut store = CheckpointStore::open(opaque_cfg("/data/ck"), &mut nfs);
        assert_eq!(store.torn_detected(), 1);
        assert!(nfs.stat("/data/ck/tmp.ckpt").is_err(), "temp cleared");
        assert!(store.flight().dump(None).contains("ckstore_torn_leftover"));
        // And the store still works.
        store.save(&mut nfs, b"fresh").unwrap();
        assert_eq!(store.restore(&mut nfs).unwrap().bytes, b"fresh");
    }

    #[test]
    fn no_good_generation_is_typed_not_a_panic() {
        let mut nfs = NfsServer::new(&["/data"], 1 << 20);
        let mut store = CheckpointStore::open(opaque_cfg("/data/ck"), &mut nfs);
        assert_eq!(
            store.restore(&mut nfs),
            Err(StoreError::NoGoodGeneration { examined: 0 })
        );
    }

    #[test]
    fn job_vault_blobs_survive_a_restart() {
        let nfs = NfsServer::new(&["/data"], 1 << 20);
        let mut vault = JobVault::new(nfs, "/data/vault");
        let job = JobId(3);
        assert_eq!(vault.load(job).unwrap(), None);
        vault.store(job, b"parked state").unwrap();
        // qdaemon restart: only the disks survive.
        let mut vault = JobVault::new(vault.into_server(), "/data/vault");
        assert_eq!(
            vault.load(job).unwrap().as_deref(),
            Some(&b"parked state"[..])
        );
        vault.discard(job);
        let mut vault = JobVault::new(vault.into_server(), "/data/vault");
        assert_eq!(vault.load(job).unwrap(), None);
    }

    #[test]
    fn job_vault_falls_back_past_rotted_newest_generation() {
        let nfs = NfsServer::new(&["/data"], 1 << 20);
        let mut vault = JobVault::new(nfs, "/data/vault");
        let job = JobId(1);
        vault.store(job, b"generation zero").unwrap();
        vault.store(job, b"generation one!").unwrap();
        let newest = vault.nfs().list("/data/vault/job-000001/").pop().unwrap();
        vault
            .nfs_mut()
            .inject(&StorageFaultPlan::new(11).with_event(StorageFault::BitRot {
                path: newest,
                from_op: 0,
                byte: 7,
                bit: 2,
            }));
        assert_eq!(
            vault.load(job).unwrap().as_deref(),
            Some(&b"generation zero"[..])
        );
        let mut reg = MetricsRegistry::new();
        vault.export_metrics(&mut reg);
        let text = qcdoc_telemetry::prometheus_text(&reg);
        assert!(text.contains("ckstore_fallbacks 1"), "{text}");
        let events = vault.drain_flight();
        assert!(events.iter().any(|e| e.detail == "ckstore_fallback"));
    }

    #[test]
    fn metrics_export_covers_the_ckstore_counters() {
        let mut nfs = NfsServer::new(&["/data"], 1 << 20);
        let mut store = CheckpointStore::open(opaque_cfg("/data/ck"), &mut nfs);
        store.save(&mut nfs, b"m").unwrap();
        let mut reg = MetricsRegistry::new();
        store.export_metrics(&mut reg);
        let text = qcdoc_telemetry::prometheus_text(&reg);
        for name in [
            "ckstore_commits",
            "ckstore_retries",
            "ckstore_generations",
            "ckstore_bytes_committed",
        ] {
            assert!(text.contains(name), "missing {name} in {text}");
        }
    }
}
