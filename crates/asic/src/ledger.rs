//! Operation ledgers: how workload kernels report their work.
//!
//! The paper's performance numbers are set by the balance between floating
//! point work, local memory traffic, and mesh communication. A
//! [`KernelLedger`] records exactly those quantities for one execution of a
//! kernel on one node; the node model (`crate::node`) and the machine-level
//! performance engine (`qcdoc-core`) convert ledgers into cycles.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Per-node operation counts for one kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelLedger {
    /// Fused multiply-add operations (2 flops each — the FPU's peak mode).
    pub fmadds: u64,
    /// Standalone floating-point adds.
    pub fadds: u64,
    /// Standalone floating-point multiplies.
    pub fmuls: u64,
    /// Bytes read from EDRAM (streaming).
    pub edram_read_bytes: u64,
    /// Bytes written to EDRAM (streaming).
    pub edram_write_bytes: u64,
    /// Bytes read from external DDR.
    pub ddr_read_bytes: u64,
    /// Bytes written to external DDR.
    pub ddr_write_bytes: u64,
    /// Bytes sent to each of the 12 mesh directions.
    pub send_bytes: [u64; 12],
    /// Bytes received from each of the 12 mesh directions.
    pub recv_bytes: [u64; 12],
    /// Number of distinct DMA transfers started per direction (each pays
    /// the transfer start latency).
    pub transfers: [u64; 12],
    /// Number of global reductions (each is one 64-bit word over the whole
    /// partition — CG needs two per iteration).
    pub global_sums: u64,
}

impl KernelLedger {
    /// An empty ledger.
    pub fn new() -> KernelLedger {
        KernelLedger::default()
    }

    /// Total floating-point operations (an FMA counts as two).
    pub fn flops(&self) -> u64 {
        2 * self.fmadds + self.fadds + self.fmuls
    }

    /// Total floating-point *instructions* (an FMA is one issue slot).
    pub fn fpu_ops(&self) -> u64 {
        self.fmadds + self.fadds + self.fmuls
    }

    /// Total EDRAM traffic in bytes.
    pub fn edram_bytes(&self) -> u64 {
        self.edram_read_bytes + self.edram_write_bytes
    }

    /// Total DDR traffic in bytes.
    pub fn ddr_bytes(&self) -> u64 {
        self.ddr_read_bytes + self.ddr_write_bytes
    }

    /// Total bytes sent over the mesh.
    pub fn total_send_bytes(&self) -> u64 {
        self.send_bytes.iter().sum()
    }

    /// Total bytes received over the mesh.
    pub fn total_recv_bytes(&self) -> u64 {
        self.recv_bytes.iter().sum()
    }

    /// The largest per-direction send — the critical path when all links
    /// run concurrently (the SCU drives all 24 channels at once, §2.2).
    pub fn max_link_bytes(&self) -> u64 {
        self.send_bytes
            .iter()
            .chain(self.recv_bytes.iter())
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Total number of DMA transfer starts.
    pub fn total_transfers(&self) -> u64 {
        self.transfers.iter().sum()
    }

    /// Scale every count by an integer factor (e.g. iterations).
    pub fn scaled(&self, factor: u64) -> KernelLedger {
        let mut out = *self;
        out.fmadds *= factor;
        out.fadds *= factor;
        out.fmuls *= factor;
        out.edram_read_bytes *= factor;
        out.edram_write_bytes *= factor;
        out.ddr_read_bytes *= factor;
        out.ddr_write_bytes *= factor;
        for i in 0..12 {
            out.send_bytes[i] *= factor;
            out.recv_bytes[i] *= factor;
            out.transfers[i] *= factor;
        }
        out.global_sums *= factor;
        out
    }

    /// Arithmetic intensity: flops per byte of local memory traffic.
    pub fn flops_per_byte(&self) -> f64 {
        let bytes = self.edram_bytes() + self.ddr_bytes();
        if bytes == 0 {
            return f64::INFINITY;
        }
        self.flops() as f64 / bytes as f64
    }
}

impl Add for KernelLedger {
    type Output = KernelLedger;
    fn add(self, rhs: KernelLedger) -> KernelLedger {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for KernelLedger {
    fn add_assign(&mut self, rhs: KernelLedger) {
        self.fmadds += rhs.fmadds;
        self.fadds += rhs.fadds;
        self.fmuls += rhs.fmuls;
        self.edram_read_bytes += rhs.edram_read_bytes;
        self.edram_write_bytes += rhs.edram_write_bytes;
        self.ddr_read_bytes += rhs.ddr_read_bytes;
        self.ddr_write_bytes += rhs.ddr_write_bytes;
        for i in 0..12 {
            self.send_bytes[i] += rhs.send_bytes[i];
            self.recv_bytes[i] += rhs.recv_bytes[i];
            self.transfers[i] += rhs.transfers[i];
        }
        self.global_sums += rhs.global_sums;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_counts_two_flops_one_issue() {
        let l = KernelLedger {
            fmadds: 10,
            fadds: 3,
            fmuls: 2,
            ..Default::default()
        };
        assert_eq!(l.flops(), 25);
        assert_eq!(l.fpu_ops(), 15);
    }

    #[test]
    fn scaling_multiplies_everything() {
        let mut l = KernelLedger {
            fmadds: 2,
            global_sums: 1,
            ..Default::default()
        };
        l.send_bytes[3] = 100;
        l.transfers[3] = 1;
        let s = l.scaled(5);
        assert_eq!(s.fmadds, 10);
        assert_eq!(s.send_bytes[3], 500);
        assert_eq!(s.transfers[3], 5);
        assert_eq!(s.global_sums, 5);
    }

    #[test]
    fn addition_accumulates() {
        let mut a = KernelLedger {
            edram_read_bytes: 64,
            ..Default::default()
        };
        a.recv_bytes[0] = 8;
        let mut b = KernelLedger {
            edram_read_bytes: 36,
            ..Default::default()
        };
        b.recv_bytes[0] = 4;
        let c = a + b;
        assert_eq!(c.edram_read_bytes, 100);
        assert_eq!(c.recv_bytes[0], 12);
    }

    #[test]
    fn max_link_bytes_takes_worst_direction() {
        let mut l = KernelLedger::default();
        l.send_bytes[2] = 100;
        l.recv_bytes[7] = 250;
        assert_eq!(l.max_link_bytes(), 250);
    }

    #[test]
    fn arithmetic_intensity() {
        let l = KernelLedger {
            fmadds: 8,
            edram_read_bytes: 8,
            ..Default::default()
        };
        assert_eq!(l.flops_per_byte(), 2.0);
        let pure = KernelLedger {
            fmadds: 8,
            ..Default::default()
        };
        assert!(pure.flops_per_byte().is_infinite());
    }
}
