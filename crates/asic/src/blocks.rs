//! The ASIC block inventory — a structural reproduction of Figure 1.
//!
//! Figure 1 of the paper shows the QCDOC ASIC as a set of blocks around the
//! Processor Local Bus, with the custom-designed blocks shaded and the IBM
//! standard system-on-a-chip macros unshaded. This module records that
//! inventory as data and renders an ASCII version of the diagram, which is
//! what `examples/asic_tour.rs` prints.

use serde::{Deserialize, Serialize};

/// Who designed a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// Standard IBM system-on-a-chip macro (unshaded in Figure 1).
    IbmMacro,
    /// Custom VHDL designed by the QCDOC collaboration (shaded in Figure 1).
    Custom,
}

/// One block of the ASIC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Short name used in the diagram.
    pub name: &'static str,
    /// Designer.
    pub provenance: Provenance,
    /// One-line datasheet entry.
    pub description: &'static str,
}

/// The full block inventory of the QCDOC ASIC (Figure 1 plus §2.1–2.3).
pub fn inventory() -> Vec<Block> {
    vec![
        Block {
            name: "PPC 440",
            provenance: Provenance::IbmMacro,
            description: "32-bit Book-E integer core, 32 kB I-cache + 32 kB D-cache",
        },
        Block {
            name: "FPU64",
            provenance: Provenance::IbmMacro,
            description: "64-bit IEEE FPU, 1 multiply + 1 add per cycle (1 Gflops @ 500 MHz)",
        },
        Block {
            name: "PLB",
            provenance: Provenance::IbmMacro,
            description: "Processor Local Bus interconnecting the major subsystems",
        },
        Block {
            name: "EDRAM 4MB",
            provenance: Provenance::IbmMacro,
            description: "4 MB embedded DRAM, 1024-bit rows + ECC",
        },
        Block {
            name: "EDRAM prefetch ctl",
            provenance: Provenance::Custom,
            description: "two-stream prefetching controller; 128-bit words to the D-cache at \
                          full core speed (8 GB/s), designed at IBM Yorktown Heights",
        },
        Block {
            name: "DDR ctl",
            provenance: Provenance::IbmMacro,
            description: "external DDR SDRAM controller, 2.6 GB/s, up to 2 GB per node",
        },
        Block {
            name: "SCU",
            provenance: Provenance::Custom,
            description: "Serial Communications Unit: 24 concurrent uni-directional channels, \
                          DMA with block-strided descriptors, supervisor + partition interrupts, \
                          pass-through global sums/broadcasts",
        },
        Block {
            name: "HSSL x24",
            provenance: Provenance::IbmMacro,
            description: "High Speed Serial Link macros, bit-serial at the core clock; \
                          self-training byte alignment",
        },
        Block {
            name: "Ethernet 100Mb",
            provenance: Provenance::IbmMacro,
            description: "standard 100 Mbit Ethernet controller for boot, I/O and NFS",
        },
        Block {
            name: "Ethernet/JTAG",
            provenance: Provenance::Custom,
            description: "UDP-to-JTAG bridge needing no software; loads boot code into the \
                          I-cache after power-on (no PROMs on QCDOC)",
        },
        Block {
            name: "Global tree",
            provenance: Provenance::Custom,
            description: "partition-interrupt forwarding clocked by the ~40 MHz global clock",
        },
        Block {
            name: "Boot/debug",
            provenance: Provenance::Custom,
            description: "RISCWatch-compatible debug access path via Ethernet/JTAG",
        },
    ]
}

/// Render the Figure-1-style ASCII block diagram. Custom blocks are marked
/// with `#` borders (the "shaded" blocks of the paper's figure), IBM macros
/// with plain borders.
pub fn render_diagram() -> String {
    let inv = inventory();
    let mut out = String::new();
    out.push_str("                    QCDOC ASIC (Figure 1)\n");
    out.push_str("  [#...#] = custom QCDOC logic       [-...-] = IBM SoC macro\n\n");
    // Row of core-side blocks, the bus, then peripherals.
    let core_side = ["PPC 440", "FPU64", "EDRAM prefetch ctl", "EDRAM 4MB"];
    let bus = "PLB";
    let periph = [
        "DDR ctl",
        "SCU",
        "HSSL x24",
        "Ethernet 100Mb",
        "Ethernet/JTAG",
        "Global tree",
        "Boot/debug",
    ];
    let boxed = |name: &str| -> String {
        let b = inv
            .iter()
            .find(|b| b.name == name)
            .expect("block in inventory");
        let pad = format!(" {} ", b.name);
        match b.provenance {
            Provenance::Custom => format!("[#{pad}#]"),
            Provenance::IbmMacro => format!("[-{pad}-]"),
        }
    };
    for name in core_side {
        out.push_str("    ");
        out.push_str(&boxed(name));
        out.push('\n');
        out.push_str("        |\n");
    }
    out.push_str(&format!("  ====[ {bus} ]==== (processor local bus)\n"));
    for name in periph {
        out.push_str("        |\n");
        out.push_str("    ");
        out.push_str(&boxed(name));
        out.push('\n');
    }
    out
}

/// Render the per-block datasheet table.
pub fn render_datasheet() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<20} {:<10} description\n", "block", "origin"));
    out.push_str(&format!("{:-<20} {:-<10} {:-<60}\n", "", "", ""));
    for b in inventory() {
        let origin = match b.provenance {
            Provenance::IbmMacro => "IBM",
            Provenance::Custom => "custom",
        };
        out.push_str(&format!(
            "{:<20} {:<10} {}\n",
            b.name, origin, b.description
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_figure_1_split() {
        let inv = inventory();
        let custom: Vec<_> = inv
            .iter()
            .filter(|b| b.provenance == Provenance::Custom)
            .collect();
        let ibm: Vec<_> = inv
            .iter()
            .filter(|b| b.provenance == Provenance::IbmMacro)
            .collect();
        // The paper's shaded (custom) set: SCU, EDRAM prefetch controller,
        // Ethernet/JTAG, global tree, boot/debug glue.
        assert!(custom.iter().any(|b| b.name == "SCU"));
        assert!(custom.iter().any(|b| b.name == "EDRAM prefetch ctl"));
        assert!(custom.iter().any(|b| b.name == "Ethernet/JTAG"));
        // The IBM macro set: core, FPU, PLB, EDRAM array, DDR, HSSL, Ethernet.
        for name in [
            "PPC 440",
            "FPU64",
            "PLB",
            "EDRAM 4MB",
            "DDR ctl",
            "HSSL x24",
        ] {
            assert!(
                ibm.iter().any(|b| b.name == name),
                "{name} should be an IBM macro"
            );
        }
    }

    #[test]
    fn block_names_unique() {
        let inv = inventory();
        let mut names: Vec<_> = inv.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), inv.len());
    }

    #[test]
    fn diagram_mentions_every_block() {
        let d = render_diagram();
        for b in inventory() {
            assert!(d.contains(b.name), "diagram missing {}", b.name);
        }
        // Custom blocks get the shaded marker.
        assert!(d.contains("[# SCU #]"));
        assert!(d.contains("[- FPU64 -]"));
    }

    #[test]
    fn datasheet_lists_every_block() {
        let d = render_datasheet();
        for b in inventory() {
            assert!(d.contains(b.name));
        }
    }
}
