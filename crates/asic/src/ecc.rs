//! SEC-DED (72,64) Hamming code over node-memory words.
//!
//! The paper's node stores its lattice data in "4 Mbytes of embedded DRAM
//! (EDRAM) … 1024-bit rows + ECC" (§2.1), and the external DDR SDRAM
//! carries the industry-standard 72/64 check-bit sidecar. This module is
//! that code: an *extended* Hamming code with seven positional parity bits
//! plus one overall-parity bit, giving single-error correction and
//! double-error detection (SEC-DED) over each 64-bit word.
//!
//! Layout: the 72-bit codeword places parity bit `p` at position `2^p`
//! (positions 1, 2, 4, 8, 16, 32, 64), the overall parity at position 0,
//! and the 64 data bits at the remaining positions in ascending order.
//! The syndrome of a single flipped bit is its codeword position; a double
//! flip leaves the overall parity even with a nonzero syndrome, which is
//! exactly the uncorrectable (machine-check) signature.
//!
//! The all-zero word encodes to all-zero check bits, so zero-initialised
//! (or lazily unallocated) storage is a valid codeword without any
//! initialisation pass — the property that lets the scrubber skip rows no
//! one has touched.

/// Codeword position of each data bit: the 64 non-power-of-two positions
/// of 1..72 in ascending order.
const DATA_POS: [u8; 64] = {
    let mut t = [0u8; 64];
    let mut pos = 1usize;
    let mut i = 0;
    while i < 64 {
        if pos & (pos - 1) != 0 {
            t[i] = pos as u8;
            i += 1;
        }
        pos += 1;
    }
    t
};

/// Data-bit masks feeding each of the seven positional parities: bit `i`
/// of `PARITY_MASKS[p]` is set when data bit `i` sits at a codeword
/// position with bit `p` set.
const PARITY_MASKS: [u64; 7] = {
    let mut m = [0u64; 7];
    let mut i = 0;
    while i < 64 {
        let pos = DATA_POS[i] as usize;
        let mut p = 0;
        while p < 7 {
            if pos & (1 << p) != 0 {
                m[p] |= 1 << i;
            }
            p += 1;
        }
        i += 1;
    }
    m
};

/// Inverse of [`DATA_POS`]: data-bit index at each codeword position, or
/// -1 for the parity positions (0 and the powers of two).
const POS_DATA: [i8; 72] = {
    let mut t = [-1i8; 72];
    let mut i = 0;
    while i < 64 {
        t[DATA_POS[i] as usize] = i as i8;
        i += 1;
    }
    t
};

/// Compute the eight check bits for a data word: bits 0..7 are the
/// positional parities, bit 7 makes the parity of the whole 72-bit
/// codeword even.
pub fn encode(data: u64) -> u8 {
    let mut check = 0u8;
    for (p, m) in PARITY_MASKS.iter().enumerate() {
        check |= (((data & m).count_ones() & 1) as u8) << p;
    }
    let overall = ((data.count_ones() + u32::from(check).count_ones()) & 1) as u8;
    check | (overall << 7)
}

/// What the decoder concluded about a stored `(data, check)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccVerdict {
    /// The codeword is intact.
    Clean,
    /// One data bit had flipped; the payload is the corrected word.
    CorrectedData(u64),
    /// One check bit had flipped (the data is intact); the payload is the
    /// corrected check byte.
    CorrectedCheck(u8),
    /// Two or more bits flipped: detected, uncorrectable — a machine
    /// check.
    DoubleError,
}

/// Decode a stored `(data, check)` pair.
pub fn decode(data: u64, check: u8) -> EccVerdict {
    let mut syndrome = 0usize;
    for (p, m) in PARITY_MASKS.iter().enumerate() {
        let recomputed = ((data & m).count_ones() & 1) as u8;
        let stored = (check >> p) & 1;
        syndrome |= usize::from(recomputed ^ stored) << p;
    }
    let overall = (data.count_ones() + u32::from(check).count_ones()) & 1;
    match (syndrome, overall) {
        (0, 0) => EccVerdict::Clean,
        // Overall parity disagrees alone: the overall bit itself flipped.
        (0, 1) => EccVerdict::CorrectedCheck(check ^ 0x80),
        (s, 1) if s < 72 => {
            if s & (s - 1) == 0 {
                // Power-of-two position: a positional parity bit flipped.
                EccVerdict::CorrectedCheck(check ^ (1 << s.trailing_zeros()))
            } else {
                EccVerdict::CorrectedData(data ^ (1u64 << POS_DATA[s]))
            }
        }
        // Syndrome outside the codeword (≥ 3 flips) or a nonzero syndrome
        // with even overall parity (2 flips): detected, uncorrectable.
        _ => EccVerdict::DoubleError,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The 72-bit codeword as (data, check) with codeword bit `pos`
    /// flipped.
    fn flip(data: u64, check: u8, pos: usize) -> (u64, u8) {
        if pos == 0 {
            (data, check ^ 0x80)
        } else if pos & (pos - 1) == 0 {
            (data, check ^ (1 << pos.trailing_zeros()))
        } else {
            (data ^ (1u64 << POS_DATA[pos]), check)
        }
    }

    fn words() -> Vec<u64> {
        vec![
            0,
            u64::MAX,
            0xDEAD_BEEF_CAFE_F00D,
            1,
            1 << 63,
            0x5555_5555_5555_5555,
            0xAAAA_AAAA_AAAA_AAAA,
            0x0123_4567_89AB_CDEF,
        ]
    }

    #[test]
    fn zero_word_is_a_zero_codeword() {
        assert_eq!(encode(0), 0);
        assert_eq!(decode(0, 0), EccVerdict::Clean);
    }

    #[test]
    fn clean_words_decode_clean() {
        for w in words() {
            assert_eq!(decode(w, encode(w)), EccVerdict::Clean, "word {w:#x}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_corrected() {
        // Exhaustive over all 72 codeword positions for each sample word.
        for w in words() {
            let check = encode(w);
            for pos in 0..72 {
                let (d, c) = flip(w, check, pos);
                match decode(d, c) {
                    EccVerdict::Clean => panic!("flip at {pos} of {w:#x} went unseen"),
                    EccVerdict::CorrectedData(fixed) => {
                        assert_eq!(fixed, w, "mis-correction at {pos} of {w:#x}")
                    }
                    EccVerdict::CorrectedCheck(fixed) => {
                        assert_eq!(fixed, check, "check mis-correction at {pos}");
                        assert_eq!(d, w, "data must be intact at parity position {pos}");
                    }
                    EccVerdict::DoubleError => {
                        panic!("single flip at {pos} of {w:#x} declared uncorrectable")
                    }
                }
            }
        }
    }

    #[test]
    fn every_double_bit_flip_is_detected() {
        // Exhaustive over all C(72,2) position pairs for each sample word:
        // never Clean, never a correction that fabricates wrong data.
        for w in words() {
            let check = encode(w);
            for a in 0..72 {
                for b in (a + 1)..72 {
                    let (d1, c1) = flip(w, check, a);
                    let (d, c) = flip(d1, c1, b);
                    assert_eq!(
                        decode(d, c),
                        EccVerdict::DoubleError,
                        "double flip ({a},{b}) of {w:#x} not flagged"
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn random_words_roundtrip_and_correct(w in any::<u64>(), pos in 0usize..72) {
            let check = encode(w);
            prop_assert_eq!(decode(w, check), EccVerdict::Clean);
            let (d, c) = flip(w, check, pos);
            match decode(d, c) {
                EccVerdict::CorrectedData(fixed) => prop_assert_eq!(fixed, w),
                EccVerdict::CorrectedCheck(fixed) => prop_assert_eq!(fixed, check),
                other => prop_assert!(false, "unexpected verdict {:?}", other),
            }
        }

        #[test]
        fn random_double_flips_raise_machine_checks(
            w in any::<u64>(),
            a in 0usize..72,
            b in 0usize..72,
        ) {
            prop_assume!(a != b);
            let check = encode(w);
            let (d1, c1) = flip(w, check, a);
            let (d, c) = flip(d1, c1, b);
            prop_assert_eq!(decode(d, c), EccVerdict::DoubleError);
        }
    }
}
