//! The PPC 440 core cost model.
//!
//! §2.1: "The processor in the QCDOC ASIC is an IBM PPC 440, a 32 bit
//! integer unit compliant with IBM's Book-E specifications, and it has a 64
//! bit, IEEE floating point unit attached. The floating point unit is
//! capable of one multiply and one add per cycle, giving a peak speed of 1
//! Gflops for a 500 MHz clock speed."
//!
//! We model the core at the issue level: the FPU retires one floating-point
//! instruction per cycle (an FMA counts as one instruction but two flops),
//! and non-FPU work in a hand-tuned kernel (address generation, loop
//! control, pipeline bubbles at loop boundaries) is folded into a
//! calibratable *issue overhead* per FPU instruction. The paper's hand-tuned
//! assembly kernels reach 40–46.5% of peak *including* memory and network
//! time, which bounds the pure-issue overhead to a modest factor.

use crate::clock::{Clock, Cycles};
use crate::ledger::KernelLedger;
use serde::{Deserialize, Serialize};

/// Cost-model parameters for the core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Extra issue cycles per FPU instruction for integer/branch overhead in
    /// tuned assembly kernels (0.0 = perfect dual issue).
    pub issue_overhead: f64,
    /// Pipeline refill cost charged per loop of a kernel (branch mispredict
    /// + FPU pipeline drain at iteration boundaries).
    pub loop_overhead_cycles: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        // Calibrated so that the paper's tuned Dirac kernels are
        // memory-bound rather than issue-bound at 4^4 local volume: a small
        // per-instruction overhead representing unpaired loads and loop code
        // that cannot dual-issue with the FPU.
        CoreConfig {
            issue_overhead: 0.18,
            loop_overhead_cycles: 20,
        }
    }
}

/// The PPC 440 core model.
#[derive(Debug, Clone, Copy)]
pub struct Ppc440 {
    config: CoreConfig,
    clock: Clock,
}

impl Ppc440 {
    /// A core at the given clock.
    pub fn new(config: CoreConfig, clock: Clock) -> Ppc440 {
        Ppc440 { config, clock }
    }

    /// The core clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Peak floating-point rate at this clock (1 Gflops at 500 MHz).
    pub fn peak_flops(&self) -> f64 {
        self.clock.peak_flops()
    }

    /// Issue cycles for the floating-point work in a ledger.
    pub fn fpu_cycles(&self, ledger: &KernelLedger) -> Cycles {
        let ops = ledger.fpu_ops() as f64;
        Cycles((ops * (1.0 + self.config.issue_overhead)).ceil() as u64)
    }

    /// Issue cycles for a kernel executed as `loops` hardware loops.
    pub fn kernel_cycles(&self, ledger: &KernelLedger, loops: u64) -> Cycles {
        self.fpu_cycles(ledger) + Cycles(self.config.loop_overhead_cycles * loops)
    }

    /// The fraction of peak the FPU could reach on this ledger if memory
    /// and network were free: `flops / (2 × issue_cycles)`.
    pub fn issue_efficiency(&self, ledger: &KernelLedger) -> f64 {
        let cycles = self.fpu_cycles(ledger).count();
        if cycles == 0 {
            return 0.0;
        }
        ledger.flops() as f64 / (2.0 * cycles as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Ppc440 {
        Ppc440::new(CoreConfig::default(), Clock::DESIGN)
    }

    #[test]
    fn peak_is_one_gflops_at_design_clock() {
        assert_eq!(core().peak_flops(), 1.0e9);
    }

    #[test]
    fn pure_fma_stream_beats_mixed_ops() {
        // The same flop count as FMAs issues in half the cycles of
        // adds+muls.
        let fmas = KernelLedger {
            fmadds: 1000,
            ..Default::default()
        };
        let mixed = KernelLedger {
            fadds: 1000,
            fmuls: 1000,
            ..Default::default()
        };
        assert_eq!(fmas.flops(), mixed.flops());
        let c = core();
        assert!(c.fpu_cycles(&fmas) < c.fpu_cycles(&mixed));
        assert!(c.issue_efficiency(&fmas) > c.issue_efficiency(&mixed));
    }

    #[test]
    fn zero_overhead_core_reaches_peak_on_fmas() {
        let ideal = Ppc440::new(
            CoreConfig {
                issue_overhead: 0.0,
                loop_overhead_cycles: 0,
            },
            Clock::DESIGN,
        );
        let l = KernelLedger {
            fmadds: 1_000,
            ..Default::default()
        };
        assert_eq!(ideal.fpu_cycles(&l), Cycles(1_000));
        assert!((ideal.issue_efficiency(&l) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loop_overhead_charged_per_loop() {
        let c = core();
        let l = KernelLedger {
            fmadds: 100,
            ..Default::default()
        };
        let one = c.kernel_cycles(&l, 1);
        let ten = c.kernel_cycles(&l, 10);
        assert_eq!(
            ten - one,
            Cycles(9 * CoreConfig::default().loop_overhead_cycles)
        );
    }

    #[test]
    fn issue_efficiency_bounded() {
        let l = KernelLedger {
            fmadds: 500,
            fadds: 100,
            ..Default::default()
        };
        let e = core().issue_efficiency(&l);
        assert!(e > 0.0 && e <= 1.0);
    }
}
