//! The Processor Local Bus (PLB) arbitration model.
//!
//! §2.1: "IBM provides a Processor Local Bus (PLB) for connecting the
//! major components of a system-on-a-chip design … For the QCDOC ASIC, we
//! have retained the PLB bus for interconnection of the major subsystems"
//! — with the crucial modification that D-cache traffic goes through the
//! prefetching EDRAM controller first and only reaches the PLB when the
//! access leaves the EDRAM address space.
//!
//! The PLB is shared by the DDR controller, the SCU DMA engines, and the
//! two Ethernet interfaces, so this model answers one question the
//! analytic kernel model needs: how much does concurrent DMA traffic
//! stretch a DDR-resident kernel? Fixed-priority arbitration (the ASIC
//! gives the SCU priority so the mesh never starves) with per-grant
//! bookkeeping.

use crate::clock::Cycles;
use serde::{Deserialize, Serialize};

/// Bus masters in request-priority order (highest first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlbMaster {
    /// SCU DMA engines — priority, so links never stall on the bus.
    ScuDma,
    /// CPU data-side accesses that miss the EDRAM window.
    Cpu,
    /// DDR controller refresh/maintenance traffic.
    DdrMaintenance,
    /// Ethernet controllers (boot, NFS).
    Ethernet,
}

impl PlbMaster {
    /// All masters, highest priority first.
    pub const PRIORITY: [PlbMaster; 4] = [
        PlbMaster::ScuDma,
        PlbMaster::Cpu,
        PlbMaster::DdrMaintenance,
        PlbMaster::Ethernet,
    ];

    fn rank(self) -> usize {
        Self::PRIORITY
            .iter()
            .position(|&m| m == self)
            .expect("master in table")
    }
}

/// PLB parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlbConfig {
    /// Bus width in bytes per beat (128-bit PLB).
    pub bytes_per_beat: u64,
    /// Arbitration latency per grant, cycles.
    pub arbitration_cycles: u64,
    /// Maximum beats per grant (burst length) before re-arbitration.
    pub max_burst_beats: u64,
}

impl Default for PlbConfig {
    fn default() -> Self {
        PlbConfig {
            bytes_per_beat: 16,
            arbitration_cycles: 3,
            max_burst_beats: 8,
        }
    }
}

/// One master's pending request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Request {
    master: PlbMaster,
    bytes_left: u64,
}

/// The arbited bus: masters post requests; `run_until_idle` plays out the
/// grants and reports per-master completion times.
#[derive(Debug, Clone)]
pub struct Plb {
    config: PlbConfig,
    queue: Vec<Request>,
    grants: u64,
    busy_cycles: u64,
}

impl Plb {
    /// An idle bus.
    pub fn new(config: PlbConfig) -> Plb {
        Plb {
            config,
            queue: Vec::new(),
            grants: 0,
            busy_cycles: 0,
        }
    }

    /// Post a transfer request.
    pub fn request(&mut self, master: PlbMaster, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.queue.push(Request {
            master,
            bytes_left: bytes,
        });
    }

    /// Total grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Cycles the bus has been busy.
    pub fn busy_cycles(&self) -> Cycles {
        Cycles(self.busy_cycles)
    }

    /// Play out all queued requests under fixed-priority, bounded-burst
    /// arbitration. Returns, per initial request (in post order), the
    /// cycle at which it completed.
    pub fn run_until_idle(&mut self) -> Vec<(PlbMaster, Cycles)> {
        let mut completions = Vec::new();
        let mut now = self.busy_cycles;
        while !self.queue.is_empty() {
            // Highest-priority requester wins; FIFO within a priority.
            let idx = self
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(i, r)| (r.master.rank(), *i))
                .map(|(i, _)| i)
                .expect("non-empty queue");
            let burst_bytes = self.config.max_burst_beats * self.config.bytes_per_beat;
            let r = &mut self.queue[idx];
            let moved = r.bytes_left.min(burst_bytes);
            let beats = moved.div_ceil(self.config.bytes_per_beat);
            now += self.config.arbitration_cycles + beats;
            self.grants += 1;
            r.bytes_left -= moved;
            if r.bytes_left == 0 {
                completions.push((r.master, Cycles(now)));
                self.queue.remove(idx);
            }
        }
        self.busy_cycles = now;
        completions
    }

    /// Effective bandwidth of a lone master in bytes/cycle.
    pub fn solo_bytes_per_cycle(&self) -> f64 {
        let burst = self.config.max_burst_beats * self.config.bytes_per_beat;
        burst as f64 / (self.config.arbitration_cycles + self.config.max_burst_beats) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_master_gets_burst_rate() {
        let mut plb = Plb::new(PlbConfig::default());
        plb.request(PlbMaster::Cpu, 1024);
        let done = plb.run_until_idle();
        assert_eq!(done.len(), 1);
        // 1024 B = 8 bursts of 128 B; each burst 3 + 8 cycles.
        assert_eq!(done[0].1, Cycles(8 * 11));
        assert!(
            (Plb::new(PlbConfig::default()).solo_bytes_per_cycle() - 128.0 / 11.0).abs() < 1e-12
        );
    }

    #[test]
    fn scu_dma_preempts_cpu_between_bursts() {
        let mut plb = Plb::new(PlbConfig::default());
        plb.request(PlbMaster::Cpu, 1024);
        plb.request(PlbMaster::ScuDma, 128);
        let done = plb.run_until_idle();
        // The SCU's single burst completes first despite being posted
        // second — the mesh never waits behind bulk CPU traffic.
        assert_eq!(done[0].0, PlbMaster::ScuDma);
        assert_eq!(done[0].1, Cycles(11));
        assert_eq!(done[1].0, PlbMaster::Cpu);
    }

    #[test]
    fn contention_stretches_completion() {
        let mut solo = Plb::new(PlbConfig::default());
        solo.request(PlbMaster::Cpu, 512);
        let t_solo = solo.run_until_idle()[0].1;
        let mut shared = Plb::new(PlbConfig::default());
        shared.request(PlbMaster::Cpu, 512);
        shared.request(PlbMaster::Ethernet, 512);
        let done = shared.run_until_idle();
        let t_cpu = done.iter().find(|(m, _)| *m == PlbMaster::Cpu).unwrap().1;
        let t_eth = done
            .iter()
            .find(|(m, _)| *m == PlbMaster::Ethernet)
            .unwrap()
            .1;
        // CPU outranks Ethernet, so it is unaffected; Ethernet waits.
        assert_eq!(t_cpu, t_solo);
        assert!(t_eth > t_cpu);
    }

    #[test]
    fn fifo_within_equal_priority() {
        let mut plb = Plb::new(PlbConfig::default());
        plb.request(PlbMaster::Ethernet, 128);
        plb.request(PlbMaster::Ethernet, 128);
        let done = plb.run_until_idle();
        assert!(done[0].1 < done[1].1);
    }

    #[test]
    fn zero_byte_request_is_ignored() {
        let mut plb = Plb::new(PlbConfig::default());
        plb.request(PlbMaster::Cpu, 0);
        assert!(plb.run_until_idle().is_empty());
        assert_eq!(plb.grants(), 0);
    }

    #[test]
    fn bus_time_accumulates_across_batches() {
        let mut plb = Plb::new(PlbConfig::default());
        plb.request(PlbMaster::Cpu, 128);
        plb.run_until_idle();
        let t1 = plb.busy_cycles();
        plb.request(PlbMaster::Cpu, 128);
        plb.run_until_idle();
        assert_eq!(plb.busy_cycles(), t1 + t1);
    }
}
