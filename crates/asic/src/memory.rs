//! Functional node memory: the EDRAM and DDR address spaces.
//!
//! The SCU DMA engines have *direct* access to node memory — "data is not
//! copied to a different memory location before it is sent" (§2.2) — so the
//! functional execution engine needs real storage the DMA descriptors can
//! address. Words are 64 bits, the unit of both the FPU and the mesh
//! network's normal data transfers.
//!
//! Address map (bytes):
//!
//! | region | base          | size                    |
//! |--------|---------------|-------------------------|
//! | EDRAM  | `0x0000_0000` | 4 MB (on-chip)          |
//! | DDR    | `0x1000_0000` | configurable, ≤ 2 GB    |
//!
//! Both regions are allocated lazily — EDRAM in 64 kB chunks, DDR in 1 MB
//! chunks — so the sharded engine can hold all 12,288 functional nodes of
//! the full machine in host memory at once: a node pays only for the
//! footprint it actually touches, not for its 4 MB EDRAM address space.
//!
//! Every stored word carries a SEC-DED (72,64) check byte (§2.1: EDRAM
//! rows "+ ECC"; the DDR DIMMs are the industry 72/64 parts). Reads decode
//! through [`crate::ecc`]: a single flipped bit is corrected in place and
//! counted, a double flip latches a *machine check* — the access still
//! completes (the DMA engines stream; the exception is imprecise) but the
//! node is condemned through [`MemStats::machine_checks`] and
//! [`NodeMemory::machine_check`], which the health machinery treats like a
//! node casualty. A deterministic [`NodeMemory::scrub`] pass walks the
//! written footprint the way the hardware scrubber walks refresh rows, so
//! soft errors parked in rarely-read words are still found and classified.

use crate::ecc::{self, EccVerdict};
use serde::{Deserialize, Serialize};

/// Which physical memory an address falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemRegion {
    /// The 4 MB on-chip embedded DRAM.
    Edram,
    /// The external DDR SDRAM DIMM.
    Ddr,
}

/// Base byte address of the EDRAM region.
pub const EDRAM_BASE: u64 = 0x0000_0000;
/// Size of the on-chip EDRAM: 4 MB (§2.1).
pub const EDRAM_SIZE: u64 = 4 * 1024 * 1024;
/// Base byte address of the DDR region.
pub const DDR_BASE: u64 = 0x1000_0000;
/// Maximum external DDR size: 2 GB (§2.1: "up to 2 GBytes of memory per
/// node can be used").
pub const DDR_MAX_SIZE: u64 = 2 * 1024 * 1024 * 1024;

/// Word size in bytes (64-bit words everywhere: FPU and mesh transfers).
pub const WORD_BYTES: u64 = 8;

/// Storage width of floating-point data resident in node memory. The FPU
/// always computes in 64-bit registers; fields may be *stored* at 32 bits
/// to halve their footprint and streaming traffic — the basis of §4's
/// single-precision benchmark figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FloatWidth {
    /// 32-bit IEEE storage.
    Single,
    /// 64-bit IEEE storage.
    Double,
}

impl FloatWidth {
    /// Bytes per real number at this width.
    pub const fn bytes(self) -> u64 {
        match self {
            FloatWidth::Single => 4,
            FloatWidth::Double => 8,
        }
    }

    /// Bytes per complex number at this width.
    pub const fn complex_bytes(self) -> u64 {
        2 * self.bytes()
    }
}

/// Bytes occupied by `complexes` complex numbers stored at `width`.
pub const fn complex_footprint(complexes: u64, width: FloatWidth) -> u64 {
    complexes * width.complex_bytes()
}

/// Whether a working set of `bytes` fits the 4 MB on-chip EDRAM — the
/// cliff between the 16 B/cycle prefetched port and the ~3× slower DDR
/// path (§4's drop to ~30% of peak for large local volumes). Storing
/// fields at [`FloatWidth::Single`] halves the footprint, so working sets
/// that spill in double precision can stay on chip.
pub const fn fits_edram(bytes: u64) -> bool {
    bytes <= EDRAM_SIZE
}

const DDR_CHUNK_WORDS: usize = 128 * 1024; // 1 MB of u64 words
const EDRAM_CHUNK_WORDS: usize = 8 * 1024; // 64 kB of u64 words

/// One lazily-allocated 64 kB slab of EDRAM: data words, ECC check bytes,
/// and the touched bitmap the scrubber walks (one bit per word, set when a
/// word has ever been written or corrupted).
#[derive(Debug)]
struct EdramChunk {
    data: Box<[u64]>,
    check: Box<[u8]>,
    touched: Box<[u64]>,
}

impl EdramChunk {
    fn new() -> EdramChunk {
        EdramChunk {
            data: vec![0; EDRAM_CHUNK_WORDS].into_boxed_slice(),
            check: vec![0; EDRAM_CHUNK_WORDS].into_boxed_slice(),
            touched: vec![0; EDRAM_CHUNK_WORDS / 64].into_boxed_slice(),
        }
    }
}

/// Running access statistics, split by region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// 64-bit words read from EDRAM.
    pub edram_reads: u64,
    /// 64-bit words written to EDRAM.
    pub edram_writes: u64,
    /// 64-bit words read from DDR.
    pub ddr_reads: u64,
    /// 64-bit words written to DDR.
    pub ddr_writes: u64,
    /// Single-bit soft errors the SEC-DED code corrected (on read or
    /// during a scrub).
    pub ecc_corrected: u64,
    /// Uncorrectable (2+-bit) words encountered: each one latched a
    /// machine check.
    pub machine_checks: u64,
}

impl MemStats {
    /// Total bytes moved to or from EDRAM.
    pub fn edram_bytes(&self) -> u64 {
        (self.edram_reads + self.edram_writes) * WORD_BYTES
    }

    /// Total bytes moved to or from DDR.
    pub fn ddr_bytes(&self) -> u64 {
        (self.ddr_reads + self.ddr_writes) * WORD_BYTES
    }
}

/// Errors raised by functional memory accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Address is outside both regions.
    Unmapped {
        /// The offending byte address.
        addr: u64,
    },
    /// Address is not 8-byte aligned.
    Unaligned {
        /// The offending byte address.
        addr: u64,
    },
    /// Address is in the DDR region but beyond the installed DIMM.
    BeyondDimm {
        /// The offending byte address.
        addr: u64,
        /// Installed DDR bytes.
        installed: u64,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemError::Unaligned { addr } => write!(f, "unaligned word access at {addr:#x}"),
            MemError::BeyondDimm { addr, installed } => {
                write!(
                    f,
                    "address {addr:#x} beyond installed DDR ({installed} bytes)"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Outcome of one [`NodeMemory::scrub`] pass over the written footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Words the scrubber decoded (the written/corrupted footprint —
    /// untouched all-zero rows are valid codewords by construction).
    pub scanned_words: u64,
    /// Single-bit errors corrected in place by this pass.
    pub corrected: u64,
    /// Uncorrectable words found by this pass (machine checks latched).
    pub machine_checks: u64,
    /// Modelled cost of the pass: one EDRAM port beat (16 bytes) per two
    /// words plus an 11-cycle page miss per 128-byte row touched.
    pub cycles: u64,
}

/// The functional memory of one node.
#[derive(Debug)]
pub struct NodeMemory {
    edram_chunks: Vec<Option<EdramChunk>>,
    ddr_chunks: Vec<Option<Box<[u64]>>>,
    ddr_check: Vec<Option<Box<[u8]>>>,
    ddr_size: u64,
    stats: MemStats,
    machine_check: Option<u64>,
}

impl NodeMemory {
    /// A node with the given DDR DIMM size in bytes (the 4096-node machine
    /// mixes 128 MB and 256 MB DIMMs, §4).
    pub fn new(ddr_bytes: u64) -> NodeMemory {
        assert!(ddr_bytes <= DDR_MAX_SIZE, "DDR DIMM larger than 2 GB");
        assert_eq!(
            ddr_bytes % (DDR_CHUNK_WORDS as u64 * WORD_BYTES),
            0,
            "DDR size must be a multiple of 1 MB"
        );
        let chunks = (ddr_bytes / (DDR_CHUNK_WORDS as u64 * WORD_BYTES)) as usize;
        let edram_chunks = (EDRAM_SIZE / WORD_BYTES) as usize / EDRAM_CHUNK_WORDS;
        NodeMemory {
            edram_chunks: (0..edram_chunks).map(|_| None).collect(),
            ddr_chunks: (0..chunks).map(|_| None).collect(),
            ddr_check: (0..chunks).map(|_| None).collect(),
            ddr_size: ddr_bytes,
            stats: MemStats::default(),
            machine_check: None,
        }
    }

    /// A node with the paper's common 128 MB DIMM.
    pub fn with_128mb_dimm() -> NodeMemory {
        NodeMemory::new(128 * 1024 * 1024)
    }

    /// Classify a byte address.
    pub fn region_of(addr: u64) -> Result<MemRegion, MemError> {
        if addr < EDRAM_BASE + EDRAM_SIZE {
            Ok(MemRegion::Edram)
        } else if (DDR_BASE..DDR_BASE + DDR_MAX_SIZE).contains(&addr) {
            Ok(MemRegion::Ddr)
        } else {
            Err(MemError::Unmapped { addr })
        }
    }

    /// Installed DDR bytes.
    pub fn ddr_size(&self) -> u64 {
        self.ddr_size
    }

    /// Access statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Reset access statistics.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    fn check(&self, addr: u64) -> Result<(MemRegion, usize), MemError> {
        if !addr.is_multiple_of(WORD_BYTES) {
            return Err(MemError::Unaligned { addr });
        }
        match Self::region_of(addr)? {
            MemRegion::Edram => Ok((
                MemRegion::Edram,
                ((addr - EDRAM_BASE) / WORD_BYTES) as usize,
            )),
            MemRegion::Ddr => {
                let off = addr - DDR_BASE;
                if off >= self.ddr_size {
                    return Err(MemError::BeyondDimm {
                        addr,
                        installed: self.ddr_size,
                    });
                }
                Ok((MemRegion::Ddr, (off / WORD_BYTES) as usize))
            }
        }
    }

    /// Decode a stored `(data, check)` pair, correcting or latching a
    /// machine check. Returns `(value, fixed)`: the value the access
    /// observes and the `(data, check)` to store back, if any.
    fn resolve(&mut self, addr: u64, data: u64, check: u8) -> (u64, Option<(u64, u8)>) {
        match ecc::decode(data, check) {
            EccVerdict::Clean => (data, None),
            EccVerdict::CorrectedData(fixed) => {
                self.stats.ecc_corrected += 1;
                (fixed, Some((fixed, check)))
            }
            EccVerdict::CorrectedCheck(fixed) => {
                self.stats.ecc_corrected += 1;
                (data, Some((data, fixed)))
            }
            EccVerdict::DoubleError => {
                // Imprecise machine check: the streaming access completes
                // with the raw (corrupt) word while the fault is latched
                // for the health readout — no software on this node can
                // un-latch it.
                self.stats.machine_checks += 1;
                self.machine_check.get_or_insert(addr);
                (data, None)
            }
        }
    }

    /// Read one 64-bit word through the ECC decoder.
    pub fn read_word(&mut self, addr: u64) -> Result<u64, MemError> {
        let (region, idx) = self.check(addr)?;
        match region {
            MemRegion::Edram => self.stats.edram_reads += 1,
            MemRegion::Ddr => self.stats.ddr_reads += 1,
        }
        let (data, check) = self.peek_raw(region, idx);
        let (value, fixed) = self.resolve(addr, data, check);
        if let Some((d, k)) = fixed {
            self.store_raw(region, idx, d, k);
        }
        Ok(value)
    }

    /// Read the stored `(data, check)` pair without decoding or statistics
    /// (never-written words of unallocated chunks read as the all-zero
    /// codeword).
    fn peek_raw(&self, region: MemRegion, idx: usize) -> (u64, u8) {
        match region {
            MemRegion::Edram => {
                let (chunk, within) = (idx / EDRAM_CHUNK_WORDS, idx % EDRAM_CHUNK_WORDS);
                match &self.edram_chunks[chunk] {
                    Some(c) => (c.data[within], c.check[within]),
                    None => (0, 0),
                }
            }
            MemRegion::Ddr => {
                let (chunk, within) = (idx / DDR_CHUNK_WORDS, idx % DDR_CHUNK_WORDS);
                match (&self.ddr_chunks[chunk], &self.ddr_check[chunk]) {
                    (Some(c), Some(k)) => (c[within], k[within]),
                    _ => (0, 0),
                }
            }
        }
    }

    /// Store `(data, check)` without touching statistics (the ECC
    /// write-back and injection path).
    fn store_raw(&mut self, region: MemRegion, idx: usize, data: u64, check: u8) {
        match region {
            MemRegion::Edram => {
                let (chunk, within) = (idx / EDRAM_CHUNK_WORDS, idx % EDRAM_CHUNK_WORDS);
                let c = self.edram_chunks[chunk].get_or_insert_with(EdramChunk::new);
                c.data[within] = data;
                c.check[within] = check;
                c.touched[within / 64] |= 1 << (within % 64);
            }
            MemRegion::Ddr => {
                let (chunk, within) = (idx / DDR_CHUNK_WORDS, idx % DDR_CHUNK_WORDS);
                let c = self.ddr_chunks[chunk]
                    .get_or_insert_with(|| vec![0u64; DDR_CHUNK_WORDS].into_boxed_slice());
                c[within] = data;
                let k = self.ddr_check[chunk]
                    .get_or_insert_with(|| vec![0u8; DDR_CHUNK_WORDS].into_boxed_slice());
                k[within] = check;
            }
        }
    }

    /// Write one 64-bit word (check bits regenerated).
    pub fn write_word(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        let (region, idx) = self.check(addr)?;
        match region {
            MemRegion::Edram => self.stats.edram_writes += 1,
            MemRegion::Ddr => self.stats.ddr_writes += 1,
        }
        self.store_raw(region, idx, value, ecc::encode(value));
        Ok(())
    }

    /// Flip bit `bit` (0..64) of the *stored* word at `addr` — an injected
    /// EDRAM or DDR soft error. The check byte is deliberately left alone
    /// (a soft error upsets a cell, it does not re-encode the row), so the
    /// next ECC-decoded read or scrub sees the corruption: one flipped bit
    /// is corrected, two in the same word become a machine check. Returns
    /// the raw stored word after the flip.
    pub fn flip_bit(&mut self, addr: u64, bit: u32) -> Result<u64, MemError> {
        assert!(bit < 64, "bit index {bit} outside a 64-bit word");
        let (region, idx) = self.check(addr)?;
        let (data, check) = self.peek_raw(region, idx);
        let flipped = data ^ (1u64 << bit);
        self.store_raw(region, idx, flipped, check);
        Ok(flipped)
    }

    /// The latched machine check, if any: the address of the first
    /// uncorrectable word encountered. Sticky for the node's lifetime.
    pub fn machine_check(&self) -> Option<u64> {
        self.machine_check
    }

    /// One deterministic background-scrubber pass (§2.1's ECC made
    /// proactive): decode every word of the written footprint, correcting
    /// single-bit upsets in place and latching machine checks for
    /// uncorrectable words. Untouched rows are all-zero codewords and are
    /// skipped wholesale, so the pass prices out by data actually resident.
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        // EDRAM: walk each allocated chunk's touch bitmap 64 words at a
        // time (unallocated chunks were never written or corrupted).
        for chunk in 0..self.edram_chunks.len() {
            let groups = match &self.edram_chunks[chunk] {
                Some(c) => c.touched.len(),
                None => continue,
            };
            for group in 0..groups {
                let mask = match &self.edram_chunks[chunk] {
                    Some(c) => c.touched[group],
                    None => unreachable!("scrub never deallocates a chunk"),
                };
                if mask == 0 {
                    continue;
                }
                for bit in 0..64 {
                    if mask & (1 << bit) == 0 {
                        continue;
                    }
                    let idx = chunk * EDRAM_CHUNK_WORDS + group * 64 + bit;
                    let addr = EDRAM_BASE + idx as u64 * WORD_BYTES;
                    self.scrub_word(MemRegion::Edram, idx, addr, &mut report);
                }
            }
        }
        // DDR: walk every allocated chunk in full.
        for chunk in 0..self.ddr_chunks.len() {
            if self.ddr_chunks[chunk].is_none() {
                continue;
            }
            for within in 0..DDR_CHUNK_WORDS {
                let idx = chunk * DDR_CHUNK_WORDS + within;
                let addr = DDR_BASE + idx as u64 * WORD_BYTES;
                self.scrub_word(MemRegion::Ddr, idx, addr, &mut report);
            }
        }
        // EDRAM-port pricing: 16 bytes (two words) per cycle, plus an
        // 11-cycle page miss per 128-byte (16-word) row.
        report.cycles = report.scanned_words.div_ceil(2) + report.scanned_words.div_ceil(16) * 11;
        report
    }

    fn scrub_word(&mut self, region: MemRegion, idx: usize, addr: u64, report: &mut ScrubReport) {
        let (data, check) = self.peek_raw(region, idx);
        report.scanned_words += 1;
        match ecc::decode(data, check) {
            EccVerdict::Clean => {}
            EccVerdict::CorrectedData(fixed) => {
                self.stats.ecc_corrected += 1;
                report.corrected += 1;
                self.store_raw(region, idx, fixed, check);
            }
            EccVerdict::CorrectedCheck(fixed) => {
                self.stats.ecc_corrected += 1;
                report.corrected += 1;
                self.store_raw(region, idx, data, fixed);
            }
            EccVerdict::DoubleError => {
                self.stats.machine_checks += 1;
                report.machine_checks += 1;
                self.machine_check.get_or_insert(addr);
            }
        }
    }

    /// Read a 64-bit float stored at `addr`.
    pub fn read_f64(&mut self, addr: u64) -> Result<f64, MemError> {
        Ok(f64::from_bits(self.read_word(addr)?))
    }

    /// Write a 64-bit float at `addr`.
    pub fn write_f64(&mut self, addr: u64, value: f64) -> Result<(), MemError> {
        self.write_word(addr, value.to_bits())
    }

    /// Read `count` consecutive words starting at `addr`.
    pub fn read_block(&mut self, addr: u64, count: usize) -> Result<Vec<u64>, MemError> {
        (0..count)
            .map(|i| self.read_word(addr + i as u64 * WORD_BYTES))
            .collect()
    }

    /// Write consecutive words starting at `addr`.
    pub fn write_block(&mut self, addr: u64, words: &[u64]) -> Result<(), MemError> {
        for (i, &w) in words.iter().enumerate() {
            self.write_word(addr + i as u64 * WORD_BYTES, w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edram_read_write_roundtrip() {
        let mut m = NodeMemory::with_128mb_dimm();
        m.write_word(0x100, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read_word(0x100).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn ddr_is_lazily_allocated_and_zeroed() {
        let mut m = NodeMemory::with_128mb_dimm();
        assert_eq!(m.read_word(DDR_BASE + 0x10_0000).unwrap(), 0);
        m.write_word(DDR_BASE + 0x10_0000, 7).unwrap();
        assert_eq!(m.read_word(DDR_BASE + 0x10_0000).unwrap(), 7);
        // A different chunk is still zero.
        assert_eq!(m.read_word(DDR_BASE).unwrap(), 0);
    }

    #[test]
    fn stats_split_by_region() {
        let mut m = NodeMemory::with_128mb_dimm();
        m.write_word(0x0, 1).unwrap();
        m.read_word(0x0).unwrap();
        m.read_word(0x0).unwrap();
        m.write_word(DDR_BASE, 2).unwrap();
        let s = m.stats();
        assert_eq!(s.edram_writes, 1);
        assert_eq!(s.edram_reads, 2);
        assert_eq!(s.ddr_writes, 1);
        assert_eq!(s.ddr_reads, 0);
        assert_eq!(s.edram_bytes(), 24);
        assert_eq!(s.ddr_bytes(), 8);
    }

    #[test]
    fn unaligned_access_rejected() {
        let mut m = NodeMemory::with_128mb_dimm();
        assert_eq!(m.read_word(0x101), Err(MemError::Unaligned { addr: 0x101 }));
    }

    #[test]
    fn unmapped_and_beyond_dimm_rejected() {
        let mut m = NodeMemory::with_128mb_dimm();
        assert!(matches!(
            m.read_word(0x0800_0000),
            Err(MemError::Unmapped { .. })
        ));
        let beyond = DDR_BASE + 128 * 1024 * 1024;
        assert!(matches!(
            m.read_word(beyond),
            Err(MemError::BeyondDimm { .. })
        ));
    }

    #[test]
    fn edram_is_exactly_4mb() {
        let mut m = NodeMemory::with_128mb_dimm();
        let last = EDRAM_SIZE - WORD_BYTES;
        m.write_word(last, 42).unwrap();
        assert_eq!(m.read_word(last).unwrap(), 42);
        // One word past EDRAM is a hole before DDR_BASE.
        assert!(matches!(
            m.read_word(EDRAM_SIZE),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = NodeMemory::with_128mb_dimm();
        m.write_f64(0x80, -3.25).unwrap();
        assert_eq!(m.read_f64(0x80).unwrap(), -3.25);
    }

    #[test]
    fn block_roundtrip() {
        let mut m = NodeMemory::with_128mb_dimm();
        let words = vec![1, 2, 3, 4, 5];
        m.write_block(0x1000, &words).unwrap();
        assert_eq!(m.read_block(0x1000, 5).unwrap(), words);
    }

    #[test]
    fn single_width_halves_the_footprint() {
        assert_eq!(FloatWidth::Single.complex_bytes(), 8);
        assert_eq!(FloatWidth::Double.complex_bytes(), 16);
        let n = 1000;
        assert_eq!(
            2 * complex_footprint(n, FloatWidth::Single),
            complex_footprint(n, FloatWidth::Double)
        );
    }

    #[test]
    fn edram_fit_cliff_moves_with_width() {
        // A working set that spills at double precision fits at single:
        // 300k complex numbers = 4.8 MB double, 2.4 MB single.
        let complexes = 300_000;
        assert!(!fits_edram(complex_footprint(
            complexes,
            FloatWidth::Double
        )));
        assert!(fits_edram(complex_footprint(complexes, FloatWidth::Single)));
    }

    #[test]
    fn single_bit_flip_is_corrected_on_read() {
        let mut m = NodeMemory::with_128mb_dimm();
        m.write_word(0x200, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        m.flip_bit(0x200, 17).unwrap();
        // The read observes the *original* value and heals storage.
        assert_eq!(m.read_word(0x200).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.stats().ecc_corrected, 1);
        assert_eq!(m.stats().machine_checks, 0);
        assert_eq!(m.machine_check(), None);
        // Healed in place: the next read corrects nothing.
        assert_eq!(m.read_word(0x200).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.stats().ecc_corrected, 1);
    }

    #[test]
    fn double_bit_flip_latches_a_machine_check() {
        let mut m = NodeMemory::with_128mb_dimm();
        m.write_word(0x300, 0x0123_4567_89AB_CDEF).unwrap();
        m.flip_bit(0x300, 3).unwrap();
        m.flip_bit(0x300, 40).unwrap();
        // Imprecise exception: the access completes (raw data), but the
        // machine check is latched and sticky.
        let corrupt = 0x0123_4567_89AB_CDEF ^ (1 << 3) ^ (1 << 40);
        assert_eq!(m.read_word(0x300).unwrap(), corrupt);
        assert_eq!(m.stats().machine_checks, 1);
        assert_eq!(m.stats().ecc_corrected, 0);
        assert_eq!(m.machine_check(), Some(0x300));
    }

    #[test]
    fn ddr_soft_errors_are_covered_too() {
        let mut m = NodeMemory::with_128mb_dimm();
        let addr = DDR_BASE + 0x4_0000;
        m.write_word(addr, 0x5555_5555_5555_5555).unwrap();
        m.flip_bit(addr, 0).unwrap();
        assert_eq!(m.read_word(addr).unwrap(), 0x5555_5555_5555_5555);
        assert_eq!(m.stats().ecc_corrected, 1);
        // A flip into a never-written (unallocated) DDR word corrupts an
        // all-zero codeword — still corrected.
        let cold = DDR_BASE + 0x30_0000;
        m.flip_bit(cold, 9).unwrap();
        assert_eq!(m.read_word(cold).unwrap(), 0);
        assert_eq!(m.stats().ecc_corrected, 2);
    }

    #[test]
    fn scrub_finds_parked_errors_without_reads() {
        let mut m = NodeMemory::with_128mb_dimm();
        m.write_word(0x400, 0xAAAA_AAAA_AAAA_AAAA).unwrap();
        m.write_word(0x408, 7).unwrap();
        m.flip_bit(0x400, 5).unwrap(); // correctable, never read
        m.flip_bit(0x408, 1).unwrap();
        m.flip_bit(0x408, 2).unwrap(); // uncorrectable, never read
        let report = m.scrub();
        assert_eq!(report.corrected, 1);
        assert_eq!(report.machine_checks, 1);
        assert_eq!(m.machine_check(), Some(0x408));
        assert_eq!(m.read_word(0x400).unwrap(), 0xAAAA_AAAA_AAAA_AAAA);
        // A second pass over healed storage finds nothing new (the
        // uncorrectable word is still uncorrectable and recounted).
        let again = m.scrub();
        assert_eq!(again.corrected, 0);
        assert_eq!(again.machine_checks, 1);
    }

    #[test]
    fn scrub_skips_untouched_rows_and_prices_the_footprint() {
        let mut m = NodeMemory::with_128mb_dimm();
        let report = m.scrub();
        assert_eq!(report, ScrubReport::default());
        // Two touched EDRAM words: 1 port beat + one 11-cycle row miss.
        m.write_word(0x0, 1).unwrap();
        m.write_word(0x8, 2).unwrap();
        let report = m.scrub();
        assert_eq!(report.scanned_words, 2);
        assert_eq!(report.cycles, 12);
        // Scrubbing is not an access: read/write stats are untouched.
        assert_eq!(m.stats().edram_reads, 0);
    }

    #[test]
    fn region_classification() {
        assert_eq!(NodeMemory::region_of(0).unwrap(), MemRegion::Edram);
        assert_eq!(NodeMemory::region_of(DDR_BASE).unwrap(), MemRegion::Ddr);
        assert!(NodeMemory::region_of(EDRAM_SIZE).is_err());
    }
}
