//! Functional node memory: the EDRAM and DDR address spaces.
//!
//! The SCU DMA engines have *direct* access to node memory — "data is not
//! copied to a different memory location before it is sent" (§2.2) — so the
//! functional execution engine needs real storage the DMA descriptors can
//! address. Words are 64 bits, the unit of both the FPU and the mesh
//! network's normal data transfers.
//!
//! Address map (bytes):
//!
//! | region | base          | size                    |
//! |--------|---------------|-------------------------|
//! | EDRAM  | `0x0000_0000` | 4 MB (on-chip)          |
//! | DDR    | `0x1000_0000` | configurable, ≤ 2 GB    |
//!
//! DDR storage is allocated lazily in 1 MB chunks so thousands of functional
//! nodes can coexist without reserving gigabytes.

use serde::{Deserialize, Serialize};

/// Which physical memory an address falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemRegion {
    /// The 4 MB on-chip embedded DRAM.
    Edram,
    /// The external DDR SDRAM DIMM.
    Ddr,
}

/// Base byte address of the EDRAM region.
pub const EDRAM_BASE: u64 = 0x0000_0000;
/// Size of the on-chip EDRAM: 4 MB (§2.1).
pub const EDRAM_SIZE: u64 = 4 * 1024 * 1024;
/// Base byte address of the DDR region.
pub const DDR_BASE: u64 = 0x1000_0000;
/// Maximum external DDR size: 2 GB (§2.1: "up to 2 GBytes of memory per
/// node can be used").
pub const DDR_MAX_SIZE: u64 = 2 * 1024 * 1024 * 1024;

/// Word size in bytes (64-bit words everywhere: FPU and mesh transfers).
pub const WORD_BYTES: u64 = 8;

/// Storage width of floating-point data resident in node memory. The FPU
/// always computes in 64-bit registers; fields may be *stored* at 32 bits
/// to halve their footprint and streaming traffic — the basis of §4's
/// single-precision benchmark figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FloatWidth {
    /// 32-bit IEEE storage.
    Single,
    /// 64-bit IEEE storage.
    Double,
}

impl FloatWidth {
    /// Bytes per real number at this width.
    pub const fn bytes(self) -> u64 {
        match self {
            FloatWidth::Single => 4,
            FloatWidth::Double => 8,
        }
    }

    /// Bytes per complex number at this width.
    pub const fn complex_bytes(self) -> u64 {
        2 * self.bytes()
    }
}

/// Bytes occupied by `complexes` complex numbers stored at `width`.
pub const fn complex_footprint(complexes: u64, width: FloatWidth) -> u64 {
    complexes * width.complex_bytes()
}

/// Whether a working set of `bytes` fits the 4 MB on-chip EDRAM — the
/// cliff between the 16 B/cycle prefetched port and the ~3× slower DDR
/// path (§4's drop to ~30% of peak for large local volumes). Storing
/// fields at [`FloatWidth::Single`] halves the footprint, so working sets
/// that spill in double precision can stay on chip.
pub const fn fits_edram(bytes: u64) -> bool {
    bytes <= EDRAM_SIZE
}

const DDR_CHUNK_WORDS: usize = 128 * 1024; // 1 MB of u64 words

/// Running access statistics, split by region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// 64-bit words read from EDRAM.
    pub edram_reads: u64,
    /// 64-bit words written to EDRAM.
    pub edram_writes: u64,
    /// 64-bit words read from DDR.
    pub ddr_reads: u64,
    /// 64-bit words written to DDR.
    pub ddr_writes: u64,
}

impl MemStats {
    /// Total bytes moved to or from EDRAM.
    pub fn edram_bytes(&self) -> u64 {
        (self.edram_reads + self.edram_writes) * WORD_BYTES
    }

    /// Total bytes moved to or from DDR.
    pub fn ddr_bytes(&self) -> u64 {
        (self.ddr_reads + self.ddr_writes) * WORD_BYTES
    }
}

/// Errors raised by functional memory accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Address is outside both regions.
    Unmapped {
        /// The offending byte address.
        addr: u64,
    },
    /// Address is not 8-byte aligned.
    Unaligned {
        /// The offending byte address.
        addr: u64,
    },
    /// Address is in the DDR region but beyond the installed DIMM.
    BeyondDimm {
        /// The offending byte address.
        addr: u64,
        /// Installed DDR bytes.
        installed: u64,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            MemError::Unaligned { addr } => write!(f, "unaligned word access at {addr:#x}"),
            MemError::BeyondDimm { addr, installed } => {
                write!(
                    f,
                    "address {addr:#x} beyond installed DDR ({installed} bytes)"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

/// The functional memory of one node.
#[derive(Debug)]
pub struct NodeMemory {
    edram: Vec<u64>,
    ddr_chunks: Vec<Option<Box<[u64]>>>,
    ddr_size: u64,
    stats: MemStats,
}

impl NodeMemory {
    /// A node with the given DDR DIMM size in bytes (the 4096-node machine
    /// mixes 128 MB and 256 MB DIMMs, §4).
    pub fn new(ddr_bytes: u64) -> NodeMemory {
        assert!(ddr_bytes <= DDR_MAX_SIZE, "DDR DIMM larger than 2 GB");
        assert_eq!(
            ddr_bytes % (DDR_CHUNK_WORDS as u64 * WORD_BYTES),
            0,
            "DDR size must be a multiple of 1 MB"
        );
        let chunks = (ddr_bytes / (DDR_CHUNK_WORDS as u64 * WORD_BYTES)) as usize;
        NodeMemory {
            edram: vec![0; (EDRAM_SIZE / WORD_BYTES) as usize],
            ddr_chunks: (0..chunks).map(|_| None).collect(),
            ddr_size: ddr_bytes,
            stats: MemStats::default(),
        }
    }

    /// A node with the paper's common 128 MB DIMM.
    pub fn with_128mb_dimm() -> NodeMemory {
        NodeMemory::new(128 * 1024 * 1024)
    }

    /// Classify a byte address.
    pub fn region_of(addr: u64) -> Result<MemRegion, MemError> {
        if addr < EDRAM_BASE + EDRAM_SIZE {
            Ok(MemRegion::Edram)
        } else if (DDR_BASE..DDR_BASE + DDR_MAX_SIZE).contains(&addr) {
            Ok(MemRegion::Ddr)
        } else {
            Err(MemError::Unmapped { addr })
        }
    }

    /// Installed DDR bytes.
    pub fn ddr_size(&self) -> u64 {
        self.ddr_size
    }

    /// Access statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Reset access statistics.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    fn check(&self, addr: u64) -> Result<(MemRegion, usize), MemError> {
        if !addr.is_multiple_of(WORD_BYTES) {
            return Err(MemError::Unaligned { addr });
        }
        match Self::region_of(addr)? {
            MemRegion::Edram => Ok((
                MemRegion::Edram,
                ((addr - EDRAM_BASE) / WORD_BYTES) as usize,
            )),
            MemRegion::Ddr => {
                let off = addr - DDR_BASE;
                if off >= self.ddr_size {
                    return Err(MemError::BeyondDimm {
                        addr,
                        installed: self.ddr_size,
                    });
                }
                Ok((MemRegion::Ddr, (off / WORD_BYTES) as usize))
            }
        }
    }

    /// Read one 64-bit word.
    pub fn read_word(&mut self, addr: u64) -> Result<u64, MemError> {
        let (region, idx) = self.check(addr)?;
        Ok(match region {
            MemRegion::Edram => {
                self.stats.edram_reads += 1;
                self.edram[idx]
            }
            MemRegion::Ddr => {
                self.stats.ddr_reads += 1;
                let (chunk, within) = (idx / DDR_CHUNK_WORDS, idx % DDR_CHUNK_WORDS);
                match &self.ddr_chunks[chunk] {
                    Some(c) => c[within],
                    None => 0,
                }
            }
        })
    }

    /// Write one 64-bit word.
    pub fn write_word(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        let (region, idx) = self.check(addr)?;
        match region {
            MemRegion::Edram => {
                self.stats.edram_writes += 1;
                self.edram[idx] = value;
            }
            MemRegion::Ddr => {
                self.stats.ddr_writes += 1;
                let (chunk, within) = (idx / DDR_CHUNK_WORDS, idx % DDR_CHUNK_WORDS);
                let c = self.ddr_chunks[chunk]
                    .get_or_insert_with(|| vec![0u64; DDR_CHUNK_WORDS].into_boxed_slice());
                c[within] = value;
            }
        }
        Ok(())
    }

    /// Flip bit `bit` (0..64) of the word at `addr` — an injected EDRAM or
    /// DDR soft error. Returns the word value after the flip.
    pub fn flip_bit(&mut self, addr: u64, bit: u32) -> Result<u64, MemError> {
        assert!(bit < 64, "bit index {bit} outside a 64-bit word");
        let flipped = self.read_word(addr)? ^ (1u64 << bit);
        self.write_word(addr, flipped)?;
        Ok(flipped)
    }

    /// Read a 64-bit float stored at `addr`.
    pub fn read_f64(&mut self, addr: u64) -> Result<f64, MemError> {
        Ok(f64::from_bits(self.read_word(addr)?))
    }

    /// Write a 64-bit float at `addr`.
    pub fn write_f64(&mut self, addr: u64, value: f64) -> Result<(), MemError> {
        self.write_word(addr, value.to_bits())
    }

    /// Read `count` consecutive words starting at `addr`.
    pub fn read_block(&mut self, addr: u64, count: usize) -> Result<Vec<u64>, MemError> {
        (0..count)
            .map(|i| self.read_word(addr + i as u64 * WORD_BYTES))
            .collect()
    }

    /// Write consecutive words starting at `addr`.
    pub fn write_block(&mut self, addr: u64, words: &[u64]) -> Result<(), MemError> {
        for (i, &w) in words.iter().enumerate() {
            self.write_word(addr + i as u64 * WORD_BYTES, w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edram_read_write_roundtrip() {
        let mut m = NodeMemory::with_128mb_dimm();
        m.write_word(0x100, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read_word(0x100).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn ddr_is_lazily_allocated_and_zeroed() {
        let mut m = NodeMemory::with_128mb_dimm();
        assert_eq!(m.read_word(DDR_BASE + 0x10_0000).unwrap(), 0);
        m.write_word(DDR_BASE + 0x10_0000, 7).unwrap();
        assert_eq!(m.read_word(DDR_BASE + 0x10_0000).unwrap(), 7);
        // A different chunk is still zero.
        assert_eq!(m.read_word(DDR_BASE).unwrap(), 0);
    }

    #[test]
    fn stats_split_by_region() {
        let mut m = NodeMemory::with_128mb_dimm();
        m.write_word(0x0, 1).unwrap();
        m.read_word(0x0).unwrap();
        m.read_word(0x0).unwrap();
        m.write_word(DDR_BASE, 2).unwrap();
        let s = m.stats();
        assert_eq!(s.edram_writes, 1);
        assert_eq!(s.edram_reads, 2);
        assert_eq!(s.ddr_writes, 1);
        assert_eq!(s.ddr_reads, 0);
        assert_eq!(s.edram_bytes(), 24);
        assert_eq!(s.ddr_bytes(), 8);
    }

    #[test]
    fn unaligned_access_rejected() {
        let mut m = NodeMemory::with_128mb_dimm();
        assert_eq!(m.read_word(0x101), Err(MemError::Unaligned { addr: 0x101 }));
    }

    #[test]
    fn unmapped_and_beyond_dimm_rejected() {
        let mut m = NodeMemory::with_128mb_dimm();
        assert!(matches!(
            m.read_word(0x0800_0000),
            Err(MemError::Unmapped { .. })
        ));
        let beyond = DDR_BASE + 128 * 1024 * 1024;
        assert!(matches!(
            m.read_word(beyond),
            Err(MemError::BeyondDimm { .. })
        ));
    }

    #[test]
    fn edram_is_exactly_4mb() {
        let mut m = NodeMemory::with_128mb_dimm();
        let last = EDRAM_SIZE - WORD_BYTES;
        m.write_word(last, 42).unwrap();
        assert_eq!(m.read_word(last).unwrap(), 42);
        // One word past EDRAM is a hole before DDR_BASE.
        assert!(matches!(
            m.read_word(EDRAM_SIZE),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = NodeMemory::with_128mb_dimm();
        m.write_f64(0x80, -3.25).unwrap();
        assert_eq!(m.read_f64(0x80).unwrap(), -3.25);
    }

    #[test]
    fn block_roundtrip() {
        let mut m = NodeMemory::with_128mb_dimm();
        let words = vec![1, 2, 3, 4, 5];
        m.write_block(0x1000, &words).unwrap();
        assert_eq!(m.read_block(0x1000, 5).unwrap(), words);
    }

    #[test]
    fn single_width_halves_the_footprint() {
        assert_eq!(FloatWidth::Single.complex_bytes(), 8);
        assert_eq!(FloatWidth::Double.complex_bytes(), 16);
        let n = 1000;
        assert_eq!(
            2 * complex_footprint(n, FloatWidth::Single),
            complex_footprint(n, FloatWidth::Double)
        );
    }

    #[test]
    fn edram_fit_cliff_moves_with_width() {
        // A working set that spills at double precision fits at single:
        // 300k complex numbers = 4.8 MB double, 2.4 MB single.
        let complexes = 300_000;
        assert!(!fits_edram(complex_footprint(
            complexes,
            FloatWidth::Double
        )));
        assert!(fits_edram(complex_footprint(complexes, FloatWidth::Single)));
    }

    #[test]
    fn region_classification() {
        assert_eq!(NodeMemory::region_of(0).unwrap(), MemRegion::Edram);
        assert_eq!(NodeMemory::region_of(DDR_BASE).unwrap(), MemRegion::Ddr);
        assert!(NodeMemory::region_of(EDRAM_SIZE).is_err());
    }
}
