//! The external DDR SDRAM controller timing model.
//!
//! §2.1: "Also attached to the PLB bus is a controller for external DDR
//! SDRAM, with a bandwidth of 2.6 GBytes/second. Up to 2 GBytes of memory
//! per node can be used." At the 500 MHz design clock that is 5.2
//! bytes/cycle — three times slower than the EDRAM port, which is why
//! efficiency falls to ~30% of peak once the working set spills out of
//! EDRAM (§4).
//!
//! §4 also records that moving from buffered to cheaper *unbuffered* DIMMs
//! initially limited reliable operation to 360 MHz until the memory
//! controller was retuned for 420 MHz; we model the DIMM flavour as a
//! constraint on the node clock.

use crate::clock::{Clock, Cycles};
use serde::{Deserialize, Serialize};

/// Peak DDR bandwidth in bytes per second (§2.1).
pub const DDR_BYTES_PER_SEC: f64 = 2.6e9;

/// The DIMM flavour installed on a daughterboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DimmKind {
    /// Registered/buffered DIMMs — used for the 128-node benchmarks at
    /// 450 MHz.
    Buffered,
    /// Unbuffered DIMMs — substantially cheaper; reliable at 360 MHz, and at
    /// 420 MHz after memory-controller tuning (§4).
    Unbuffered {
        /// Whether the ASIC memory controller has been retuned for the
        /// unbuffered parts.
        tuned: bool,
    },
}

impl DimmKind {
    /// Maximum reliable processor clock with this DIMM flavour.
    pub fn max_clock(self) -> Clock {
        match self {
            DimmKind::Buffered => Clock::BENCH_450,
            DimmKind::Unbuffered { tuned: false } => Clock::SAFE_360,
            DimmKind::Unbuffered { tuned: true } => Clock::TUNED_420,
        }
    }
}

/// Configuration of the DDR controller timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdrConfig {
    /// Peak bandwidth, bytes/second.
    pub bytes_per_sec: f64,
    /// First-word access latency in nanoseconds (CAS + controller + PLB).
    pub access_latency_ns: f64,
    /// Installed DIMM flavour.
    pub dimm: DimmKind,
}

impl Default for DdrConfig {
    fn default() -> Self {
        DdrConfig {
            bytes_per_sec: DDR_BYTES_PER_SEC,
            access_latency_ns: 60.0,
            dimm: DimmKind::Buffered,
        }
    }
}

/// The DDR controller timing model.
#[derive(Debug, Clone)]
pub struct DdrController {
    config: DdrConfig,
    clock: Clock,
    bursts: u64,
}

impl DdrController {
    /// A controller at the given node clock.
    pub fn new(config: DdrConfig, clock: Clock) -> DdrController {
        assert!(
            clock.mhz() <= config.dimm.max_clock().mhz(),
            "clock {clock} exceeds the reliable limit {} for this DIMM flavour",
            config.dimm.max_clock()
        );
        DdrController {
            config,
            clock,
            bursts: 0,
        }
    }

    /// Peak bytes transferred per processor cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.config.bytes_per_sec / self.clock.hz() as f64
    }

    /// Number of burst accesses issued so far.
    pub fn bursts(&self) -> u64 {
        self.bursts
    }

    /// Cycles to move a burst of `bytes` (first-word latency + streaming).
    pub fn access(&mut self, bytes: u64) -> Cycles {
        self.bursts += 1;
        let latency = self.clock.ns_to_cycles(self.config.access_latency_ns);
        let stream = Cycles((bytes as f64 / self.bytes_per_cycle()).ceil() as u64);
        latency + stream
    }

    /// Cycles for a long streaming transfer where the first-word latency is
    /// fully amortised — the closed-form rate used by the analytic kernel
    /// model.
    pub fn streaming_cycles(&self, bytes: u64) -> Cycles {
        Cycles((bytes as f64 / self.bytes_per_cycle()).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_matches_paper() {
        let c = DdrController::new(DdrConfig::default(), Clock::BENCH_450);
        // 2.6 GB/s at 450 MHz.
        assert!((c.bytes_per_cycle() - 2.6e9 / 450.0e6).abs() < 1e-9);
    }

    #[test]
    fn ddr_is_three_times_slower_than_edram_at_design_clock() {
        let cfg = DdrConfig {
            dimm: DimmKind::Buffered,
            ..Default::default()
        };
        // Evaluate the ratio at 450 (buffered limit); the paper's 3x figure
        // is quoted at the 500 MHz design point, same ratio of rates.
        let ddr = DdrController::new(cfg, Clock::BENCH_450);
        let edram_rate = crate::edram::PORT_BYTES_PER_CYCLE as f64;
        let ratio = edram_rate / ddr.bytes_per_cycle();
        assert!(
            ratio > 2.5 && ratio < 3.5,
            "EDRAM/DDR ratio {ratio} out of band"
        );
    }

    #[test]
    fn burst_includes_latency_streaming_amortises() {
        let mut c = DdrController::new(DdrConfig::default(), Clock::BENCH_450);
        let small = c.access(8);
        let big = c.access(64 * 1024);
        // Per-byte cost of the big burst must be far lower.
        let small_per_byte = small.count() as f64 / 8.0;
        let big_per_byte = big.count() as f64 / 65536.0;
        assert!(small_per_byte > 5.0 * big_per_byte);
        assert_eq!(c.bursts(), 2);
    }

    #[test]
    fn dimm_flavours_limit_clock() {
        assert_eq!(DimmKind::Buffered.max_clock(), Clock::BENCH_450);
        assert_eq!(
            DimmKind::Unbuffered { tuned: false }.max_clock(),
            Clock::SAFE_360
        );
        assert_eq!(
            DimmKind::Unbuffered { tuned: true }.max_clock(),
            Clock::TUNED_420
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the reliable limit")]
    fn untuned_unbuffered_rejects_420() {
        let cfg = DdrConfig {
            dimm: DimmKind::Unbuffered { tuned: false },
            ..Default::default()
        };
        let _ = DdrController::new(cfg, Clock::TUNED_420);
    }

    #[test]
    fn tuned_unbuffered_accepts_420() {
        let cfg = DdrConfig {
            dimm: DimmKind::Unbuffered { tuned: true },
            ..Default::default()
        };
        let c = DdrController::new(cfg, Clock::TUNED_420);
        assert!(c.bytes_per_cycle() > 0.0);
    }
}
