//! The prefetching EDRAM controller's timing model.
//!
//! §2.1: the 4 MB on-chip EDRAM supports 1024-bit (128-byte) reads and
//! writes; the controller assembles these wide words and feeds the PPC 440
//! data-cache port with 128-bit words *at the full processor speed* —
//! 16 bytes/cycle, i.e. 8 GB/s at 500 MHz. To hide EDRAM page misses, the
//! controller maintains **two prefetching streams**, each following a group
//! of contiguous addresses, so `a(x) × b(x)` style kernels stream both
//! operands at full bandwidth. Accesses that fall outside the two active
//! streams pay the page-miss latency and reassign the least-recently-used
//! stream.

use crate::clock::Cycles;
use serde::{Deserialize, Serialize};

/// Width of the core-side EDRAM port in bytes per cycle (128 bits).
pub const PORT_BYTES_PER_CYCLE: u64 = 16;

/// Width of one internal EDRAM row access in bytes (1024 bits).
pub const ROW_BYTES: u64 = 128;

/// Configuration of the prefetching controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdramConfig {
    /// Number of concurrent prefetch streams (the ASIC has 2).
    pub streams: usize,
    /// Cycles lost on an access that misses all active streams.
    pub page_miss_cycles: u64,
    /// Enable prefetching. Disabling models a naive controller where every
    /// new row pays the page-miss cost (used by the E2 ablation bench).
    pub prefetch: bool,
}

impl Default for EdramConfig {
    fn default() -> Self {
        EdramConfig {
            streams: 2,
            page_miss_cycles: 11,
            prefetch: true,
        }
    }
}

/// Timing state of the prefetching EDRAM controller.
#[derive(Debug, Clone)]
pub struct EdramController {
    config: EdramConfig,
    /// Next expected address of each stream, with an LRU stamp.
    streams: Vec<(u64, u64)>,
    lru_clock: u64,
    /// Accumulated statistics.
    stream_hits: u64,
    page_misses: u64,
}

impl EdramController {
    /// A controller with the given configuration.
    pub fn new(config: EdramConfig) -> EdramController {
        EdramController {
            streams: vec![(u64::MAX, 0); config.streams],
            config,
            lru_clock: 0,
            stream_hits: 0,
            page_misses: 0,
        }
    }

    /// Accesses that continued an active stream.
    pub fn stream_hits(&self) -> u64 {
        self.stream_hits
    }

    /// Accesses that paid the page-miss penalty.
    pub fn page_misses(&self) -> u64 {
        self.page_misses
    }

    /// Cost of transferring `bytes` starting at `addr`, updating stream
    /// state. Sequential continuation of an active stream runs at the full
    /// 16 bytes/cycle port rate; anything else pays a page miss first.
    pub fn access(&mut self, addr: u64, bytes: u64) -> Cycles {
        let transfer = Cycles(bytes.div_ceil(PORT_BYTES_PER_CYCLE));
        self.lru_clock += 1;
        if self.config.prefetch {
            if let Some(slot) = self.streams.iter_mut().find(|(next, _)| *next == addr) {
                slot.0 = addr + bytes;
                slot.1 = self.lru_clock;
                self.stream_hits += 1;
                return transfer;
            }
        }
        // Miss: reassign the LRU stream to this new address run.
        self.page_misses += 1;
        let lru = self
            .streams
            .iter_mut()
            .min_by_key(|(_, stamp)| *stamp)
            .expect("at least one stream");
        lru.0 = addr + bytes;
        lru.1 = self.lru_clock;
        // A miss also re-opens the row: charge one extra row's worth of
        // occupancy on top of the fixed penalty for short transfers.
        Cycles(self.config.page_miss_cycles) + transfer
    }

    /// Cost of a pure streaming transfer of `bytes` assuming the stream is
    /// already trained (no per-call state change) — the closed-form rate
    /// used by the analytic kernel model.
    pub fn streaming_cycles(bytes: u64) -> Cycles {
        Cycles(bytes.div_ceil(PORT_BYTES_PER_CYCLE))
    }

    /// Effective bandwidth in bytes/cycle for `streams` interleaved
    /// sequential streams under this configuration. With at most
    /// `config.streams` streams prefetch hides all page misses; beyond
    /// that every row fetch of every stream pays the miss penalty.
    pub fn effective_bytes_per_cycle(&self, streams: usize) -> f64 {
        if self.config.prefetch && streams <= self.config.streams {
            PORT_BYTES_PER_CYCLE as f64
        } else {
            // Each ROW_BYTES row costs row transfer + page miss.
            let row_cycles = ROW_BYTES / PORT_BYTES_PER_CYCLE + self.config.page_miss_cycles;
            ROW_BYTES as f64 / row_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_streams_run_at_full_rate() {
        // Interleave two sequential streams (a(x) * b(x) from §2.1): after
        // the first touch of each, every access is a stream hit.
        let mut c = EdramController::new(EdramConfig::default());
        let mut a = 0u64;
        let mut b = 0x10_0000u64;
        let mut total = Cycles::ZERO;
        for _ in 0..100 {
            total += c.access(a, 128);
            total += c.access(b, 128);
            a += 128;
            b += 128;
        }
        assert_eq!(c.page_misses(), 2, "only the initial touches miss");
        assert_eq!(c.stream_hits(), 198);
        // 200 x 128 bytes at 16 B/cycle = 1600 cycles, plus 2 misses.
        assert_eq!(total, Cycles(1600 + 2 * 11));
    }

    #[test]
    fn three_streams_thrash() {
        let mut c = EdramController::new(EdramConfig::default());
        let mut addrs = [0u64, 0x10_0000, 0x20_0000];
        for _ in 0..50 {
            for a in &mut addrs {
                c.access(*a, 128);
                *a += 128;
            }
        }
        // With 2 stream slots and 3 round-robin streams, LRU always evicts
        // the stream needed next: every access misses.
        assert_eq!(c.page_misses(), 150);
        assert_eq!(c.stream_hits(), 0);
    }

    #[test]
    fn prefetch_off_always_misses() {
        let mut c = EdramController::new(EdramConfig {
            prefetch: false,
            ..Default::default()
        });
        let mut a = 0u64;
        for _ in 0..10 {
            c.access(a, 128);
            a += 128;
        }
        assert_eq!(c.page_misses(), 10);
    }

    #[test]
    fn streaming_rate_is_16_bytes_per_cycle() {
        assert_eq!(EdramController::streaming_cycles(160), Cycles(10));
        assert_eq!(
            EdramController::streaming_cycles(8),
            Cycles(1),
            "partial beat rounds up"
        );
    }

    #[test]
    fn effective_bandwidth_degrades_beyond_two_streams() {
        let c = EdramController::new(EdramConfig::default());
        assert_eq!(c.effective_bytes_per_cycle(1), 16.0);
        assert_eq!(c.effective_bytes_per_cycle(2), 16.0);
        let three = c.effective_bytes_per_cycle(3);
        assert!(three < 16.0, "three streams must be slower, got {three}");
    }

    #[test]
    fn port_rate_matches_paper_8gbs() {
        // 16 bytes/cycle x 500 MHz = 8 GB/s (§2.1).
        let bytes_per_sec = PORT_BYTES_PER_CYCLE as f64 * crate::Clock::DESIGN.hz() as f64;
        assert_eq!(bytes_per_sec, 8.0e9);
    }
}
