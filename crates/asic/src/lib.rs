//! The QCDOC ASIC: a functional and timing model of one processing node.
//!
//! Each QCDOC node is a single system-on-a-chip (Figure 1 of the paper)
//! containing an IBM PPC 440 integer core with an attached 64-bit IEEE
//! floating-point unit (one multiply and one add per cycle — 1 Gflops peak
//! at 500 MHz), 32 kB instruction and data caches, 4 MB of on-chip EDRAM
//! behind a custom prefetching controller (8 GB/s to the core), a controller
//! for external DDR SDRAM (2.6 GB/s, up to 2 GB), the Serial Communications
//! Unit driving the 6-D mesh (in `qcdoc-scu`), two Ethernet interfaces, and
//! the Processor Local Bus (PLB) tying it together.
//!
//! This crate models the *node-local* parts:
//!
//! * [`clock`] — clock domains and cycle/time conversion at the paper's
//!   operating points (500 MHz design target; 450/420/360 MHz measured);
//! * [`memory`] — functional node memory (EDRAM + DDR address spaces) with
//!   access statistics, the storage the SCU DMA engines operate on;
//! * [`ecc`] — the SEC-DED (72,64) Hamming code guarding every stored word
//!   (§2.1 "1024-bit rows + ECC"), with a deterministic scrubber in
//!   [`memory`];
//! * [`edram`] — the prefetching EDRAM controller's two-stream timing model;
//! * [`ddr`] — the external DDR controller timing model;
//! * [`cache`] — a set-associative cache simulator for the 32 kB L1s;
//! * [`plb`] — Processor Local Bus arbitration (SCU DMA priority);
//! * [`ppc440`] — the core's floating-point and issue cost model;
//! * [`ledger`] — operation ledgers: the currency in which workload kernels
//!   report their work to the timing engine;
//! * [`node`] — the assembled node: configuration plus per-kernel timing;
//! * [`blocks`] — the ASIC block inventory and ASCII rendering of Figure 1.

#![warn(missing_docs)]

pub mod blocks;
pub mod cache;
pub mod clock;
pub mod ddr;
pub mod ecc;
pub mod edram;
pub mod ledger;
pub mod memory;
pub mod node;
pub mod plb;
pub mod ppc440;

pub use clock::{Clock, Cycles};
pub use ledger::KernelLedger;
pub use memory::{MemRegion, NodeMemory};
pub use node::{NodeConfig, NodeTiming};
