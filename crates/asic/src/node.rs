//! The assembled node: configuration and per-kernel local timing.
//!
//! A node is the PPC 440 core model plus the EDRAM and DDR controllers. The
//! timing of one kernel invocation is the overlap-aware combination of FPU
//! issue time and memory streaming time; network time is added at the
//! machine level (`qcdoc-core`) because it depends on the neighbours too.

use crate::clock::{Clock, Cycles};
use crate::ddr::{DdrConfig, DdrController};
use crate::edram::{EdramConfig, EdramController};
use crate::ledger::KernelLedger;
use crate::ppc440::{CoreConfig, Ppc440};
use serde::{Deserialize, Serialize};

/// Full configuration of one processing node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Processor (and link) clock.
    pub clock: Clock,
    /// Core cost-model parameters.
    pub core: CoreConfig,
    /// EDRAM controller parameters.
    pub edram: EdramConfig,
    /// DDR controller parameters.
    pub ddr: DdrConfig,
    /// Installed DDR bytes.
    pub ddr_bytes: u64,
    /// Fraction of memory time the prefetching controller hides under FPU
    /// time (0 = fully serial, 1 = perfect overlap). The EDRAM prefetcher
    /// was designed precisely to overlap the stream fetches with compute.
    pub mem_overlap: f64,
}

impl NodeConfig {
    /// The paper's 128-node benchmark configuration: 450 MHz, buffered
    /// DIMMs, default calibration.
    pub fn bench_450() -> NodeConfig {
        NodeConfig {
            clock: Clock::BENCH_450,
            core: CoreConfig::default(),
            edram: EdramConfig::default(),
            ddr: DdrConfig::default(),
            ddr_bytes: 128 * 1024 * 1024,
            mem_overlap: 0.75,
        }
    }

    /// Same node at a different clock.
    pub fn with_clock(mut self, clock: Clock) -> NodeConfig {
        self.clock = clock;
        self
    }

    /// Whether a working set of `bytes` fits in the 4 MB EDRAM.
    pub fn fits_edram(&self, bytes: u64) -> bool {
        bytes <= crate::memory::EDRAM_SIZE
    }
}

/// The local-time breakdown of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTiming {
    /// FPU issue cycles.
    pub fpu: Cycles,
    /// EDRAM streaming cycles.
    pub edram: Cycles,
    /// DDR streaming cycles.
    pub ddr: Cycles,
    /// Combined local cycles after overlap.
    pub local: Cycles,
}

impl NodeTiming {
    /// Whether this kernel is limited by memory rather than issue.
    pub fn memory_bound(&self) -> bool {
        self.edram + self.ddr > self.fpu
    }
}

/// The assembled node timing model.
#[derive(Debug, Clone)]
pub struct Node {
    config: NodeConfig,
    core: Ppc440,
    ddr: DdrController,
}

impl Node {
    /// Build a node from its configuration.
    pub fn new(config: NodeConfig) -> Node {
        Node {
            core: Ppc440::new(config.core, config.clock),
            ddr: DdrController::new(config.ddr, config.clock),
            config,
        }
    }

    /// The node configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// The core model.
    pub fn core(&self) -> &Ppc440 {
        &self.core
    }

    /// Peak flops at this node's clock.
    pub fn peak_flops(&self) -> f64 {
        self.core.peak_flops()
    }

    /// Local timing of one kernel invocation described by `ledger`,
    /// executed as `loops` inner loops.
    ///
    /// FPU issue and memory streaming overlap by `mem_overlap`: the
    /// prefetching EDRAM controller fetches ahead while the FPU consumes
    /// the previous beat, so the combined time approaches
    /// `max(fpu, mem)` for perfectly software-pipelined kernels and
    /// `fpu + mem` with no overlap.
    pub fn kernel_timing(&self, ledger: &KernelLedger, loops: u64) -> NodeTiming {
        let fpu = self.core.kernel_cycles(ledger, loops);
        let edram = EdramController::streaming_cycles(ledger.edram_bytes());
        let ddr = self.ddr.streaming_cycles(ledger.ddr_bytes());
        let mem = edram + ddr;
        let serial = fpu + mem;
        let overlapped = fpu.max(mem);
        let w = self.config.mem_overlap.clamp(0.0, 1.0);
        let local = Cycles(
            (serial.count() as f64 * (1.0 - w) + overlapped.count() as f64 * w).round() as u64,
        );
        NodeTiming {
            fpu,
            edram,
            ddr,
            local,
        }
    }

    /// Sustained fraction of peak for a kernel with no network time.
    pub fn local_efficiency(&self, ledger: &KernelLedger, loops: u64) -> f64 {
        let t = self.kernel_timing(ledger, loops);
        if t.local == Cycles::ZERO {
            return 0.0;
        }
        ledger.flops() as f64 / (2.0 * t.local.count() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(NodeConfig::bench_450())
    }

    /// A kernel shaped like the Wilson dslash inner loop: high FMA density,
    /// streaming both operands from EDRAM.
    fn dslash_like(edram_kb: u64) -> KernelLedger {
        KernelLedger {
            fmadds: 10_000,
            fadds: 1_000,
            edram_read_bytes: edram_kb * 1024,
            edram_write_bytes: edram_kb * 256,
            ..Default::default()
        }
    }

    #[test]
    fn compute_bound_kernel_tracks_fpu() {
        let l = KernelLedger {
            fmadds: 100_000,
            edram_read_bytes: 1_000,
            ..Default::default()
        };
        let t = node().kernel_timing(&l, 1);
        assert!(!t.memory_bound());
        assert!(t.local >= t.fpu);
        assert!(t.local.count() < t.fpu.count() + t.edram.count() + t.ddr.count());
    }

    #[test]
    fn ddr_spill_slows_kernel_down() {
        // Same work, operands in EDRAM vs in DDR.
        let in_edram = dslash_like(64);
        let mut in_ddr = in_edram;
        in_ddr.ddr_read_bytes = in_ddr.edram_read_bytes;
        in_ddr.ddr_write_bytes = in_ddr.edram_write_bytes;
        in_ddr.edram_read_bytes = 0;
        in_ddr.edram_write_bytes = 0;
        let n = node();
        let e_edram = n.local_efficiency(&in_edram, 1);
        let e_ddr = n.local_efficiency(&in_ddr, 1);
        assert!(
            e_ddr < e_edram,
            "DDR-resident kernel must be slower: {e_ddr} vs {e_edram}"
        );
    }

    #[test]
    fn efficiency_bounded_by_one() {
        let l = dslash_like(16);
        let e = node().local_efficiency(&l, 1);
        assert!(e > 0.0 && e <= 1.0, "efficiency {e}");
    }

    #[test]
    fn full_overlap_is_max_no_overlap_is_sum() {
        let l = dslash_like(64);
        let mut cfg = NodeConfig::bench_450();
        cfg.mem_overlap = 1.0;
        let t_max = Node::new(cfg).kernel_timing(&l, 1);
        cfg.mem_overlap = 0.0;
        let t_sum = Node::new(cfg).kernel_timing(&l, 1);
        assert_eq!(t_max.local, t_max.fpu.max(t_max.edram + t_max.ddr));
        assert_eq!(t_sum.local, t_sum.fpu + t_sum.edram + t_sum.ddr);
    }

    #[test]
    fn clock_scaling_preserves_cycle_counts() {
        // Cycles are clock-independent for EDRAM-resident kernels (the
        // EDRAM port scales with the core clock); only DDR cycles change.
        let l = dslash_like(64);
        let fast = Node::new(NodeConfig::bench_450());
        let slow = Node::new(NodeConfig::bench_450().with_clock(Clock::SAFE_360));
        let tf = fast.kernel_timing(&l, 1);
        let ts = slow.kernel_timing(&l, 1);
        assert_eq!(tf.fpu, ts.fpu);
        assert_eq!(tf.edram, ts.edram);
    }

    #[test]
    fn fits_edram_threshold() {
        let cfg = NodeConfig::bench_450();
        assert!(cfg.fits_edram(4 * 1024 * 1024));
        assert!(!cfg.fits_edram(4 * 1024 * 1024 + 1));
    }
}
