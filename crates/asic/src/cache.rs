//! A set-associative cache simulator for the PPC 440 L1 caches.
//!
//! The PPC 440 carries 32 kB instruction and 32 kB data caches (§2.1). The
//! data cache's connection to memory is the modified path through the
//! prefetching EDRAM controller; this module simulates the cache array
//! itself: 32-byte lines, configurable associativity, true-LRU replacement,
//! write-back with write-allocate. It is used by micro-kernel tests and the
//! cache-behaviour benches; the analytic kernel model uses closed-form
//! traffic estimates instead, since full trace simulation of a CG solve
//! would dominate runtime without changing the stream-level accounting.

use serde::{Deserialize, Serialize};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// The PPC 440's 32 kB, 32-byte-line, 64-way-set-associative data cache
    /// geometry (modelled as 8-way here; the timing-relevant property is
    /// capacity and line size).
    pub fn ppc440_l1() -> CacheConfig {
        CacheConfig {
            capacity: 32 * 1024,
            line: 32,
            ways: 8,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity / (self.line * self.ways)
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was fetched; no dirty line was displaced.
    Miss,
    /// The line was fetched and a dirty line was written back.
    MissWriteback,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

/// A set-associative, write-back, write-allocate cache with true LRU.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// An empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(
            config.line.is_power_of_two()
                && config.capacity.is_multiple_of(config.line * config.ways)
        );
        let total_lines = config.capacity / config.line;
        Cache {
            config,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    stamp: 0
                };
                total_lines
            ],
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hit rate over all accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    fn set_of(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr / self.config.line as u64;
        let set = (line_addr % self.config.sets() as u64) as usize;
        let tag = line_addr / self.config.sets() as u64;
        (set, tag)
    }

    /// Access one address; `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        self.clock += 1;
        let (set, tag) = self.set_of(addr);
        let base = set * self.config.ways;
        let ways = &mut self.lines[base..base + self.config.ways];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = self.clock;
            line.dirty |= write;
            self.hits += 1;
            return Access::Hit;
        }
        self.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp } else { 0 })
            .expect("ways > 0");
        let evicted_dirty = victim.valid && victim.dirty;
        if evicted_dirty {
            self.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            stamp: self.clock,
        };
        if evicted_dirty {
            Access::MissWriteback
        } else {
            Access::Miss
        }
    }

    /// Invalidate everything (e.g. at partition handoff).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
            l.dirty = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 1 kB, 32 B lines, 2-way: 16 sets.
        Cache::new(CacheConfig {
            capacity: 1024,
            line: 32,
            ways: 2,
        })
    }

    #[test]
    fn ppc440_geometry() {
        let c = CacheConfig::ppc440_l1();
        assert_eq!(c.sets(), 128);
        assert_eq!(c.sets() * c.ways * c.line, 32 * 1024);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small();
        assert_eq!(c.access(0x100, false), Access::Miss);
        assert_eq!(c.access(0x100, false), Access::Hit);
        assert_eq!(c.access(0x110, false), Access::Hit, "same 32-byte line");
        assert_eq!(c.access(0x120, false), Access::Miss, "next line");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to the same set (stride = sets * line = 512).
        c.access(0x000, false);
        c.access(0x200, false);
        c.access(0x000, false); // touch first again; 0x200 is now LRU
        assert_eq!(c.access(0x400, false), Access::Miss); // evicts 0x200
        assert_eq!(c.access(0x000, false), Access::Hit);
        assert_eq!(c.access(0x200, false), Access::Miss);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0x000, true);
        c.access(0x200, false);
        assert_eq!(c.access(0x400, false), Access::MissWriteback);
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn working_set_fitting_in_cache_hits_after_warmup() {
        let mut c = Cache::new(CacheConfig::ppc440_l1());
        // 16 kB working set streamed twice.
        for pass in 0..2 {
            for addr in (0..16 * 1024u64).step_by(8) {
                let r = c.access(addr, false);
                if pass == 1 {
                    assert_eq!(r, Access::Hit);
                }
            }
        }
        // First pass misses one access per 32-byte line (1 in 4 at stride
        // 8), second pass hits everything: 7/8 overall.
        assert!(
            (c.hit_rate() - 0.875).abs() < 1e-12,
            "hit rate {}",
            c.hit_rate()
        );
    }

    #[test]
    fn working_set_exceeding_cache_thrashes_on_stream() {
        let mut c = Cache::new(CacheConfig::ppc440_l1());
        // 256 kB streamed twice: the second pass misses every line again —
        // the reason the Dirac kernels stream from EDRAM, not the cache.
        for _ in 0..2 {
            for addr in (0..256 * 1024u64).step_by(32) {
                c.access(addr, false);
            }
        }
        assert!(c.hit_rate() < 0.01, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.access(0x100, true);
        c.flush();
        assert_eq!(c.access(0x100, false), Access::Miss);
        assert_eq!(c.writebacks(), 0, "flush drops dirty state in this model");
    }
}
