//! Clock domains and cycle accounting.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A processor clock frequency.
///
/// The ASIC's design target is 500 MHz; the paper reports reliable operation
/// at 450 MHz (128-node benchmarks, buffered DIMMs), 360 MHz and 420 MHz
/// (512-node machine with cheaper unbuffered memory, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Clock {
    mhz: u32,
}

impl Clock {
    /// The 500 MHz design target.
    pub const DESIGN: Clock = Clock { mhz: 500 };
    /// 450 MHz — the 128-node benchmark clock.
    pub const BENCH_450: Clock = Clock { mhz: 450 };
    /// 420 MHz — tuned unbuffered-memory operation.
    pub const TUNED_420: Clock = Clock { mhz: 420 };
    /// 360 MHz — first reliable unbuffered-memory operation.
    pub const SAFE_360: Clock = Clock { mhz: 360 };
    /// The ~40 MHz global clock distributed by the motherboard for partition
    /// interrupts (§2.4).
    pub const GLOBAL: Clock = Clock { mhz: 40 };

    /// A clock at `mhz` megahertz.
    pub const fn from_mhz(mhz: u32) -> Clock {
        Clock { mhz }
    }

    /// Frequency in MHz.
    #[inline]
    pub const fn mhz(self) -> u32 {
        self.mhz
    }

    /// Frequency in Hz.
    #[inline]
    pub const fn hz(self) -> u64 {
        self.mhz as u64 * 1_000_000
    }

    /// Cycle period in nanoseconds.
    #[inline]
    pub fn period_ns(self) -> f64 {
        1_000.0 / self.mhz as f64
    }

    /// Convert a cycle count to nanoseconds.
    #[inline]
    pub fn cycles_to_ns(self, c: Cycles) -> f64 {
        c.0 as f64 * self.period_ns()
    }

    /// Convert a duration in nanoseconds to cycles (rounded up).
    #[inline]
    pub fn ns_to_cycles(self, ns: f64) -> Cycles {
        Cycles((ns / self.period_ns()).ceil() as u64)
    }

    /// Peak floating-point rate: one multiply and one add per cycle.
    #[inline]
    pub fn peak_flops(self) -> f64 {
        2.0 * self.hz() as f64
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MHz", self.mhz)
    }
}

/// A count of processor cycles.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// The raw count.
    #[inline]
    pub fn count(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two cycle counts.
    #[inline]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_clock_peak_is_one_gflops() {
        assert_eq!(Clock::DESIGN.peak_flops(), 1.0e9);
    }

    #[test]
    fn period_of_500mhz_is_2ns() {
        assert!((Clock::DESIGN.period_ns() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_time_roundtrip() {
        let c = Clock::BENCH_450;
        let cyc = Cycles(900);
        let ns = c.cycles_to_ns(cyc);
        assert_eq!(c.ns_to_cycles(ns), cyc);
    }

    #[test]
    fn ns_to_cycles_rounds_up() {
        // 600 ns at 500 MHz is exactly 300 cycles; 601 ns must be 301.
        assert_eq!(Clock::DESIGN.ns_to_cycles(600.0), Cycles(300));
        assert_eq!(Clock::DESIGN.ns_to_cycles(601.0), Cycles(301));
    }

    #[test]
    fn cycle_arithmetic() {
        assert_eq!(Cycles(5) + Cycles(3), Cycles(8));
        assert_eq!(Cycles(5) - Cycles(3), Cycles(2));
        assert_eq!(Cycles(5) * 3, Cycles(15));
        assert_eq!(Cycles(3).saturating_sub(Cycles(5)), Cycles::ZERO);
        assert_eq!(Cycles(3).max(Cycles(5)), Cycles(5));
    }

    #[test]
    fn operating_points_match_paper() {
        for (clk, mhz) in [
            (Clock::DESIGN, 500),
            (Clock::BENCH_450, 450),
            (Clock::TUNED_420, 420),
            (Clock::SAFE_360, 360),
        ] {
            assert_eq!(clk.mhz(), mhz);
        }
    }
}
