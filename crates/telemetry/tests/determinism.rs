//! Exporter determinism: the same seed and configuration must produce
//! byte-identical Chrome traces, Prometheus dumps and JSON summaries
//! across runs. Telemetry rides the logical cycle clock — never wall
//! time — so a trace is as reproducible as the physics (§4).

use proptest::prelude::*;
use qcdoc_core::des::{run_traced, DesConfig, DesTelemetry};
use qcdoc_core::distributed::{wilson_solve_cg, BlockGeom};
use qcdoc_core::functional::{FunctionalMachine, TelemetryConfig};
use qcdoc_fault::{FaultEvent, FaultPlan};
use qcdoc_geometry::TorusShape;
use qcdoc_lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc_telemetry::{
    chrome_trace, prometheus_text, summary_json, MetricsRegistry, RingSink, TraceSink,
};

/// One traced DES run, exported three ways.
fn des_exports(dims: [usize; 4], iterations: usize, seed: u64, ber: f64) -> [String; 3] {
    let cfg = DesConfig::homogeneous(dims, 800_000, 1_536, 3_000);
    let plan = FaultPlan::new(seed).with_event(FaultEvent::bit_error_rate(1, 0, ber));
    let mut sink = RingSink::new(1 << 16);
    let mut metrics = MetricsRegistry::new();
    let _ = run_traced(
        &cfg,
        iterations,
        &plan,
        Some(DesTelemetry {
            sink: &mut sink,
            metrics: &mut metrics,
        }),
    );
    let spans = sink.drain();
    [
        chrome_trace(&spans),
        prometheus_text(&metrics),
        summary_json(&metrics, &spans),
    ]
}

#[test]
fn des_exports_are_byte_identical_across_runs() {
    let a = des_exports([2, 2, 2, 1], 8, 7, 0.01);
    let b = des_exports([2, 2, 2, 1], 8, 7, 0.01);
    assert_eq!(a, b, "same seed + config must export identically");
    // Sanity: the exports are non-trivial.
    assert!(a[0].contains("des.compute"));
    assert!(a[1].contains("des_total_cycles"));
    assert!(a[2].contains("qcdoc-telemetry-v1"));
    // The injected errors are visible: a clean run exports different bytes.
    let c = des_exports([2, 2, 2, 1], 8, 7, 0.0);
    assert_ne!(a[1], c[1], "injected errors must show in the metrics");
    assert!(c[1].contains("machine_total_injected 0"));
}

/// One clean functional CG run with telemetry, exported three ways. Clean
/// runs have no resends, so every series is schedule-independent.
fn functional_exports() -> [String; 3] {
    let global = Lattice::new([4, 4, 2, 2]);
    let gauge = GaugeField::hot(global, 60);
    let b = FermionField::gaussian(global, 61);
    let machine =
        FunctionalMachine::new(TorusShape::new(&[2, 2])).with_telemetry(TelemetryConfig::default());
    let (_, _, telemetry) = machine.run_with_telemetry(|ctx| {
        let geom = BlockGeom::new(ctx, global);
        let lg = geom.extract_gauge(&gauge);
        let lb = geom.extract_fermion(&b);
        let (_, report) = wilson_solve_cg(ctx, &geom, &lg, &lb, 0.12, 1e-8, 500);
        assert!(report.converged);
    });
    [
        telemetry.chrome_trace(),
        telemetry.prometheus_text(),
        telemetry.summary_json(),
    ]
}

#[test]
fn functional_machine_exports_are_byte_identical_across_runs() {
    let a = functional_exports();
    let b = functional_exports();
    assert_eq!(a, b, "a clean functional run must export identically");
    assert!(a[0].contains("dslash.compute"));
    assert!(a[0].contains("scu.complete"));
    assert!(a[0].contains("comm.global_sum"));
    assert!(a[1].contains("dma_send_words"));
    assert!(a[1].contains("node_mem_edram_reads"));
    assert!(a[1].contains("machine_total_resends 0"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property form of the DES determinism claim: any small machine,
    /// iteration count, seed and error rate exports identically twice.
    #[test]
    fn des_exports_deterministic_for_any_seed(
        ext in 1usize..3,
        iterations in 1usize..6,
        seed in 0u64..1000,
        ber in 0.0f64..0.1,
    ) {
        let dims = [2, ext, 1, 1];
        let a = des_exports(dims, iterations, seed, ber);
        let b = des_exports(dims, iterations, seed, ber);
        prop_assert_eq!(a, b);
    }
}
