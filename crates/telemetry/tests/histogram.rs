//! Property tests for the histogram type the exporters and the benchmark
//! judge depend on: bucket monotonicity, quantile ordering, and
//! merge/observe equivalence.

use proptest::prelude::*;
use qcdoc_telemetry::Histogram;

fn filled(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    /// Cumulative bucket counts are non-decreasing in bound order and end
    /// at the observation count — the invariant Prometheus `_bucket`
    /// consumers and the judge's quantile reader both assume.
    #[test]
    fn buckets_are_monotone_and_total(values in prop::collection::vec(0u64..1u64 << 48, 0..200)) {
        let h = filled(&values);
        let buckets = h.nonzero_buckets();
        let mut last_bound = None;
        let mut cumulative = 0u64;
        for (bound, count) in &buckets {
            prop_assert!(*count > 0, "nonzero_buckets must skip empty buckets");
            if let Some(prev) = last_bound {
                prop_assert!(*bound > prev, "bounds must strictly ascend");
            }
            last_bound = Some(*bound);
            cumulative += count;
        }
        prop_assert_eq!(cumulative, h.count());
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Every observation is <= the bound of its bucket's reported upper
    /// bound; quantiles respect ordering (p50 <= p95 <= p99 <= max bound).
    #[test]
    fn quantiles_are_ordered_and_bounded(values in prop::collection::vec(0u64..1u64 << 48, 1..200)) {
        let h = filled(&values);
        let p50 = h.p50();
        let p95 = h.p95();
        let p99 = h.p99();
        let max_bound = h.nonzero_buckets().last().unwrap().0;
        prop_assert!(p50 <= p95 && p95 <= p99 && p99 <= max_bound);
        // The top bucket bound dominates the true maximum.
        let max_obs = *values.iter().max().unwrap();
        prop_assert!(max_bound >= max_obs);
    }

    /// Merging two histograms equals observing the concatenation.
    #[test]
    fn merge_equals_concatenated_observe(
        a in prop::collection::vec(0u64..1u64 << 32, 0..100),
        b in prop::collection::vec(0u64..1u64 << 32, 0..100),
    ) {
        let mut merged = filled(&a);
        merged.merge(&filled(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(merged, filled(&both));
    }
}

#[test]
fn quantile_of_uniform_ramp_is_exact_to_bucket() {
    // 1..=1000: the true p50 is 500 (bucket bound 511), p99 is 990
    // (bucket bound 1023).
    let values: Vec<u64> = (1..=1000).collect();
    let h = filled(&values);
    assert_eq!(h.p50(), 511);
    assert_eq!(h.p95(), 1023);
    assert_eq!(h.p99(), 1023);
}
