//! Exporters: Chrome `chrome://tracing` JSON, Prometheus-style text, and
//! a compact JSON summary for `BENCH_telemetry.json`-style artifacts.
//!
//! All output is hand-rolled (the crate is zero-dep) and strictly ordered,
//! so identical inputs yield byte-identical strings.

use crate::metrics::{MetricValue, MetricsRegistry};
use crate::trace::{Phase, Span};

/// Escape a string for embedding inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` the way JSON wants it: finite, with a decimal point or
/// exponent so it round-trips as a float.
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Serialize spans as a Chrome trace (`chrome://tracing` / Perfetto).
///
/// Each span becomes a complete (`"ph":"X"`) event with `pid` = node id,
/// `ts`/`dur` in integer logical cycles (we declare them as nanoseconds —
/// the viewer only needs a consistent unit).
pub fn chrome_trace(spans: &[Span]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":0,\
             \"ts\":{},\"dur\":{},\"args\":{{\"depth\":{},\"arg\":{}}}}}",
            json_escape(s.name),
            s.phase.name(),
            s.node,
            s.begin,
            s.cycles(),
            s.depth,
            s.arg,
        ));
    }
    out.push_str("]}\n");
    out
}

/// Serialize a registry as Prometheus text exposition format.
///
/// Series are emitted in the registry's deterministic order, with one
/// `# TYPE` line per metric name. Histograms expand into `_bucket`
/// (non-empty buckets only), `_sum` and `_count` series.
///
/// ```
/// use qcdoc_telemetry::export::prometheus_text;
/// use qcdoc_telemetry::metrics::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// reg.counter_add("solver_iterations", &[("action", "wilson".into())], 36);
/// reg.gauge_set("solver_residual", &[], 1e-8);
/// let text = prometheus_text(&reg);
/// assert!(text.contains("# TYPE solver_iterations counter"));
/// assert!(text.contains("solver_iterations{action=\"wilson\"} 36"));
/// // Identical registries render byte-identical text.
/// assert_eq!(text, prometheus_text(&reg));
/// ```
pub fn prometheus_text(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for (key, value) in reg.iter() {
        if last_name != Some(key.name.as_str()) {
            out.push_str(&format!("# TYPE {} {}\n", key.name, value.type_name()));
            last_name = Some(key.name.as_str());
        }
        let labels = render_labels(&key.labels, None);
        match value {
            MetricValue::Counter(c) => out.push_str(&format!("{}{} {}\n", key.name, labels, c)),
            MetricValue::Gauge(g) => {
                out.push_str(&format!("{}{} {}\n", key.name, labels, fmt_gauge(*g)))
            }
            MetricValue::Histogram(h) => {
                for (bound, count) in h.nonzero_buckets() {
                    let le = render_labels(&key.labels, Some(("le", &bound.to_string())));
                    out.push_str(&format!("{}_bucket{} {}\n", key.name, le, count));
                }
                out.push_str(&format!("{}_sum{} {}\n", key.name, labels, h.sum()));
                out.push_str(&format!("{}_count{} {}\n", key.name, labels, h.count()));
            }
        }
    }
    out
}

fn fmt_gauge(g: f64) -> String {
    if g.is_finite() {
        format!("{g}")
    } else if g.is_nan() {
        "NaN".to_string()
    } else if g > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, json_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{}=\"{}\"", k, json_escape(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Aggregate depth-0 spans per phase: `(phase, span_count, total_cycles)`.
///
/// Only depth-0 spans count — nested spans live inside an enclosing
/// depth-0 span and would double count its cycles.
pub fn phase_summary(spans: &[Span]) -> Vec<(Phase, u64, u64)> {
    Phase::ALL
        .iter()
        .filter_map(|&phase| {
            let mut n = 0u64;
            let mut cycles = 0u64;
            for s in spans.iter().filter(|s| s.depth == 0 && s.phase == phase) {
                n += 1;
                cycles += s.cycles();
            }
            (n > 0).then_some((phase, n, cycles))
        })
        .collect()
}

/// Serialize metrics plus a phase breakdown as one JSON document — the
/// original (v1) schema behind ad-hoc telemetry artifacts.
///
/// Benchmark exports that feed the judge should use
/// [`bench_summary_json`] instead: it stamps the schema version and bench
/// name the judge refuses to diff without, and expands histograms.
pub fn summary_json(reg: &MetricsRegistry, spans: &[Span]) -> String {
    render_summary(None, reg, spans)
}

/// Serialize a benchmark export in the v2 schema the judge consumes:
/// stamped with the schema version and the bench's name (so mismatched
/// baselines are refused rather than silently diffed), histograms
/// expanded with deterministic p50/p95/p99 and their non-empty buckets,
/// and the phase table populated from the spans actually recorded.
pub fn bench_summary_json(bench: &str, reg: &MetricsRegistry, spans: &[Span]) -> String {
    render_summary(Some(bench), reg, spans)
}

fn render_summary(bench: Option<&str>, reg: &MetricsRegistry, spans: &[Span]) -> String {
    let mut out = match bench {
        Some(name) => format!(
            "{{\n  \"schema\": \"qcdoc-telemetry-v2\",\n  \"bench\": \"{}\",\n  \"metrics\": [\n",
            json_escape(name)
        ),
        None => String::from("{\n  \"schema\": \"qcdoc-telemetry-v1\",\n  \"metrics\": [\n"),
    };
    let entries: Vec<String> = reg
        .iter()
        .map(|(key, value)| {
            let labels: Vec<String> = key
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
                .collect();
            let value_json = match value {
                MetricValue::Counter(c) => format!("\"type\": \"counter\", \"value\": {c}"),
                MetricValue::Gauge(g) => {
                    format!("\"type\": \"gauge\", \"value\": {}", json_f64(*g))
                }
                MetricValue::Histogram(h) if bench.is_some() => {
                    let buckets: Vec<String> = h
                        .nonzero_buckets()
                        .into_iter()
                        .map(|(bound, count)| format!("[{bound}, {count}]"))
                        .collect();
                    format!(
                        "\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \
                         \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [{}]",
                        h.count(),
                        h.sum(),
                        h.p50(),
                        h.p95(),
                        h.p99(),
                        buckets.join(", ")
                    )
                }
                MetricValue::Histogram(h) => format!(
                    "\"type\": \"histogram\", \"count\": {}, \"sum\": {}",
                    h.count(),
                    h.sum()
                ),
            };
            format!(
                "    {{\"name\": \"{}\", \"labels\": {{{}}}, {}}}",
                json_escape(&key.name),
                labels.join(", "),
                value_json
            )
        })
        .collect();
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  ],\n  \"phases\": [\n");
    let phases: Vec<String> = phase_summary(spans)
        .into_iter()
        .map(|(phase, n, cycles)| {
            format!(
                "    {{\"phase\": \"{}\", \"spans\": {}, \"cycles\": {}}}",
                phase.name(),
                n,
                cycles
            )
        })
        .collect();
    out.push_str(&phases.join(",\n"));
    out.push_str(&format!("\n  ],\n  \"spans_total\": {}\n}}\n", spans.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, phase: Phase, begin: u64, end: u64, depth: u32) -> Span {
        Span {
            name,
            node: 1,
            phase,
            begin,
            end,
            depth,
            arg: 7,
        }
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let spans = [
            span("dslash.compute", Phase::Compute, 0, 100, 0),
            span("scu.shift", Phase::Comms, 100, 140, 0),
        ];
        let json = chrome_trace(&spans);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"name\":\"dslash.compute\""));
        assert!(json.contains("\"cat\":\"compute\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"ts\":100,\"dur\":40"));
        assert!(json.ends_with("]}\n"));
        // Braces/brackets balance.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_trace_empty_input() {
        assert_eq!(
            chrome_trace(&[]),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n"
        );
    }

    #[test]
    fn prometheus_counters_gauges_histograms() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("resends", &[("node", "2".to_string())], 5);
        reg.gauge_set("gflops", &[], 3.5);
        reg.observe("latency", &[], 3);
        reg.observe("latency", &[], 3);
        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE resends counter\n"));
        assert!(text.contains("resends{node=\"2\"} 5\n"));
        assert!(text.contains("# TYPE gflops gauge\n"));
        assert!(text.contains("gflops 3.5\n"));
        assert!(text.contains("latency_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("latency_sum 6\n"));
        assert!(text.contains("latency_count 2\n"));
    }

    #[test]
    fn phase_summary_ignores_nested_spans() {
        let spans = [
            span("outer", Phase::Compute, 0, 100, 0),
            span("inner", Phase::Compute, 10, 20, 1),
            span("sum", Phase::GlobalSum, 100, 130, 0),
        ];
        let summary = phase_summary(&spans);
        assert_eq!(
            summary,
            vec![(Phase::Compute, 1, 100), (Phase::GlobalSum, 1, 30)]
        );
    }

    #[test]
    fn summary_json_has_schema_and_phases() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("iters", &[], 10);
        reg.gauge_set("residual", &[], 1e-8);
        let spans = [span("s", Phase::Comms, 0, 50, 0)];
        let json = summary_json(&reg, &spans);
        assert!(json.contains("\"schema\": \"qcdoc-telemetry-v1\""));
        assert!(json.contains("\"name\": \"iters\""));
        assert!(json.contains("\"value\": 10"));
        assert!(json.contains("0.00000001"));
        assert!(json.contains("\"phase\": \"comms\", \"spans\": 1, \"cycles\": 50"));
        assert!(json.contains("\"spans_total\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn bench_summary_json_stamps_schema_bench_and_quantiles() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("ratio", &[], 1.04);
        for v in [2u64, 2, 2, 100] {
            reg.observe("decision_us", &[("load", "empty".to_string())], v);
        }
        let spans = [span("s", Phase::Compute, 0, 9, 0)];
        let json = bench_summary_json("sched", &reg, &spans);
        assert!(json.contains("\"schema\": \"qcdoc-telemetry-v2\""));
        assert!(json.contains("\"bench\": \"sched\""));
        assert!(json.contains("\"p50\": 3, \"p95\": 127, \"p99\": 127"));
        assert!(json.contains("\"buckets\": [[3, 3], [127, 1]]"));
        assert!(json.contains("\"phase\": \"compute\", \"spans\": 1, \"cycles\": 9"));
        assert!(json.contains("\"spans_total\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Byte-determinism: same inputs, same bytes.
        assert_eq!(json, bench_summary_json("sched", &reg, &spans));
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("odd", &[("msg", "say \"hi\"\\path\nnext".to_string())], 1);
        let text = prometheus_text(&reg);
        assert!(text.contains("odd{msg=\"say \\\"hi\\\"\\\\path\\nnext\"} 1\n"));
        // The raw specials must never appear unescaped inside the quotes.
        assert!(!text.contains("say \"hi\""));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_f64_round_trips_as_float() {
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(2.5), "2.5");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
