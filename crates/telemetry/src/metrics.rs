//! The machine-wide metrics registry: named counters, gauges and
//! histograms with arbitrary (typically per-node, per-link) labels.
//!
//! Everything is keyed through [`BTreeMap`]s so iteration order — and
//! therefore every exporter's output — is fully deterministic: two runs
//! that record the same values produce byte-identical dumps.

use std::collections::BTreeMap;

/// A metric identity: name plus a sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `scu_link_resends`.
    pub name: String,
    /// Label pairs, kept sorted by key so equal label sets compare equal.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key from a name and unsorted label pairs.
    pub fn new(name: &str, labels: &[(&str, String)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// A power-of-two-bucketed histogram of `u64` observations.
///
/// Bucket `i` (for `i > 0`) holds values `v` with `2^(i-1) <= v < 2^i`;
/// bucket 0 holds zeros. 65 buckets cover the whole `u64` range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Non-empty buckets as `(upper_bound_inclusive, count)` pairs in
    /// ascending bound order. Bucket 0 reports bound 0.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Histogram::bucket_bound(i), c))
            .collect()
    }

    /// Inclusive upper bound of bucket `i` (0, 1, 3, 7, …, `u64::MAX`).
    fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i == 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// observation (0 for an empty histogram). Quantiles are
    /// bucket-resolution — exact to within the power-of-two bucketing —
    /// and fully deterministic, so they can be diffed and gated.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_bound(i);
            }
        }
        u64::MAX
    }

    /// Median observation (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile observation (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile observation (bucket upper bound) — the tail the
    /// benchmark judge gates.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-write-wins instantaneous value. Ledger readouts use gauges so
    /// re-ingesting the same report is idempotent.
    Gauge(f64),
    /// Distribution of observations (boxed: the bucket array is large
    /// relative to the other variants).
    Histogram(Box<Histogram>),
}

impl MetricValue {
    /// The Prometheus type name of this value.
    pub fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// The registry: a deterministic map from [`MetricKey`] to value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: BTreeMap<MetricKey, MetricValue>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Whether no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct (name, labels) series.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Add `v` to a counter, creating it at zero first if needed.
    ///
    /// Panics if the series already exists with a different type — mixing
    /// types under one name is a programming error, not a runtime state.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, String)], v: u64) {
        match self
            .entries
            .entry(MetricKey::new(name, labels))
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += v,
            other => panic!("metric {name} is a {}, not a counter", other.type_name()),
        }
    }

    /// Set a gauge to `v` (last write wins).
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, String)], v: f64) {
        match self
            .entries
            .entry(MetricKey::new(name, labels))
            .or_insert(MetricValue::Gauge(v))
        {
            MetricValue::Gauge(g) => *g = v,
            other => panic!("metric {name} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Record one observation into a histogram series.
    pub fn observe(&mut self, name: &str, labels: &[(&str, String)], v: u64) {
        match self
            .entries
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| MetricValue::Histogram(Box::default()))
        {
            MetricValue::Histogram(h) => h.observe(v),
            other => panic!("metric {name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Fold a whole pre-built histogram into a histogram series (how the
    /// SCU's per-link backoff distributions reach the registry).
    pub fn histogram_merge(&mut self, name: &str, labels: &[(&str, String)], h: &Histogram) {
        match self
            .entries
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| MetricValue::Histogram(Box::default()))
        {
            MetricValue::Histogram(mine) => mine.merge(h),
            other => panic!("metric {name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, String)]) -> u64 {
        match self.entries.get(&MetricKey::new(name, labels)) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of a gauge, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, String)]) -> Option<f64> {
        match self.entries.get(&MetricKey::new(name, labels)) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// A histogram series, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, String)]) -> Option<&Histogram> {
        match self.entries.get(&MetricKey::new(name, labels)) {
            Some(MetricValue::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Iterate all series in deterministic (name, labels) order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &MetricValue)> {
        self.entries.iter()
    }

    /// Merge `other` into `self`: counters add, gauges overwrite,
    /// histograms accumulate.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (key, value) in &other.entries {
            match (self.entries.get_mut(key), value) {
                (None, v) => {
                    self.entries.insert(key.clone(), v.clone());
                }
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a = *b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(b),
                (Some(existing), incoming) => panic!(
                    "metric {} type mismatch on merge: {} vs {}",
                    key.name,
                    existing.type_name(),
                    incoming.type_name()
                ),
            }
        }
    }

    /// Merge `other` with an extra label stamped on every incoming series —
    /// how per-node registries gain their `node="N"` label at aggregation.
    pub fn merge_labeled(&mut self, other: &MetricsRegistry, label: &str, value: &str) {
        let mut stamped = MetricsRegistry::new();
        for (key, v) in &other.entries {
            let mut labels = key.labels.clone();
            labels.push((label.to_string(), value.to_string()));
            labels.sort();
            stamped.entries.insert(
                MetricKey {
                    name: key.name.clone(),
                    labels,
                },
                v.clone(),
            );
        }
        self.merge(&stamped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: u32) -> [(&'static str, String); 1] {
        [("node", n.to_string())]
    }

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("words", &node(3), 5);
        reg.counter_add("words", &node(3), 2);
        assert_eq!(reg.counter("words", &node(3)), 7);
        assert_eq!(reg.counter("words", &node(4)), 0);
        assert_eq!(reg.counter("missing", &[]), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("temp", &[], 1.5);
        reg.gauge_set("temp", &[], 2.5);
        assert_eq!(reg.gauge("temp", &[]), Some(2.5));
        assert_eq!(reg.gauge("absent", &[]), None);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        // 0 → bucket 0; 1 → (1); 2,3 → (3); 4 → (7); 1000 → (1023).
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1)]
        );
    }

    #[test]
    fn histogram_quantiles_hit_bucket_bounds() {
        let mut h = Histogram::default();
        assert_eq!(h.p50(), 0);
        for _ in 0..90 {
            h.observe(3); // bucket bound 3
        }
        for _ in 0..9 {
            h.observe(100); // bucket bound 127
        }
        h.observe(5000); // bucket bound 8191
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 3);
        assert_eq!(h.p95(), 127);
        assert_eq!(h.p99(), 127);
        assert_eq!(h.quantile(1.0), 8191);
    }

    #[test]
    fn histogram_merge_via_registry() {
        let mut pre = Histogram::default();
        pre.observe(10);
        pre.observe(20);
        let mut reg = MetricsRegistry::new();
        reg.observe("lat", &[], 1);
        reg.histogram_merge("lat", &[], &pre);
        let h = reg.histogram("lat", &[]).unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 31);
    }

    #[test]
    fn label_order_is_canonical() {
        let a = MetricKey::new("m", &[("b", "2".into()), ("a", "1".into())]);
        let b = MetricKey::new("m", &[("a", "1".into()), ("b", "2".into())]);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_semantics() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", &[], 1);
        a.gauge_set("g", &[], 1.0);
        a.observe("h", &[], 4);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", &[], 2);
        b.gauge_set("g", &[], 9.0);
        b.observe("h", &[], 4);
        a.merge(&b);
        assert_eq!(a.counter("c", &[]), 3);
        assert_eq!(a.gauge("g", &[]), Some(9.0));
        assert_eq!(a.histogram("h", &[]).unwrap().count(), 2);
    }

    #[test]
    fn merge_labeled_stamps_every_series() {
        let mut node_local = MetricsRegistry::new();
        node_local.counter_add("dma_bytes", &[], 64);
        let mut machine = MetricsRegistry::new();
        machine.merge_labeled(&node_local, "node", "5");
        assert_eq!(machine.counter("dma_bytes", &node(5)), 64);
        assert_eq!(machine.counter("dma_bytes", &[]), 0);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_confusion_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("x", &[], 1);
        reg.gauge_set("x", &[], 1.0);
    }
}
