//! Cycle-stamped span tracing.
//!
//! A [`Span`] is one contiguous stretch of a node's logical clock tagged
//! with the machine phase it belongs to. The paper's §4 efficiency model
//! decomposes one Dslash iteration into exactly these phases: local
//! compute, nearest-neighbour comms, and the global sum.

use std::collections::VecDeque;

/// The machine phase a span belongs to, mirroring the paper's §4
/// decomposition of sustained performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Local floating-point work on a node.
    Compute,
    /// Nearest-neighbour SCU wire traffic.
    Comms,
    /// Global reduction over the whole partition.
    GlobalSum,
    /// Host-side (qdaemon / diagnostics-network) activity.
    Host,
    /// Anything not covered above.
    Other,
}

impl Phase {
    /// Stable lowercase name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::Comms => "comms",
            Phase::GlobalSum => "global_sum",
            Phase::Host => "host",
            Phase::Other => "other",
        }
    }

    /// All phases in canonical export order.
    pub const ALL: [Phase; 5] = [
        Phase::Compute,
        Phase::Comms,
        Phase::GlobalSum,
        Phase::Host,
        Phase::Other,
    ];
}

/// One closed interval of a node's logical clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Static span name, e.g. `"dslash.compute"` or `"scu.shift"`.
    pub name: &'static str,
    /// Node id the span was recorded on.
    pub node: u32,
    /// Which §4 phase the cycles belong to.
    pub phase: Phase,
    /// Logical cycle at which the span opened.
    pub begin: u64,
    /// Logical cycle at which the span closed.
    pub end: u64,
    /// Nesting depth at open time; depth-0 spans partition the clock and
    /// are the ones phase summaries aggregate (nested spans would double
    /// count).
    pub depth: u32,
    /// Free-form argument (iteration index, word count, …).
    pub arg: u64,
}

impl Span {
    /// Duration in logical cycles (saturating, in case of misuse).
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.begin)
    }
}

/// Destination for closed spans.
///
/// Implementations must be cheap when disabled: call sites check
/// [`TraceSink::enabled`] before doing any work.
pub trait TraceSink: Send {
    /// Accept one closed span.
    fn record(&mut self, span: Span);
    /// Whether this sink wants spans at all. `false` lets instrumented
    /// code skip span construction entirely.
    fn enabled(&self) -> bool {
        true
    }
    /// Remove and return everything recorded so far. Sinks that discard
    /// spans return an empty vector.
    fn drain(&mut self) -> Vec<Span> {
        Vec::new()
    }
}

/// A sink that drops everything — the compile-out-cheap fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _span: Span) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// Bounded-memory ring buffer sink: keeps the most recent `capacity`
/// spans and counts the ones it had to evict.
#[derive(Debug, Default)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<Span>,
    dropped: u64,
}

impl RingSink {
    /// A ring that retains at most `capacity` spans.
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// How many spans were evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, span: Span) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(span);
    }

    fn drain(&mut self) -> Vec<Span> {
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(begin: u64, end: u64) -> Span {
        Span {
            name: "t",
            node: 0,
            phase: Phase::Compute,
            begin,
            end,
            depth: 0,
            arg: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ring = RingSink::new(2);
        assert!(ring.enabled());
        for i in 0..5 {
            ring.record(span(i, i + 1));
        }
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.len(), 2);
        let spans = ring.drain();
        assert_eq!(spans[0].begin, 3);
        assert_eq!(spans[1].begin, 4);
        assert!(ring.is_empty());
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = RingSink::new(0);
        ring.record(span(0, 1));
        assert_eq!(ring.dropped(), 1);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.record(span(0, 1));
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn span_cycles_saturate() {
        assert_eq!(span(5, 9).cycles(), 4);
        assert_eq!(span(9, 5).cycles(), 0);
    }
}
