//! Per-node telemetry handle: a logical cycle clock, a span sink and a
//! local metrics registry, bundled so instrumented code pays a single
//! branch when telemetry is disabled.

use crate::flight::{FlightEvent, FlightKind, FlightRecorder};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::trace::{NullSink, Phase, RingSink, Span, TraceSink};

/// Opaque marker returned by [`NodeTelemetry::begin`]; pass it back to
/// [`NodeTelemetry::end_with`] to close the span it opened.
#[derive(Debug, Clone, Copy)]
pub struct SpanToken {
    begin: u64,
}

/// Everything one node needs to instrument itself.
///
/// The clock is *logical*: it only moves when instrumented code calls
/// [`NodeTelemetry::advance`] with a deterministic cycle count (DMA
/// transfer models, flop counts). No wall time is ever read, so traces
/// are reproducible bit for bit.
pub struct NodeTelemetry {
    node: u32,
    clock: u64,
    depth: u32,
    enabled: bool,
    phase_override: Option<Phase>,
    sink: Box<dyn TraceSink>,
    metrics: MetricsRegistry,
    /// The black box: always on, even on a disabled handle — flight
    /// events live on exceptional paths only, so the ring costs nothing
    /// on a clean run and is there the day a run fails.
    flight: FlightRecorder,
}

impl NodeTelemetry {
    /// A disabled handle: every operation is a cheap branch, nothing is
    /// recorded. This is the default wired into uninstrumented runs.
    pub fn disabled(node: u32) -> NodeTelemetry {
        NodeTelemetry {
            node,
            clock: 0,
            depth: 0,
            enabled: false,
            phase_override: None,
            sink: Box::new(NullSink),
            metrics: MetricsRegistry::new(),
            flight: FlightRecorder::default(),
        }
    }

    /// An enabled handle backed by a bounded [`RingSink`].
    pub fn with_ring(node: u32, capacity: usize) -> NodeTelemetry {
        NodeTelemetry::with_sink(node, Box::new(RingSink::new(capacity)))
    }

    /// An enabled handle backed by an arbitrary sink.
    pub fn with_sink(node: u32, sink: Box<dyn TraceSink>) -> NodeTelemetry {
        NodeTelemetry {
            node,
            clock: 0,
            depth: 0,
            enabled: true,
            phase_override: None,
            sink,
            metrics: MetricsRegistry::new(),
            flight: FlightRecorder::default(),
        }
    }

    /// Whether this handle records anything. Call sites with non-trivial
    /// argument construction should check this first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Node id this handle stamps onto spans.
    #[inline]
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Current logical clock value.
    #[inline]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Move the logical clock forward by `cycles`.
    #[inline]
    pub fn advance(&mut self, cycles: u64) {
        if self.enabled {
            self.clock += cycles;
        }
    }

    /// Open a span at the current clock. Always pair with
    /// [`NodeTelemetry::end_with`].
    #[inline]
    pub fn begin(&mut self) -> SpanToken {
        if self.enabled {
            self.depth += 1;
        }
        SpanToken { begin: self.clock }
    }

    /// Close the span opened by `token`, record it, and return its
    /// duration in logical cycles (0 when disabled).
    #[inline]
    pub fn end_with(
        &mut self,
        token: SpanToken,
        name: &'static str,
        phase: Phase,
        arg: u64,
    ) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.depth = self.depth.saturating_sub(1);
        let span = Span {
            name,
            node: self.node,
            phase: self.phase_override.unwrap_or(phase),
            begin: token.begin,
            end: self.clock,
            depth: self.depth,
            arg,
        };
        self.sink.record(span);
        span.cycles()
    }

    /// Reclassify every span closed while the override is set (used by
    /// `global_sum`, whose internal shifts are comms on the wire but
    /// global-sum time in the §4 decomposition). Returns the previous
    /// override so callers can restore it.
    pub fn set_phase_override(&mut self, phase: Option<Phase>) -> Option<Phase> {
        std::mem::replace(&mut self.phase_override, phase)
    }

    /// Add to a node-local counter (no-op when disabled).
    #[inline]
    pub fn counter_add(&mut self, name: &str, v: u64) {
        if self.enabled {
            self.metrics.counter_add(name, &[], v);
        }
    }

    /// Set a node-local gauge (no-op when disabled).
    #[inline]
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        if self.enabled {
            self.metrics.gauge_set(name, &[], v);
        }
    }

    /// Record a node-local histogram observation (no-op when disabled).
    #[inline]
    pub fn observe(&mut self, name: &str, v: u64) {
        if self.enabled {
            self.metrics.observe(name, &[], v);
        }
    }

    /// Read-only view of the node-local metrics.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Fold a pre-built histogram into a node-local histogram series
    /// (no-op when disabled).
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        if self.enabled {
            self.metrics.histogram_merge(name, &[], h);
        }
    }

    /// Record a flight-recorder event (black box; works even when the
    /// handle is disabled — the flight ring is the part of observability
    /// that must be on when nobody thought to enable it).
    pub fn flight(&mut self, kind: FlightKind, detail: &'static str, a: u64, b: u64) {
        self.flight
            .record(self.node, self.clock, kind, detail, a, b);
    }

    /// Read-only view of the node's flight ring.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Drain the flight ring, oldest first.
    pub fn take_flight(&mut self) -> Vec<FlightEvent> {
        self.flight.drain()
    }

    /// Tear the handle down into its recorded metrics and spans, leaving
    /// it empty (and still enabled/disabled as before).
    pub fn take_parts(&mut self) -> (MetricsRegistry, Vec<Span>) {
        let metrics = std::mem::take(&mut self.metrics);
        let spans = self.sink.drain();
        (metrics, spans)
    }
}

impl std::fmt::Debug for NodeTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeTelemetry")
            .field("node", &self.node)
            .field("clock", &self.clock)
            .field("depth", &self.depth)
            .field("enabled", &self.enabled)
            .field("phase_override", &self.phase_override)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let mut t = NodeTelemetry::disabled(7);
        assert!(!t.is_enabled());
        t.advance(100);
        assert_eq!(t.clock(), 0);
        let tok = t.begin();
        t.advance(50);
        assert_eq!(t.end_with(tok, "x", Phase::Compute, 0), 0);
        t.counter_add("c", 1);
        t.observe("h", 1);
        t.gauge_set("g", 1.0);
        let (metrics, spans) = t.take_parts();
        assert!(metrics.is_empty());
        assert!(spans.is_empty());
    }

    #[test]
    fn spans_carry_clock_node_and_depth() {
        let mut t = NodeTelemetry::with_ring(3, 16);
        let outer = t.begin();
        t.advance(10);
        let inner = t.begin();
        t.advance(5);
        assert_eq!(t.end_with(inner, "inner", Phase::Comms, 42), 5);
        assert_eq!(t.end_with(outer, "outer", Phase::Compute, 0), 15);
        let (_, spans) = t.take_parts();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[0].begin, 10);
        assert_eq!(spans[0].end, 15);
        assert_eq!(spans[0].arg, 42);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[1].node, 3);
        assert_eq!(spans[1].cycles(), 15);
    }

    #[test]
    fn phase_override_reclassifies_nested_spans() {
        let mut t = NodeTelemetry::with_ring(0, 16);
        let prev = t.set_phase_override(Some(Phase::GlobalSum));
        assert_eq!(prev, None);
        let tok = t.begin();
        t.advance(8);
        t.end_with(tok, "scu.shift", Phase::Comms, 0);
        let restored = t.set_phase_override(prev);
        assert_eq!(restored, Some(Phase::GlobalSum));
        let tok = t.begin();
        t.advance(1);
        t.end_with(tok, "scu.shift", Phase::Comms, 0);
        let (_, spans) = t.take_parts();
        assert_eq!(spans[0].phase, Phase::GlobalSum);
        assert_eq!(spans[1].phase, Phase::Comms);
    }

    #[test]
    fn flight_ring_records_even_when_disabled() {
        let mut t = NodeTelemetry::disabled(9);
        t.flight(FlightKind::Retry, "link_rewind", 4, 1);
        t.flight(FlightKind::Wedge, "silent_wire", 0, 0);
        assert_eq!(t.flight_recorder().len(), 2);
        let events = t.take_flight();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].node, 9);
        assert_eq!(events[0].kind, FlightKind::Retry);
        assert_eq!(events[1].detail, "silent_wire");
        assert!(t.flight_recorder().is_empty());
    }

    #[test]
    fn node_local_metrics_accumulate() {
        let mut t = NodeTelemetry::with_ring(0, 4);
        t.counter_add("words", 3);
        t.counter_add("words", 4);
        t.gauge_set("flips", 2.0);
        t.observe("lat", 9);
        assert_eq!(t.metrics().counter("words", &[]), 7);
        let (metrics, _) = t.take_parts();
        assert_eq!(metrics.counter("words", &[]), 7);
        assert_eq!(metrics.gauge("flips", &[]), Some(2.0));
        assert_eq!(metrics.histogram("lat", &[]).unwrap().count(), 1);
        assert!(t.metrics().is_empty());
    }
}
