//! Deterministic observability for the QCDOC software twin.
//!
//! The real QCDOC carries a dedicated Ethernet/JTAG diagnostics network
//! (paper §2.2) precisely because a 12,288-node machine is undebuggable
//! without per-node visibility; its performance story (§4) decomposes a
//! Dslash iteration into local compute, nearest-neighbour comms and the
//! global sum. This crate is the twin's version of both: a
//! [`MetricsRegistry`] of named counters/gauges/histograms, cycle-stamped
//! [`Span`] tracing through a pluggable [`TraceSink`], and exporters to
//! Chrome-trace JSON, Prometheus text, and a compact JSON summary.
//!
//! Two properties are load-bearing:
//!
//! * **Deterministic** — all timestamps are logical cycle clocks advanced
//!   by the timing models (never wall time), and every exporter iterates
//!   sorted maps, so identical runs produce byte-identical output.
//! * **Compile-out cheap** — every instrumented call site first checks a
//!   single `enabled` branch ([`NodeTelemetry::is_enabled`]); with the
//!   default [`NullSink`] the whole layer costs a predictable branch per
//!   event, verified by `benches/telemetry_overhead.rs`.
//!
//! The crate deliberately has **zero dependencies** so every other crate
//! in the workspace can depend on it without cycles.

#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod metrics;
pub mod node;
pub mod trace;

pub use export::{bench_summary_json, chrome_trace, phase_summary, prometheus_text, summary_json};
pub use flight::{
    dump_events, FlightDumpGuard, FlightEvent, FlightKind, FlightRecorder, HOST_NODE,
};
pub use metrics::{Histogram, MetricKey, MetricValue, MetricsRegistry};
pub use node::{NodeTelemetry, SpanToken};
pub use trace::{NullSink, Phase, RingSink, Span, TraceSink};

/// Machine-level telemetry: the merge of every node's metrics (stamped
/// with `node="N"` labels), spans, and flight-recorder events, as
/// returned by the execution engines' `*_with_telemetry` entry points.
#[derive(Debug, Default)]
pub struct MachineTelemetry {
    /// Aggregated metrics across all nodes (plus machine-level series).
    pub metrics: MetricsRegistry,
    /// All recorded spans, ordered by node then record order.
    pub spans: Vec<Span>,
    /// All flight-recorder events, ordered by node then record order.
    pub flight: Vec<FlightEvent>,
}

impl MachineTelemetry {
    /// An empty aggregate.
    pub fn new() -> MachineTelemetry {
        MachineTelemetry::default()
    }

    /// Fold one node's telemetry parts into the aggregate: metrics gain a
    /// `node` label, spans are appended.
    pub fn absorb_node(&mut self, node: u32, metrics: MetricsRegistry, spans: Vec<Span>) {
        self.metrics
            .merge_labeled(&metrics, "node", &node.to_string());
        self.spans.extend(spans);
    }

    /// Append one node's flight-recorder events to the machine black box.
    pub fn absorb_flight(&mut self, events: Vec<FlightEvent>) {
        self.flight.extend(events);
    }

    /// Deterministic flight dump, optionally filtered to one node — the
    /// artifact a failed run leaves behind.
    pub fn flight_dump(&self, node: Option<u32>) -> String {
        dump_events(&self.flight, node)
    }

    /// Chrome-trace JSON of all spans.
    pub fn chrome_trace(&self) -> String {
        export::chrome_trace(&self.spans)
    }

    /// Prometheus text dump of all metrics.
    pub fn prometheus_text(&self) -> String {
        export::prometheus_text(&self.metrics)
    }

    /// Combined JSON summary (metrics + phase decomposition).
    pub fn summary_json(&self) -> String {
        export::summary_json(&self.metrics, &self.spans)
    }

    /// Depth-0 phase breakdown `(phase, spans, cycles)`.
    pub fn phase_summary(&self) -> Vec<(Phase, u64, u64)> {
        export::phase_summary(&self.spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_node_labels_metrics_and_appends_spans() {
        let mut machine = MachineTelemetry::new();
        let mut m0 = MetricsRegistry::new();
        m0.counter_add("dma_words", &[], 10);
        let s0 = vec![Span {
            name: "a",
            node: 0,
            phase: Phase::Comms,
            begin: 0,
            end: 5,
            depth: 0,
            arg: 0,
        }];
        machine.absorb_node(0, m0, s0);
        let mut m1 = MetricsRegistry::new();
        m1.counter_add("dma_words", &[], 20);
        machine.absorb_node(1, m1, Vec::new());
        assert_eq!(
            machine
                .metrics
                .counter("dma_words", &[("node", "0".to_string())]),
            10
        );
        assert_eq!(
            machine
                .metrics
                .counter("dma_words", &[("node", "1".to_string())]),
            20
        );
        assert_eq!(machine.spans.len(), 1);
        assert_eq!(machine.phase_summary(), vec![(Phase::Comms, 1, 5)]);
        assert!(machine.chrome_trace().contains("\"pid\":0"));
        assert!(machine
            .prometheus_text()
            .contains("dma_words{node=\"0\"} 10"));
        assert!(machine.summary_json().contains("\"spans_total\": 1"));
    }
}
