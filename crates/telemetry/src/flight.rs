//! Per-node flight recorder: the black box of the machine.
//!
//! The real QCDOC is debugged over its Ethernet/JTAG diagnostics tree
//! (paper §2.2); when a 12,288-node job dies, the question is always
//! "what happened on *that* node in the seconds before?". The flight
//! recorder answers it from the failure artifact instead of a rerun: a
//! bounded ring of cycle-stamped structured events — fault injections,
//! link retries, block rejects, machine checks, quarantines, preemptions,
//! checkpoints, rollbacks — recorded on the exceptional paths of the
//! scu/fault/core/host layers. It is *always on* (unlike span tracing):
//! the events are rare by construction, the ring is bounded, and a black
//! box that has to be enabled in advance records nothing the day it
//! matters.
//!
//! Dumps are deterministic text, one line per event, filterable by node —
//! the `qflight <node>` qcsh verb and the end-of-soak artifacts both
//! render through [`dump_events`].

use std::collections::VecDeque;

/// Synthetic node id used for machine-level events (scheduler decisions,
/// host quarantines) that belong to no single node.
pub const HOST_NODE: u32 = u32::MAX;

/// What happened. Every kind has a stable lowercase name used by the
/// dump format and asserted on by the acceptance tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlightKind {
    /// A fault-plan event fired (corrupted or dropped frame, memory flip).
    FaultInjected,
    /// A link-level go-back-N rewind (parity reject forced a resend).
    Retry,
    /// An end-to-end block-checksum mismatch forced a whole-block replay.
    BlockReject,
    /// An uncorrectable (2-bit) ECC error latched a machine check.
    MachineCheck,
    /// A transfer gave up waiting on a silent wire and wedged the node.
    Wedge,
    /// The fault plan crashed this node mid-run.
    Crash,
    /// The host quarantined a node out of the boot map.
    Quarantine,
    /// The scheduler evicted a running job from its partition.
    Preemption,
    /// A checkpoint was captured (CG state or scheduler job blob).
    Checkpoint,
    /// A solver rolled its state back to a verified snapshot.
    Rollback,
    /// A preempted or interrupted computation resumed.
    Resume,
    /// A quarantined node moved through the repair pipeline (scrub,
    /// burn-in, return-to-service, blacklist).
    Repair,
    /// Anything else worth a line in the black box.
    Info,
}

impl FlightKind {
    /// Stable lowercase name used by the dump format.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::FaultInjected => "fault_injected",
            FlightKind::Retry => "retry",
            FlightKind::BlockReject => "block_reject",
            FlightKind::MachineCheck => "machine_check",
            FlightKind::Wedge => "wedge",
            FlightKind::Crash => "crash",
            FlightKind::Quarantine => "quarantine",
            FlightKind::Preemption => "preemption",
            FlightKind::Checkpoint => "checkpoint",
            FlightKind::Rollback => "rollback",
            FlightKind::Resume => "resume",
            FlightKind::Repair => "repair",
            FlightKind::Info => "info",
        }
    }
}

/// One cycle-stamped structured event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Recorder-local sequence number (record order, monotone).
    pub seq: u64,
    /// Logical cycle at record time (0 when the recording layer keeps no
    /// clock — the sequence number still orders events).
    pub cycle: u64,
    /// Node the event happened on ([`HOST_NODE`] for machine-level ones).
    pub node: u32,
    /// What happened.
    pub kind: FlightKind,
    /// Static detail tag, e.g. `"link_rewind"` or `"abft_audit"`.
    pub detail: &'static str,
    /// First free-form argument (link index, job id, address, …).
    pub a: u64,
    /// Second free-form argument (count, iteration, bit, …).
    pub b: u64,
}

impl FlightEvent {
    /// Render as one deterministic dump line.
    pub fn render(&self) -> String {
        let node = if self.node == HOST_NODE {
            "host".to_string()
        } else {
            self.node.to_string()
        };
        format!(
            "#{:06} @{} node={} {} {} a={} b={}",
            self.seq,
            self.cycle,
            node,
            self.kind.name(),
            self.detail,
            self.a,
            self.b
        )
    }
}

/// Render events as a deterministic multi-line dump, optionally filtered
/// to one node. The shared formatter behind every flight artifact.
pub fn dump_events(events: &[FlightEvent], node: Option<u32>) -> String {
    let mut out = String::new();
    let mut shown = 0usize;
    for ev in events {
        if node.is_some_and(|n| ev.node != n) {
            continue;
        }
        out.push_str(&ev.render());
        out.push('\n');
        shown += 1;
    }
    if shown == 0 {
        out.push_str("(no flight events)\n");
    }
    out
}

/// Bounded ring of [`FlightEvent`]s: keeps the most recent `capacity`
/// events (the ones *before* a failure are the ones that explain it, so
/// eviction drops the oldest) and counts what it had to shed.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    buf: VecDeque<FlightEvent>,
    next_seq: u64,
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FlightRecorder::DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Default per-node ring depth: enough for every exceptional event a
    /// plausible failure leaves behind, small enough to be free at scale.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A ring retaining at most `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(256)),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Record one event, stamping record order.
    pub fn record(
        &mut self,
        node: u32,
        cycle: u64,
        kind: FlightKind,
        detail: &'static str,
        a: u64,
        b: u64,
    ) {
        let ev = FlightEvent {
            seq: self.next_seq,
            cycle,
            node,
            kind,
            detail,
            a,
            b,
        };
        self.next_seq += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Absorb foreign events (e.g. a node ring merging into the host's
    /// machine-level recorder), preserving their node/cycle/kind but
    /// re-stamping the sequence in arrival order.
    pub fn ingest(&mut self, events: &[FlightEvent]) {
        for ev in events {
            self.record(ev.node, ev.cycle, ev.kind, ev.detail, ev.a, ev.b);
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were evicted (or refused by a zero-capacity ring).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.buf.iter()
    }

    /// Remove and return everything retained, oldest first.
    pub fn drain(&mut self) -> Vec<FlightEvent> {
        self.buf.drain(..).collect()
    }

    /// Deterministic text dump, optionally filtered to one node.
    pub fn dump(&self, node: Option<u32>) -> String {
        let events: Vec<FlightEvent> = self.buf.iter().copied().collect();
        dump_events(&events, node)
    }
}

/// Writes a flight dump to a file if the surrounding scope panics — how
/// acceptance and soak tests turn an assertion failure into a black-box
/// artifact instead of a bare backtrace.
///
/// Feed it events as they become available with
/// [`FlightDumpGuard::extend`]; on a clean drop nothing is written.
#[derive(Debug)]
pub struct FlightDumpGuard {
    path: std::path::PathBuf,
    events: Vec<FlightEvent>,
}

impl FlightDumpGuard {
    /// Guard that will dump to `path` on panic.
    pub fn new(path: impl Into<std::path::PathBuf>) -> FlightDumpGuard {
        FlightDumpGuard {
            path: path.into(),
            events: Vec::new(),
        }
    }

    /// Append events to what a panic-time dump would contain.
    pub fn extend(&mut self, events: &[FlightEvent]) {
        self.events.extend_from_slice(events);
    }

    /// Events currently staged for a panic-time dump.
    pub fn staged(&self) -> &[FlightEvent] {
        &self.events
    }
}

impl Drop for FlightDumpGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let dump = dump_events(&self.events, None);
            // Best effort: a failed write must not shadow the panic that
            // triggered the dump.
            let _ = std::fs::write(&self.path, dump);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_orders_and_bounds_events() {
        let mut rec = FlightRecorder::new(2);
        rec.record(0, 10, FlightKind::Retry, "link_rewind", 3, 1);
        rec.record(0, 20, FlightKind::BlockReject, "block_checksum", 3, 1);
        rec.record(1, 30, FlightKind::Wedge, "silent_wire", 0, 0);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 1);
        let seqs: Vec<u64> = rec.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        let dump = rec.dump(None);
        assert!(dump.contains("block_reject block_checksum a=3 b=1"));
        assert!(dump.contains("wedge silent_wire"));
        assert!(!dump.contains("retry link_rewind"), "oldest evicted");
    }

    #[test]
    fn dump_filters_by_node_and_names_host() {
        let mut rec = FlightRecorder::new(8);
        rec.record(2, 5, FlightKind::FaultInjected, "wire", 0, 7);
        rec.record(HOST_NODE, 6, FlightKind::Quarantine, "mark_faulty", 2, 0);
        let only2 = rec.dump(Some(2));
        assert!(only2.contains("node=2 fault_injected"));
        assert!(!only2.contains("quarantine"));
        assert!(rec.dump(None).contains("node=host quarantine mark_faulty"));
        assert_eq!(rec.dump(Some(9)), "(no flight events)\n");
    }

    #[test]
    fn ingest_restamps_sequence() {
        let mut node_ring = FlightRecorder::new(8);
        node_ring.record(4, 100, FlightKind::Checkpoint, "cg_state", 5, 0);
        let mut host = FlightRecorder::new(8);
        host.record(HOST_NODE, 0, FlightKind::Info, "boot", 0, 0);
        host.ingest(&node_ring.drain());
        let seqs: Vec<(u64, u32)> = host.events().map(|e| (e.seq, e.node)).collect();
        assert_eq!(seqs, vec![(0, HOST_NODE), (1, 4)]);
    }

    #[test]
    fn zero_capacity_ring_refuses_everything() {
        let mut rec = FlightRecorder::new(0);
        rec.record(0, 0, FlightKind::Info, "x", 0, 0);
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 1);
    }

    #[test]
    fn dump_guard_writes_only_on_panic() {
        let dir = std::env::temp_dir().join("qcdoc_flight_guard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.txt");
        let _ = std::fs::remove_file(&clean);
        {
            let mut g = FlightDumpGuard::new(&clean);
            g.extend(&[FlightEvent {
                seq: 0,
                cycle: 0,
                node: 0,
                kind: FlightKind::Info,
                detail: "x",
                a: 0,
                b: 0,
            }]);
        }
        assert!(!clean.exists(), "clean drop must not write");

        let panicked = dir.join("panicked.txt");
        let _ = std::fs::remove_file(&panicked);
        let panicked_in = panicked.clone();
        let result = std::panic::catch_unwind(move || {
            let mut g = FlightDumpGuard::new(&panicked_in);
            g.extend(&[FlightEvent {
                seq: 0,
                cycle: 42,
                node: 3,
                kind: FlightKind::Crash,
                detail: "node_crash",
                a: 1,
                b: 0,
            }]);
            panic!("boom");
        });
        assert!(result.is_err());
        let dump = std::fs::read_to_string(&panicked).expect("panic dump written");
        assert!(dump.contains("node=3 crash node_crash"));
    }
}
