//! Mesh cabling: which links live on printed circuit and which need the
//! external cables of the §4 purchase order.
//!
//! §2.4: "the motherboard provides a matched impedance path from the
//! ASIC's, through the motherboards, through external cables, onto another
//! motherboard and to the destination ASIC. No redrive is done for these
//! signals." Every motherboard is a 2⁶ hypercube of nodes, so a machine of
//! shape `d₀×…×d₅` is a *board grid* of shape `d₀/2 × … × d₅/2`; mesh
//! links between boards leave the PCB and ride cables.
//!
//! Counting for the 4096-node machine (8×8×4×4×2×2 → board grid
//! 4×4×2×2×1×1): each board-to-board adjacency carries one face of
//! 2⁵ = 32 node links, there are 256 such adjacencies (ring wraps
//! included), and the purchase order lists **768 cables — exactly three
//! per face bundle** (32 bidirectional bit-serial links split across three
//! connectors). That identity is asserted in the tests.

use qcdoc_geometry::TorusShape;
use serde::{Deserialize, Serialize};

/// Cables per motherboard-face bundle (32 node links across three
/// connectors, from the §4 cable count).
pub const CABLES_PER_FACE: usize = 3;

/// Node links crossing one board face (the 2⁵ nodes of a hypercube face).
pub const LINKS_PER_FACE: usize = 32;

/// The wiring breakdown of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Wiring {
    /// Node-level mesh links routed on motherboard PCB.
    pub onboard_links: usize,
    /// Node-level mesh links that leave the board.
    pub external_links: usize,
    /// Board-to-board face adjacencies (cable bundles).
    pub faces: usize,
    /// External cables (3 per face).
    pub cables: usize,
}

/// Compute the wiring of a machine whose motherboards are 2⁶ hypercubes.
/// Every machine extent must be 1 or an even multiple of 2 (boards span 2
/// nodes per axis; extent-1 axes stay inside a board trivially).
pub fn wiring(machine: &TorusShape) -> Wiring {
    let rank = machine.rank();
    // Board grid extents: half the machine extent on spanned axes.
    let grid: Vec<usize> = (0..rank)
        .map(|a| {
            let e = machine.extent(a);
            if e == 1 {
                1
            } else {
                assert!(
                    e.is_multiple_of(2),
                    "machine extent {e} not board-divisible on axis {a}"
                );
                e / 2
            }
        })
        .collect();
    let nodes = machine.node_count();
    let mut onboard = 0usize;
    let mut external = 0usize;
    let mut faces = 0usize;
    for a in 0..rank {
        let e = machine.extent(a);
        if e == 1 {
            continue;
        }
        // Undirected node links along this axis: one per node for rings of
        // length ≥ 3; extent-2 rings have two distinct physical connections
        // between each node pair (the +1 and −1 cables coincide in
        // endpoints but the torus provides both, realized as a doubled
        // connection — counted once as a link here, as the schematic does).
        let axis_links = if e == 2 { nodes / 2 } else { nodes };
        // A link is on-board when it stays within a board along this axis:
        // local coordinate 0 -> 1. That is half of all links on axes the
        // board spans fully... precisely: of the e links around each ring,
        // e/2 connect 2k -> 2k+1 (on board) for rings of even length.
        let rings = nodes / e;
        let (on, ext) = if e == 2 {
            // The single node pair sits on one board.
            (axis_links, 0)
        } else {
            (rings * (e / 2), axis_links - rings * (e / 2))
        };
        onboard += on;
        external += ext;
        // Face bundles: ring gaps at board granularity x the other grid
        // extents. A board ring of length g has g gaps (g = 2 gives two
        // separate physical connections between the same board pair).
        let g = grid[a];
        if g > 1 {
            let others: usize = (0..rank).filter(|&b| b != a).map(|b| grid[b]).product();
            faces += g * others;
        }
    }
    Wiring {
        onboard_links: onboard,
        external_links: external,
        faces,
        cables: faces * CABLES_PER_FACE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn columbia_4096_needs_exactly_768_cables() {
        // §4: "the 768 cables for the mesh network cost $71,040."
        let spec = catalog::by_name("columbia-4096").unwrap();
        let w = wiring(&spec.shape);
        assert_eq!(w.faces, 256);
        assert_eq!(w.cables, 768, "{w:?}");
    }

    #[test]
    fn face_bundles_carry_32_links() {
        let spec = catalog::by_name("columbia-4096").unwrap();
        let w = wiring(&spec.shape);
        assert_eq!(w.external_links, w.faces * LINKS_PER_FACE, "{w:?}");
    }

    #[test]
    fn single_motherboard_needs_no_cables() {
        let w = wiring(&qcdoc_geometry::TorusShape::motherboard_64());
        assert_eq!(w.cables, 0);
        assert_eq!(w.external_links, 0);
        // 6 axes x 32 node pairs on board.
        assert_eq!(w.onboard_links, 6 * 32);
    }

    #[test]
    fn rack_cabling() {
        // 8x4x4x2x2x2 -> board grid 4x2x2x1x1x1: 16 + 16 + 16 = 48 face
        // bundles, 144 cables.
        let w = wiring(&qcdoc_geometry::TorusShape::rack_1024());
        assert_eq!(w.faces, 48);
        assert_eq!(w.cables, 144);
    }

    #[test]
    fn bigger_machines_need_more_cables() {
        let small = wiring(&qcdoc_geometry::TorusShape::rack_1024());
        let big = wiring(&catalog::by_name("rbrc-12288").unwrap().shape);
        assert!(big.cables > small.cables);
        assert!(big.external_links > small.external_links);
    }

    #[test]
    #[should_panic(expected = "not board-divisible")]
    fn odd_extents_rejected() {
        let _ = wiring(&qcdoc_geometry::TorusShape::new(&[6, 3]));
    }
}
