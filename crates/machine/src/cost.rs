//! The cost model — §4's purchase-order accounting, to the cent.
//!
//! Every number here is quoted directly from the paper: "The 2048
//! daughterboards cost $1,105,692.67 … the 64 mother boards cost
//! $180,404.88, the four water cooled cabinets cost $187,296 and the 768
//! cables for the mesh network cost $71,040. Awaiting final accounting,
//! the host computer, Ethernet switches and disks should cost $64,300 …
//! for a total machine cost of $1,610,442. The design and prototyping
//! costs … were $2,166,000 … this represents an additional cost of
//! $99,159 giving a total cost of this 4096-node machine of $1,709,601."

use crate::packaging::MachineAssembly;
use serde::{Deserialize, Serialize};

/// Purchase-order line items of the 4096-node Columbia machine (§4).
pub mod columbia_4096 {
    /// 2048 daughterboards (half with 128 MB DIMMs, half with 256 MB).
    pub const DAUGHTERBOARDS: f64 = 1_105_692.67;
    /// 64 motherboards.
    pub const MOTHERBOARDS: f64 = 180_404.88;
    /// Four water-cooled cabinets.
    pub const CABINETS: f64 = 187_296.0;
    /// 768 mesh cables.
    pub const CABLES: f64 = 71_040.0;
    /// Host computer, Ethernet switches, disks (6 TB parallel RAID).
    pub const HOST_AND_IO: f64 = 64_300.0;
    /// The paper's quoted total (its own rounding of the items above plus
    /// final accounting).
    pub const QUOTED_TOTAL: f64 = 1_610_442.0;
    /// Full R&D (design and prototyping), excluding academic salaries.
    pub const RND_TOTAL: f64 = 2_166_000.0;
    /// R&D share prorated onto this machine over all funded QCDOC
    /// machines.
    pub const RND_PRORATED: f64 = 99_159.0;
    /// The paper's all-in total.
    pub const QUOTED_TOTAL_WITH_RND: f64 = 1_709_601.0;
    /// Number of mesh cables.
    pub const CABLE_COUNT: usize = 768;
}

/// A cost model scaled from the Columbia per-unit prices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost per daughterboard (2 nodes + DIMMs).
    pub per_daughterboard: f64,
    /// Cost per motherboard.
    pub per_motherboard: f64,
    /// Cost per water-cooled cabinet (rack).
    pub per_cabinet: f64,
    /// Cost per mesh cable.
    pub per_cable: f64,
    /// Cables per rack (768 cables / 4 racks on the Columbia machine).
    pub cables_per_rack: f64,
    /// Host + Ethernet + disks per 4096 nodes.
    pub host_per_4096_nodes: f64,
    /// Multiplier for the volume discount on large part orders (§4: "For
    /// the full size 12,288 machines, the cost per node will be reduced,
    /// due to the discount from volume ordering").
    pub volume_discount: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        use columbia_4096 as c;
        CostModel {
            per_daughterboard: c::DAUGHTERBOARDS / 2048.0,
            per_motherboard: c::MOTHERBOARDS / 64.0,
            per_cabinet: c::CABINETS / 4.0,
            per_cable: c::CABLES / c::CABLE_COUNT as f64,
            cables_per_rack: c::CABLE_COUNT as f64 / 4.0,
            host_per_4096_nodes: c::HOST_AND_IO,
            volume_discount: 1.0,
        }
    }
}

/// Itemized cost of one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Daughterboard line.
    pub daughterboards: f64,
    /// Motherboard line.
    pub motherboards: f64,
    /// Cabinet line.
    pub cabinets: f64,
    /// Mesh-cable line.
    pub cables: f64,
    /// Host, Ethernet, disks.
    pub host_and_io: f64,
    /// Prorated R&D share.
    pub rnd_share: f64,
}

impl CostBreakdown {
    /// Hardware total (no R&D).
    pub fn hardware_total(&self) -> f64 {
        self.daughterboards + self.motherboards + self.cabinets + self.cables + self.host_and_io
    }

    /// All-in total.
    pub fn total(&self) -> f64 {
        self.hardware_total() + self.rnd_share
    }

    /// Render the §4 itemization.
    pub fn render(&self) -> String {
        format!(
            "daughterboards  ${:>12.2}\nmotherboards    ${:>12.2}\ncabinets        ${:>12.2}\n\
             mesh cables     ${:>12.2}\nhost + I/O      ${:>12.2}\nhardware total  ${:>12.2}\n\
             R&D (prorated)  ${:>12.2}\ntotal           ${:>12.2}\n",
            self.daughterboards,
            self.motherboards,
            self.cabinets,
            self.cables,
            self.host_and_io,
            self.hardware_total(),
            self.rnd_share,
            self.total()
        )
    }
}

impl CostModel {
    /// Cost of a machine, with the R&D share prorated at the Columbia
    /// machine's ratio per node.
    pub fn breakdown(&self, m: &MachineAssembly) -> CostBreakdown {
        let d = self.volume_discount;
        CostBreakdown {
            daughterboards: m.daughterboards() as f64 * self.per_daughterboard * d,
            motherboards: m.motherboards() as f64 * self.per_motherboard * d,
            cabinets: m.racks() as f64 * self.per_cabinet,
            cables: m.racks() as f64 * self.cables_per_rack * self.per_cable,
            host_and_io: m.nodes as f64 / 4096.0 * self.host_per_4096_nodes,
            rnd_share: m.nodes as f64 / 4096.0 * columbia_4096::RND_PRORATED,
        }
    }
}

/// Price/performance at an operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricePerformance {
    /// Clock in MHz.
    pub clock_mhz: f64,
    /// Sustained efficiency (fraction of peak) on the Dirac CG.
    pub efficiency: f64,
    /// Total machine cost in dollars.
    pub total_cost: f64,
    /// Node count.
    pub nodes: usize,
}

impl PricePerformance {
    /// Sustained speed in Megaflops.
    pub fn sustained_mflops(&self) -> f64 {
        self.nodes as f64 * 2.0 * self.clock_mhz * self.efficiency
    }

    /// Dollars per sustained Megaflops — the paper's headline metric.
    pub fn dollars_per_mflops(&self) -> f64 {
        self.total_cost / self.sustained_mflops()
    }
}

/// The paper's own price/performance table for the 4096-node machine at
/// 45% CG efficiency: (clock MHz, quoted $/MF).
pub const PAPER_PRICE_PERF: [(f64, f64); 3] = [(360.0, 1.29), (420.0, 1.10), (450.0, 1.03)];

#[cfg(test)]
mod tests {
    use super::*;

    fn columbia() -> MachineAssembly {
        MachineAssembly::new(4096)
    }

    #[test]
    fn itemized_hardware_total_matches_quote() {
        let b = CostModel::default().breakdown(&columbia());
        use columbia_4096 as c;
        assert!((b.daughterboards - c::DAUGHTERBOARDS).abs() < 0.01);
        assert!((b.motherboards - c::MOTHERBOARDS).abs() < 0.01);
        assert!((b.cabinets - c::CABINETS).abs() < 0.01);
        assert!((b.cables - c::CABLES).abs() < 0.01);
        assert!((b.host_and_io - c::HOST_AND_IO).abs() < 0.01);
        // The paper's quoted total differs from the sum of its own items
        // by ~0.1% ("awaiting final accounting"); we require agreement to
        // that tolerance.
        let rel = (b.hardware_total() - c::QUOTED_TOTAL).abs() / c::QUOTED_TOTAL;
        assert!(
            rel < 0.002,
            "hardware total {} vs quoted {}",
            b.hardware_total(),
            c::QUOTED_TOTAL
        );
    }

    #[test]
    fn rnd_proration_matches_quote() {
        let b = CostModel::default().breakdown(&columbia());
        assert!((b.rnd_share - columbia_4096::RND_PRORATED).abs() < 0.01);
        let rel = (b.total() - columbia_4096::QUOTED_TOTAL_WITH_RND).abs()
            / columbia_4096::QUOTED_TOTAL_WITH_RND;
        assert!(
            rel < 0.002,
            "total {} vs quoted {}",
            b.total(),
            columbia_4096::QUOTED_TOTAL_WITH_RND
        );
    }

    #[test]
    fn price_performance_reproduces_paper_table() {
        // Using the paper's own inputs (total $1,709,601, 45% efficiency),
        // the three quoted operating points come out exactly (to the cent
        // of their 2-decimal rounding).
        for (clock, quoted) in PAPER_PRICE_PERF {
            let pp = PricePerformance {
                clock_mhz: clock,
                efficiency: 0.45,
                total_cost: columbia_4096::QUOTED_TOTAL_WITH_RND,
                nodes: 4096,
            };
            let got = pp.dollars_per_mflops();
            assert!(
                (got - quoted).abs() < 0.005,
                "{clock} MHz: computed ${got:.4}/MF, paper says ${quoted}"
            );
        }
    }

    #[test]
    fn volume_discount_approaches_one_dollar_at_12288() {
        // §4: "This should put us very close to our targeted $1 per
        // sustained Megaflops" for the 12,288-node machines. A modest ~7%
        // parts discount at 3x volume does it at 450 MHz.
        let mut model = CostModel {
            volume_discount: 0.93,
            ..Default::default()
        };
        model.host_per_4096_nodes = columbia_4096::HOST_AND_IO; // scales with nodes
        let m = MachineAssembly::new(12_288);
        let b = model.breakdown(&m);
        let pp = PricePerformance {
            clock_mhz: 450.0,
            efficiency: 0.45,
            total_cost: b.total(),
            nodes: 12_288,
        };
        let dpm = pp.dollars_per_mflops();
        assert!(dpm < 1.05, "12,288-node price/perf ${dpm:.3}/MF");
        assert!(dpm > 0.85, "discount model too optimistic: ${dpm:.3}/MF");
    }

    #[test]
    fn sustained_speed_arithmetic() {
        let pp = PricePerformance {
            clock_mhz: 450.0,
            efficiency: 0.45,
            total_cost: 1.0,
            nodes: 4096,
        };
        // 4096 x 0.9 Gflops x 0.45 = 1,658,880 MF.
        assert!((pp.sustained_mflops() - 1_658_880.0).abs() < 1.0);
    }

    #[test]
    fn render_contains_all_lines() {
        let b = CostModel::default().breakdown(&columbia());
        let r = b.render();
        for needle in ["daughterboards", "mesh cables", "R&D", "total"] {
            assert!(r.contains(needle));
        }
    }
}
