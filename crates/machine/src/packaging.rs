//! The packaging hierarchy — structural reproduction of Figures 3–5.
//!
//! §2.4: two ASICs and their DIMMs on a 3"×6.5" daughterboard (~20 W for
//! both nodes); 32 daughterboards on a 14.5"×27" motherboard wired as a
//! 2⁶ hypercube; eight motherboards per crate; two crates per water-cooled
//! rack — 1024 nodes, 1.0 Tflops peak, under 10 kW, stackable so "10,000
//! nodes \[have\] a footprint of about 60 square feet".

use serde::{Deserialize, Serialize};

/// Nodes on one daughterboard.
pub const NODES_PER_DAUGHTERBOARD: usize = 2;
/// Daughterboards on one motherboard.
pub const DAUGHTERBOARDS_PER_MOTHERBOARD: usize = 32;
/// Nodes on one motherboard (a 2⁶ hypercube).
pub const NODES_PER_MOTHERBOARD: usize = 64;
/// Motherboards per crate.
pub const MOTHERBOARDS_PER_CRATE: usize = 8;
/// Crates per rack.
pub const CRATES_PER_RACK: usize = 2;
/// Nodes per rack.
pub const NODES_PER_RACK: usize = 1024;

/// Power draw of one daughterboard (both nodes + DRAM), watts.
pub const DAUGHTERBOARD_WATTS: f64 = 20.0;
/// Rack power budget, watts ("consumes less than 10,000 watts").
pub const RACK_WATTS_LIMIT: f64 = 10_000.0;
/// Peak rack speed at the 500 MHz design clock, flops.
pub const RACK_PEAK_FLOPS: f64 = 1.0e12;
/// Footprint of ~10,000 nodes in square feet (§2.4).
pub const FOOTPRINT_10K_NODES_SQFT: f64 = 60.0;

/// Dimensions of one daughterboard in inches.
pub const DAUGHTERBOARD_INCHES: (f64, f64) = (3.0, 6.5);
/// Dimensions of one motherboard in inches.
pub const MOTHERBOARD_INCHES: (f64, f64) = (14.5, 27.0);
/// DC rails supplied on the daughterboard, volts.
pub const DC_RAILS_VOLTS: [f64; 3] = [1.8, 2.5, 3.3];
/// Supply voltage delivered to the motherboard's DC-DC converters.
pub const MOTHERBOARD_SUPPLY_VOLTS: f64 = 48.0;
/// The motherboard-distributed global clock, MHz (≈40 MHz, §2.4).
pub const GLOBAL_CLOCK_MHZ: f64 = 40.0;

/// A machine assembled from the packaging hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineAssembly {
    /// Total node count.
    pub nodes: usize,
}

impl MachineAssembly {
    /// Assemble a machine of `nodes` nodes (must be a multiple of 2).
    pub fn new(nodes: usize) -> MachineAssembly {
        assert!(nodes >= 2 && nodes.is_multiple_of(NODES_PER_DAUGHTERBOARD));
        MachineAssembly { nodes }
    }

    /// Daughterboards required.
    pub fn daughterboards(&self) -> usize {
        self.nodes / NODES_PER_DAUGHTERBOARD
    }

    /// Motherboards required (whole boards).
    pub fn motherboards(&self) -> usize {
        self.nodes.div_ceil(NODES_PER_MOTHERBOARD)
    }

    /// Crates required.
    pub fn crates(&self) -> usize {
        self.motherboards().div_ceil(MOTHERBOARDS_PER_CRATE)
    }

    /// Racks required.
    pub fn racks(&self) -> usize {
        self.crates().div_ceil(CRATES_PER_RACK)
    }

    /// Total power in watts (daughterboard draw; converters folded in).
    pub fn power_watts(&self) -> f64 {
        self.daughterboards() as f64 * DAUGHTERBOARD_WATTS
    }

    /// Peak speed in flops at a given clock in MHz (2 flops/cycle/node).
    pub fn peak_flops(&self, clock_mhz: f64) -> f64 {
        self.nodes as f64 * 2.0 * clock_mhz * 1.0e6
    }

    /// Machine floor footprint in square feet (stacked water-cooled racks,
    /// scaled from the paper's 10,000-node ≈ 60 ft² figure).
    pub fn footprint_sqft(&self) -> f64 {
        self.nodes as f64 / 10_000.0 * FOOTPRINT_10K_NODES_SQFT
    }

    /// Render the packaging tree (the textual stand-in for the Figure 3–5
    /// photographs).
    pub fn render_tree(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "machine: {} nodes, {:.1} kW, {:.0} ft², peak {:.1} Tflops @500 MHz\n",
            self.nodes,
            self.power_watts() / 1000.0,
            self.footprint_sqft(),
            self.peak_flops(500.0) / 1e12,
        ));
        s.push_str(&format!(
            "└─ {} rack(s)   [Fig 5: water-cooled, {} nodes, 1.0 Tflops, <10 kW each]\n",
            self.racks(),
            NODES_PER_RACK
        ));
        s.push_str(&format!(
            "   └─ {} crate(s) ({} motherboards each)\n",
            self.crates(),
            MOTHERBOARDS_PER_CRATE
        ));
        s.push_str(&format!(
            "      └─ {} motherboard(s) [Fig 4: {}\"×{}\", 64 nodes as a 2^6 hypercube, 48 V in]\n",
            self.motherboards(),
            MOTHERBOARD_INCHES.0,
            MOTHERBOARD_INCHES.1
        ));
        s.push_str(&format!(
            "         └─ {} daughterboard(s) [Fig 3: {}\"×{}\", 2 ASICs + 2 DIMMs + hub, ~{} W]\n",
            self.daughterboards(),
            DAUGHTERBOARD_INCHES.0,
            DAUGHTERBOARD_INCHES.1,
            DAUGHTERBOARD_WATTS
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_arithmetic() {
        assert_eq!(
            NODES_PER_DAUGHTERBOARD * DAUGHTERBOARDS_PER_MOTHERBOARD,
            NODES_PER_MOTHERBOARD
        );
        assert_eq!(
            NODES_PER_MOTHERBOARD * MOTHERBOARDS_PER_CRATE * CRATES_PER_RACK,
            NODES_PER_RACK
        );
    }

    #[test]
    fn columbia_4096_machine() {
        // §4: "The 2048 daughterboards … the 64 mother boards … the four
        // water cooled cabinets".
        let m = MachineAssembly::new(4096);
        assert_eq!(m.daughterboards(), 2048);
        assert_eq!(m.motherboards(), 64);
        assert_eq!(m.racks(), 4);
    }

    #[test]
    fn rack_is_one_teraflops_under_10kw() {
        let rack = MachineAssembly::new(NODES_PER_RACK);
        // 1024 x 1 Gflops = 1.024 Tflops; the paper rounds to "1.0".
        assert!((rack.peak_flops(500.0) / RACK_PEAK_FLOPS - 1.0).abs() < 0.03);
        // 512 daughterboards at "about 20 Watts" ≈ 10.2 kW nominal; the
        // paper quotes both "about 20 W" and "less than 10,000 watts", so
        // consistency only holds to the rounding of the 20 W figure.
        assert!(
            rack.power_watts() < 1.05 * RACK_WATTS_LIMIT,
            "rack draws {} W",
            rack.power_watts()
        );
    }

    #[test]
    fn big_machine_footprint() {
        // "10,000 nodes to have a footprint of about 60 square feet."
        let m = MachineAssembly::new(10_000);
        assert!((m.footprint_sqft() - 60.0).abs() < 1e-9);
        let big = MachineAssembly::new(12_288);
        assert!(big.footprint_sqft() < 80.0);
    }

    #[test]
    fn twelve_k_machine_is_ten_teraflops() {
        // The title claim: 12,288 nodes, 10+ Teraflops.
        let m = MachineAssembly::new(12_288);
        assert!(m.peak_flops(500.0) >= 10.0e12);
        assert_eq!(m.racks(), 12);
    }

    #[test]
    fn render_tree_mentions_figures() {
        let m = MachineAssembly::new(1024);
        let t = m.render_tree();
        for needle in ["Fig 3", "Fig 4", "Fig 5", "2^6 hypercube", "water-cooled"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    #[should_panic]
    fn odd_node_count_rejected() {
        let _ = MachineAssembly::new(7);
    }
}
