//! QCDOC physical machines: packaging, power, footprint and cost.
//!
//! The paper's §2.4 describes the packaging hierarchy (two-node
//! daughterboards → 64-node motherboards → 8-motherboard crates →
//! 1024-node water-cooled racks) and §4 itemizes, to the dollar, the
//! purchase orders of the 4096-node Columbia machine and derives the
//! headline price/performance: "$1.29 per sustained Megaflops for 360 MHz
//! operation, $1.10 … for 420 MHz … and $1.03 … for 450 MHz", approaching
//! $1/MF at the 12,288-node scale.
//!
//! * [`packaging`] — the structural models behind Figures 3–5;
//! * [`cost`] — the purchase-order cost model and the price/performance
//!   calculator (experiment E3);
//! * [`catalog`] — the machines the paper mentions, from the 64-node
//!   bring-up box to the three 12,288-node installations;
//! * [`schematic`] — the Figure 2 network schematic as data + ASCII.

#![warn(missing_docs)]

pub mod catalog;
pub mod cost;
pub mod packaging;
pub mod schematic;
pub mod wiring;

pub use catalog::MachineSpec;
pub use cost::{CostModel, PricePerformance};
pub use packaging::MachineAssembly;
