//! The Figure 2 network schematic as data plus an ASCII rendering.
//!
//! Figure 2 shows three overlaid structures: the SCU-driven 6-D mesh among
//! processing nodes (red), the Ethernet tree through hubs to the host and
//! disks (green), and the host with its disk switches. We reproduce it as
//! a machine-readable edge inventory and a printable diagram.

use qcdoc_geometry::{Axis, NodeId, TorusShape};
use serde::{Deserialize, Serialize};

/// The networks of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Network {
    /// The SCU 6-D mesh (physics traffic).
    ScuMesh,
    /// The Ethernet tree (boot, diagnostics, I/O).
    Ethernet,
}

/// An edge of the machine graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Edge {
    /// Mesh link between two nodes.
    Mesh {
        /// One endpoint.
        a: NodeId,
        /// Other endpoint.
        b: NodeId,
    },
    /// Ethernet uplink from a node to its hub.
    NodeToHub {
        /// The node.
        node: NodeId,
        /// Hub index.
        hub: u32,
    },
    /// Hub to host trunk.
    HubToHost {
        /// Hub index.
        hub: u32,
    },
    /// Host to a disk switch.
    HostToDisk {
        /// Disk switch index.
        disk: u32,
    },
}

/// Enumerate the mesh edges of a machine (each physical cable once).
pub fn mesh_edges(shape: &TorusShape) -> Vec<Edge> {
    let mut edges = Vec::new();
    for c in shape.coords() {
        for axis in 0..shape.rank() {
            if shape.extent(axis) == 1 {
                continue;
            }
            let nb = shape.neighbour(c, Axis(axis as u8).plus());
            let a = shape.rank_of(c);
            let b = shape.rank_of(nb);
            // extent-2 axes give a == plus neighbour == minus neighbour;
            // that is still one cable.
            if shape.extent(axis) == 2 && a > b {
                continue; // counted from the lower-ranked end
            }
            edges.push(Edge::Mesh { a, b });
        }
    }
    edges
}

/// Build the full Figure 2 edge inventory: mesh + Ethernet tree + host +
/// disks. One hub per daughterboard (2 nodes), one disk switch per 8
/// hubs' worth of nodes (schematic scale, as in the figure).
pub fn full_schematic(shape: &TorusShape) -> Vec<Edge> {
    let mut edges = mesh_edges(shape);
    let nodes = shape.node_count();
    let hubs = nodes.div_ceil(2) as u32;
    for n in 0..nodes {
        edges.push(Edge::NodeToHub {
            node: NodeId(n as u32),
            hub: n as u32 / 2,
        });
    }
    for h in 0..hubs {
        edges.push(Edge::HubToHost { hub: h });
    }
    for d in 0..(nodes.div_ceil(16) as u32).max(1) {
        edges.push(Edge::HostToDisk { disk: d });
    }
    edges
}

/// Render the schematic summary (counts per network, as the figure's
/// legend).
pub fn render(shape: &TorusShape) -> String {
    let edges = full_schematic(shape);
    let mesh = edges
        .iter()
        .filter(|e| matches!(e, Edge::Mesh { .. }))
        .count();
    let eth = edges
        .iter()
        .filter(|e| matches!(e, Edge::NodeToHub { .. }))
        .count();
    let trunks = edges
        .iter()
        .filter(|e| matches!(e, Edge::HubToHost { .. }))
        .count();
    let disks = edges
        .iter()
        .filter(|e| matches!(e, Edge::HostToDisk { .. }))
        .count();
    let mut s = String::new();
    s.push_str("            Figure 2: QCDOC networks\n\n");
    s.push_str("  CPU0 ── CPU1 ── … ── CPUn-1      SCU mesh links (red)\n");
    s.push_str("   │       │             │\n");
    s.push_str("  [hub]──[hub]── … ───[hub]        Ethernet tree (green)\n");
    s.push_str("        │\n");
    s.push_str("      [HOST]──[DISK SWITCH]×k\n\n");
    s.push_str(&format!(
        "  machine {shape}: {mesh} mesh cables, {eth} node Ethernet drops,\n  {trunks} hub uplinks, {disks} disk switches\n"
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_edge_count_matches_torus_formula() {
        // A d-dim torus with all extents > 2 has d*N edges (each node has
        // 2d links, each edge shared by two nodes).
        let shape = TorusShape::new(&[4, 4, 4]);
        let edges = mesh_edges(&shape);
        assert_eq!(edges.len(), 3 * shape.node_count());
    }

    #[test]
    fn extent_two_axes_count_single_cables() {
        // On an extent-2 axis the +1 and -1 neighbours coincide: one cable
        // per node pair, so N/2 edges per such axis.
        let shape = TorusShape::new(&[2, 2]);
        let edges = mesh_edges(&shape);
        // 2 axes x (4/2) = 4 edges.
        assert_eq!(edges.len(), 4);
    }

    #[test]
    fn rack_cable_count_is_plausible() {
        // §4 bought 768 cables for four racks (4096 nodes): many mesh hops
        // stay on-board (motherboards wire 2^6 hypercubes internally), so
        // external cables are a small fraction of all mesh edges.
        let shape = TorusShape::rack_1024();
        let edges = mesh_edges(&shape);
        assert!(
            edges.len() > 768 / 4,
            "total mesh edges exceed external cables per rack"
        );
    }

    #[test]
    fn schematic_has_all_networks() {
        let shape = TorusShape::motherboard_64();
        let edges = full_schematic(&shape);
        assert!(edges.iter().any(|e| matches!(e, Edge::Mesh { .. })));
        assert!(edges.iter().any(|e| matches!(e, Edge::NodeToHub { .. })));
        assert!(edges.iter().any(|e| matches!(e, Edge::HubToHost { .. })));
        assert!(edges.iter().any(|e| matches!(e, Edge::HostToDisk { .. })));
        // Every node has exactly one Ethernet drop.
        let drops = edges
            .iter()
            .filter(|e| matches!(e, Edge::NodeToHub { .. }))
            .count();
        assert_eq!(drops, 64);
    }

    #[test]
    fn render_mentions_every_network() {
        let s = render(&TorusShape::motherboard_64());
        for needle in ["SCU mesh", "Ethernet tree", "HOST", "DISK"] {
            assert!(s.contains(needle), "{s}");
        }
    }
}
