//! The machines of the paper, from bring-up boxes to the three 12,288-node
//! installations.

use qcdoc_geometry::TorusShape;
use serde::{Deserialize, Serialize};

/// Who funded / hosts a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Site {
    /// Columbia University (development machines + 4096-node machine).
    Columbia,
    /// RIKEN-BNL Research Center at Brookhaven.
    Rbrc,
    /// UKQCD collaboration, Edinburgh.
    Ukqcd,
    /// US Lattice Gauge Theory community machine at BNL.
    UsLgt,
}

/// A catalogued machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Name used in the paper.
    pub name: &'static str,
    /// Node count.
    pub nodes: usize,
    /// Native 6-D shape.
    pub shape: TorusShape,
    /// Site.
    pub site: Site,
}

/// The development and production machines mentioned in the paper.
pub fn catalog() -> Vec<MachineSpec> {
    vec![
        MachineSpec {
            name: "bringup-64",
            nodes: 64,
            shape: TorusShape::motherboard_64(),
            site: Site::Columbia,
        },
        MachineSpec {
            name: "bench-128",
            nodes: 128,
            shape: TorusShape::new(&[4, 4, 2, 2, 2, 1]),
            site: Site::Columbia,
        },
        MachineSpec {
            name: "dev-512",
            nodes: 512,
            shape: TorusShape::new(&[8, 4, 4, 2, 2, 1]),
            site: Site::Columbia,
        },
        MachineSpec {
            name: "rack-1024",
            nodes: 1024,
            // §4: "a machine of size 8x4x4x2x2x2".
            shape: TorusShape::rack_1024(),
            site: Site::Columbia,
        },
        MachineSpec {
            name: "columbia-4096",
            nodes: 4096,
            shape: TorusShape::new(&[8, 8, 4, 4, 2, 2]),
            site: Site::Columbia,
        },
        MachineSpec {
            name: "rbrc-12288",
            nodes: 12_288,
            shape: TorusShape::new(&[8, 8, 6, 4, 4, 2]),
            site: Site::Rbrc,
        },
        MachineSpec {
            name: "ukqcd-12288",
            nodes: 12_288,
            shape: TorusShape::new(&[8, 8, 6, 4, 4, 2]),
            site: Site::Ukqcd,
        },
        MachineSpec {
            name: "uslgt-12288",
            nodes: 12_288,
            shape: TorusShape::new(&[8, 8, 6, 4, 4, 2]),
            site: Site::UsLgt,
        },
    ]
}

/// Look up a machine by name.
pub fn by_name(name: &str) -> Option<MachineSpec> {
    catalog().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_node_counts() {
        for m in catalog() {
            assert_eq!(m.shape.node_count(), m.nodes, "{}", m.name);
        }
    }

    #[test]
    fn three_production_machines() {
        let prod: Vec<_> = catalog()
            .into_iter()
            .filter(|m| m.nodes == 12_288)
            .collect();
        assert_eq!(prod.len(), 3, "RBRC, UKQCD and US LGT machines");
        let sites: Vec<_> = prod.iter().map(|m| m.site).collect();
        assert!(sites.contains(&Site::Rbrc));
        assert!(sites.contains(&Site::Ukqcd));
        assert!(sites.contains(&Site::UsLgt));
    }

    #[test]
    fn rack_shape_is_papers() {
        let m = by_name("rack-1024").unwrap();
        assert_eq!(m.shape.dims(), &[8, 4, 4, 2, 2, 2]);
    }

    #[test]
    fn development_ladder_sizes() {
        // §4: "we have successfully run our QCD application on 64, 128 and
        // 512 node QCDOC machines".
        for (name, nodes) in [("bringup-64", 64), ("bench-128", 128), ("dev-512", 512)] {
            assert_eq!(by_name(name).unwrap().nodes, nodes);
        }
    }

    #[test]
    fn lookup_missing_machine() {
        assert!(by_name("bluegene-l").is_none());
    }
}
