//! # qcdoc — a software twin of the QCDOC supercomputer
//!
//! Facade crate re-exporting the full QCDOC reproduction stack:
//!
//! * [`geometry`] — 6-D torus coordinates, folding, software partitioning;
//! * [`asic`] — the node ASIC model (PPC 440 cost model, caches, prefetching
//!   EDRAM, DDR controller);
//! * [`scu`] — the Serial Communications Unit: link protocol, DMA engines,
//!   supervisor and partition interrupts, pass-through global operations;
//! * [`lattice`] — the lattice QCD workload suite (SU(3) algebra, gauge
//!   evolution, Wilson / clover / staggered-ASQTAD / domain-wall Dirac
//!   operators, conjugate-gradient solvers);
//! * [`fault`] — deterministic, seeded fault injection (link bit errors,
//!   stalls, dead links, node crashes, memory soft errors) and the
//!   machine-wide health ledger the host diagnostics path reads out;
//! * [`telemetry`] — machine-wide observability: cycle-stamped span
//!   tracing, a metrics registry, and Chrome-trace / Prometheus / JSON
//!   exporters (the software face of §2.2's diagnostics network);
//! * [`host`] — qdaemon host software, Ethernet/JTAG boot, run kernel;
//! * [`sched`] — the multi-tenant batch scheduler behind the qdaemon:
//!   admission control and quotas, torus-aware partition packing,
//!   fair-share priorities with strict aging, and preemption via
//!   exact-bits CG checkpoints;
//! * [`machine`] — packaging hierarchy, power, footprint, and cost model;
//! * [`core`] — the integrated machine: functional (threads-as-nodes) and
//!   timing (discrete-event) engines, the communications API, and the
//!   performance model that regenerates the paper's evaluation numbers.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use qcdoc::core::MachineConfig;
//!
//! // A 16-node machine at the paper's benchmark clock.
//! let config = MachineConfig::new(&[2, 2, 2, 2, 1, 1]).with_clock_mhz(450);
//! assert_eq!(config.node_count(), 16);
//! ```

pub use qcdoc_asic as asic;
pub use qcdoc_core as core;
pub use qcdoc_fault as fault;
pub use qcdoc_geometry as geometry;
pub use qcdoc_host as host;
pub use qcdoc_lattice as lattice;
pub use qcdoc_machine as machine;
pub use qcdoc_sched as sched;
pub use qcdoc_scu as scu;
pub use qcdoc_telemetry as telemetry;
