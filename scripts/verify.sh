#!/usr/bin/env bash
# Verification gate: formatting, lints-as-errors, and the test suites.
# Run from anywhere; operates on the repository this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (tier-1: root package)"
cargo test -q

echo "== cargo test (workspace)"
cargo test -q --workspace

echo "verify: all green"
