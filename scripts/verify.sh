#!/usr/bin/env bash
# Verification gate: formatting, lints-as-errors, and the test suites.
# Run from anywhere; operates on the repository this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (no deps, rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== cargo test --doc (doctests across the workspace)"
cargo test -q --workspace --doc

echo "== cargo test (tier-1: root package)"
cargo test -q

echo "== cargo test (workspace)"
cargo test -q --workspace

echo "== telemetry: trace determinism"
cargo test -q -p qcdoc-telemetry --test determinism

echo "== telemetry: overhead smoke (NullSink path < 5% on the Dslash hot loop)"
cargo bench -p qcdoc-bench --bench telemetry_overhead

echo "== recovery: quarantine-and-resume acceptance (bit-identical recovered solve)"
cargo test -q --test recovery

echo "== recovery: checkpoint overhead smoke (interval-0 CG within 5% of raw CG)"
cargo bench -p qcdoc-bench --bench recovery_overhead

echo "== mixed precision: reliable-update CG acceptance (f64 tolerance, bit-identical, cost envelope)"
cargo bench -p qcdoc-bench --bench mixed_precision

echo "== integrity: ECC + block-checksum + ABFT acceptance (corruption healed, bit-identical)"
cargo test -q --test integrity

echo "== integrity: clean-path overhead smoke (ABFT-on CG within 5% of raw CG)"
cargo bench -p qcdoc-bench --bench integrity_overhead

echo "== scheduler: multi-tenant soak + preemption bit-identity acceptance"
cargo test -q --test scheduler

echo "== scheduler: overhead smoke (managed CG within 5% of the bare solve)"
cargo bench -p qcdoc-bench --bench sched_overhead

echo "== fault: injection machinery smoke (idle tap price + deterministic DES cycles)"
cargo bench -p qcdoc-bench --bench fault_overhead

echo "== flight recorder: black-box acceptance (schedule match, determinism, host ring)"
cargo test -q --test flight

echo "== durability: crash-mid-write + rotted-generation acceptance (fallback restore, bit-identical)"
cargo test -q --test durability

echo "== durability: archive parser fuzz (truncation/bit flips never panic, typed errors only)"
cargo test -q -p qcdoc-lattice --test parser_fuzz

echo "== durability: clean-path overhead smoke (durable checkpointing within 5% of archive-and-drop)"
cargo bench -p qcdoc-bench --bench durability_overhead

echo "== autonomic: failure classification + convicted-domain placement properties"
cargo test -q --test failure_class

echo "== autonomic: chaos-soak acceptance (zero lost jobs, bit-identical solves, capacity recovery)"
cargo test -q --test chaos

echo "== autonomic: chaos-soak SLO export (goodput, requeue p99, losses gated at zero)"
cargo bench -p qcdoc-bench --bench chaos

echo "== kernels: AoSoA layout acceptance (bit-identical to scalar, f32 must beat f64)"
cargo bench -p qcdoc-bench --bench kernels

echo "== full machine: 12,288-node partition-boot-solve on the sharded engine"
cargo run -q --release --example hard_scaling

echo "== bench judge: current exports vs committed baselines (bless with bench-judge --bless)"
cargo run -q --release -p qcdoc-judge --bin bench-judge

echo "verify: all green"
