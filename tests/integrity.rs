//! End-to-end data-integrity acceptance: every corruption class the
//! fault plan can inject is either corrected in place (memory ECC),
//! detected and replayed in flight (DMA block checksums), or detected
//! and rolled back (ABFT in the solver) — and the physics the machine
//! delivers is **bit-identical** to a run that never faulted.
//!
//! The three layers mirror the paper's hardware story: §2.1 puts ECC on
//! the EDRAM and DDR paths, §2.2 backs the serial links' parity with
//! end-of-run checksum comparison, and the deterministic software stack
//! turns any detected corruption into a replay instead of a wrong answer.

use qcdoc::core::distributed::{
    assemble_checkpoint, resume_blocks, wilson_cg_segment, BlockGeom, CgResume, CgSegmentOut,
};
use qcdoc::core::functional::{FaultEvent, FaultPlan, FunctionalMachine, NodeCtx};
use qcdoc::core::recovery::{RecoveryConfig, Replacement, SegmentVerdict};
use qcdoc::geometry::{NodeCoord, PartitionSpec, TorusShape};
use qcdoc::host::{Qdaemon, RecoveryPlanner};
use qcdoc::lattice::checkpoint::CgCheckpoint;
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc::lattice::solver::{
    solve_cgne, solve_cgne_abft, AbftParams, CgParams, SolverTamper, TamperTarget,
};
use qcdoc::lattice::wilson::WilsonDirac;
use qcdoc::telemetry::NodeTelemetry;

const KAPPA: f64 = 0.12;
const TOL: f64 = 1e-7;
const MAX_ITERS: usize = 400;
const SEG_ITERS: usize = 6;

fn global() -> Lattice {
    Lattice::new([4, 4, 2, 2])
}

fn logical() -> TorusShape {
    TorusShape::new(&[2, 2, 2])
}

/// One segment of the distributed Wilson solve (same shape as the
/// recovery suite): fresh when no checkpoint exists, restored from exact
/// bits otherwise.
fn cg_segment_app(
    ctx: &mut NodeCtx,
    gauge: &GaugeField,
    b: &FermionField,
    state: &Option<CgCheckpoint>,
    segment_iters: usize,
) -> CgSegmentOut {
    let geom = BlockGeom::new(ctx, global());
    let lg = geom.extract_gauge(gauge);
    let lb = geom.extract_fermion(b);
    match state {
        None => wilson_cg_segment(
            ctx,
            &geom,
            &lg,
            &lb,
            KAPPA,
            TOL,
            MAX_ITERS,
            None,
            segment_iters,
        ),
        Some(ckpt) => {
            let (x, r, p) = resume_blocks(&geom, ckpt);
            let resume = CgResume {
                x: &x,
                r: &r,
                p: &p,
                rsq: ckpt.rsq,
                bref: ckpt.bref,
                iterations: ckpt.iterations,
            };
            wilson_cg_segment(
                ctx,
                &geom,
                &lg,
                &lb,
                KAPPA,
                TOL,
                MAX_ITERS,
                Some(resume),
                segment_iters,
            )
        }
    }
}

/// The fault-free reference solve and its checkpoint digest.
fn reference(gauge: &GaugeField, b: &FermionField) -> CgCheckpoint {
    let outs = FunctionalMachine::new(logical())
        .run(|ctx| cg_segment_app(ctx, gauge, b, &None, usize::MAX));
    assert!(outs.iter().all(|o| o.converged && !o.wedged));
    assemble_checkpoint(&logical(), global(), &outs, &[])
}

/// Half-machine spec on a [2,2,2,2] box: a [2,2,2] logical partition with
/// a spare twin in the other x3 half.
fn half_spec() -> PartitionSpec {
    PartitionSpec {
        origin: NodeCoord::ORIGIN,
        extents: vec![2, 2, 2, 1],
        groups: vec![vec![0], vec![1], vec![2]],
    }
}

/// An uncorrectable (double-bit) memory error defeats SEC-DED: the node
/// latches a machine check, the sweep condemns it, and the job replays on
/// the spare half — landing on exactly the bits of the fault-free run.
#[test]
fn uncorrectable_memory_error_quarantines_and_recovers_bit_identically() {
    let gauge = GaugeField::hot(global(), 21);
    let b = FermionField::gaussian(global(), 22);
    let ref_ckpt = reference(&gauge, &b);

    let mut qdaemon = Qdaemon::new(TorusShape::new(&[2, 2, 2, 2]));
    qdaemon.boot(&[]);
    // Two flips in the same word of physical node 3's memory.
    let machine_faults = FaultPlan::new(7).with_event(FaultEvent::mem_double_flip(3, 0x100, 3, 41));
    let mut planner =
        RecoveryPlanner::new(&mut qdaemon, half_spec(), machine_faults, false).unwrap();
    assert_eq!(planner.local_faults().events.len(), 1);

    let machine = FunctionalMachine::new(planner.partition().logical_shape().clone())
        .with_faults(planner.local_faults());

    let mut prior_residuals: Vec<f64> = Vec::new();
    let mut evidence = (0u64, 0u64);
    let (recovered, report) = machine
        .run_with_recovery(
            RecoveryConfig::default(),
            None,
            |ctx, state: &Option<CgCheckpoint>| cg_segment_app(ctx, &gauge, &b, state, SEG_ITERS),
            |shape, outs: Vec<CgSegmentOut>| {
                let ckpt = assemble_checkpoint(shape, global(), &outs, &prior_residuals);
                prior_residuals = ckpt.residuals.clone();
                if ckpt.converged {
                    SegmentVerdict::Done(ckpt)
                } else {
                    SegmentVerdict::Continue(Some(ckpt))
                }
            },
            |ledger| {
                evidence = (ledger.total_machine_checks(), ledger.total_ecc_corrected());
                planner.quarantine_and_replan(&mut qdaemon, ledger).map(
                    |(part, faults, degraded)| Replacement {
                        shape: part.logical_shape().clone(),
                        faults,
                        degraded,
                    },
                )
            },
        )
        .expect("the spare half must carry the job home");

    // The evidence was a latched machine check, not a corrected flip.
    assert_eq!(evidence, (1, 0));
    assert_eq!(report.recoveries, 1);
    assert!(!report.degraded);
    assert!(recovered.converged);

    // Bit-identical to the fault-free run.
    assert_eq!(recovered.iterations, ref_ckpt.iterations);
    assert_eq!(recovered.x, ref_ckpt.x);
    assert_eq!(recovered.digest(), ref_ckpt.digest());

    // Host-side: the culprit daughterboard is out of the pool.
    let census = qdaemon.census();
    assert_eq!((census.busy, census.faulty), (8, 1));
    assert_eq!(planner.partition().spec().origin.get(3), 1);
}

/// A parity-evading payload burst mid-CG is caught by the end-to-end
/// block checksum at the receive unit and the whole block is replayed —
/// the run finishes without recovery machinery, on the reference bits.
#[test]
fn payload_burst_mid_cg_is_healed_in_flight_by_block_checksums() {
    let gauge = GaugeField::hot(global(), 21);
    let b = FermionField::gaussian(global(), 22);
    let ref_ckpt = reference(&gauge, &b);

    // An even number of flips per parity class in the frame carrying data
    // word 50 on node 1's +x wire: frame parity decodes clean.
    let plan = FaultPlan::new(5).with_event(FaultEvent::payload_burst(1, 0, 50, 10, 2));
    let (outs, ledger) = FunctionalMachine::new(logical())
        .with_faults(plan)
        .with_block_checksums()
        .run_with_health(|ctx| cg_segment_app(ctx, &gauge, &b, &None, usize::MAX));
    assert!(outs.iter().all(|o| o.converged && !o.wedged));
    let ckpt = assemble_checkpoint(&logical(), global(), &outs, &[]);

    // Detected, replayed, and invisible to the physics.
    assert!(
        ledger.total_block_rejects() >= 1,
        "the burst must be caught by a block checksum"
    );
    assert!(ledger.all_checksums_ok());
    assert!(ledger.unhealthy_nodes().is_empty());
    assert_eq!(ckpt.iterations, ref_ckpt.iterations);
    assert_eq!(ckpt.x, ref_ckpt.x);
    assert_eq!(ckpt.digest(), ref_ckpt.digest());
}

/// The same burst without block checksums is the silent-data-corruption
/// baseline: the run completes, the answer is wrong, and only the
/// end-of-run checksum comparison — too late for the physics — disagrees.
#[test]
fn without_block_checksums_the_burst_is_silent_data_corruption() {
    let gauge = GaugeField::hot(global(), 21);
    let b = FermionField::gaussian(global(), 22);
    let ref_ckpt = reference(&gauge, &b);

    let plan = FaultPlan::new(5).with_event(FaultEvent::payload_burst(1, 0, 50, 10, 2));
    let (outs, ledger) = FunctionalMachine::new(logical())
        .with_faults(plan)
        .run_with_health(|ctx| cg_segment_app(ctx, &gauge, &b, &None, usize::MAX));
    assert!(outs.iter().all(|o| !o.wedged));
    let ckpt = assemble_checkpoint(&logical(), global(), &outs, &[]);

    // No reject, no resend — the parity never fired.
    assert_eq!(ledger.total_block_rejects(), 0);
    assert!(
        ckpt.digest() != ref_ckpt.digest(),
        "the burst must have corrupted the solve"
    );
    // Only the end-of-run audit knows something went wrong.
    assert!(!ledger.all_checksums_ok());
}

/// A correctable single-bit soft error is fixed in place by SEC-DED: the
/// run is bit-identical to the reference and the only trace is a counter.
#[test]
fn correctable_soft_error_leaves_only_counter_evidence() {
    let gauge = GaugeField::hot(global(), 21);
    let b = FermionField::gaussian(global(), 22);
    let ref_ckpt = reference(&gauge, &b);

    let plan = FaultPlan::new(3).with_event(FaultEvent::mem_bit_flip(2, 0x100, 17));
    let (outs, ledger) = FunctionalMachine::new(logical())
        .with_faults(plan)
        .run_with_health(|ctx| cg_segment_app(ctx, &gauge, &b, &None, usize::MAX));
    assert!(outs.iter().all(|o| o.converged && !o.wedged));
    let ckpt = assemble_checkpoint(&logical(), global(), &outs, &[]);

    assert_eq!(ckpt.digest(), ref_ckpt.digest());
    assert!(ledger.nodes[2].ecc_corrected >= 1);
    assert_eq!(ledger.nodes[2].machine_checks, 0);
    assert!(
        ledger.unhealthy_nodes().is_empty(),
        "a corrected flip is bookkeeping, not a casualty"
    );
}

/// ABFT closes the last gap: corruption that strikes *inside* the solver
/// — past ECC and past the link checksums — is caught by the running
/// checksums over x/r/p and rolled back to the last verified snapshot.
#[test]
fn abft_rolls_back_in_solver_corruption_to_the_reference_bits() {
    let lat = Lattice::new([4, 4, 2, 2]);
    let gauge = GaugeField::hot(lat, 112);
    let op = WilsonDirac::new(&gauge, KAPPA);
    let b = FermionField::gaussian(lat, 113);

    let mut clean = FermionField::zero(lat);
    let plain = solve_cgne(&op, &mut clean, &b, CgParams::default());
    assert!(plain.converged);
    assert!(plain.iterations > 4, "need room to strike mid-solve");

    let tamper = SolverTamper {
        iteration: 3,
        target: TamperTarget::R,
        word: 7,
        bits: 1 << 62,
    };
    let mut x = FermionField::zero(lat);
    let mut telem = NodeTelemetry::disabled(0);
    let (report, abft) = solve_cgne_abft(
        &op,
        &mut x,
        &b,
        CgParams::default(),
        AbftParams::default(),
        Some(tamper),
        &mut telem,
    );
    assert!(abft.detections >= 1);
    assert!(abft.rollbacks >= 1);
    assert!(!abft.exhausted);
    assert!(report.converged);
    assert_eq!(
        x.fingerprint(),
        clean.fingerprint(),
        "the replayed solve must be bit-identical"
    );
}
