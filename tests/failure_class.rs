//! Property tests for the autonomic layer's two classification promises:
//!
//! 1. **Deterministic blame** — every injectable [`FaultKind`] charges one
//!    fixed [`FailureClass`] when it proves fatal, and the ledger-level
//!    classifier agrees with the kind-level table whenever the kind leaves
//!    health evidence at all. The verdict depends only on *what* broke,
//!    never on *which* node carried the evidence.
//! 2. **Convicted domains stay empty** — a requeued job is never placed
//!    on any node of its failure's convicted set, across arbitrary
//!    fail/retry rounds with arbitrary avoid sets; when the conviction
//!    blocks every shape in the menu, the job waits rather than trespass.

use proptest::prelude::*;
use qcdoc::fault::{classify_ledger, convicted_nodes, FailureClass, FaultKind, HealthLedger};
use qcdoc::geometry::TorusShape;
use qcdoc::sched::{
    JobId, JobSpec, JobStatus, Priority, SchedConfig, Scheduler, ShapeRequest, SimMesh,
    TenantConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One instance of every [`FaultKind`] variant, parameters drawn from the
/// three sampled integers so repeated calls with equal inputs are equal.
fn kind_of(tag: usize, a: u64, b: usize) -> FaultKind {
    match tag {
        0 => FaultKind::BitFlip {
            seq: a,
            first_bit: b,
            burst: 1 + b % 4,
        },
        1 => FaultKind::BitErrorRate {
            rate: (a % 100) as f64 / 1000.0,
        },
        2 => FaultKind::Stall {
            iteration: b,
            cycles: a,
        },
        3 => FaultKind::DeadLink { from_seq: a },
        4 => FaultKind::StuckLink { from_seq: a },
        5 => FaultKind::NodePause {
            iteration: b.is_multiple_of(2).then_some(b),
            cycles: a,
        },
        6 => FaultKind::NodeCrash { iteration: b },
        7 => FaultKind::MemBitFlip {
            addr: a * 8,
            bit: (b % 64) as u32,
        },
        8 => FaultKind::MemDoubleFlip {
            addr: a * 8,
            bit: (b % 64) as u32,
            bit2: ((b + 1) % 64) as u32,
        },
        _ => FaultKind::PayloadBurst {
            seq: a,
            first_bit: b,
            pairs: 1 + b % 8,
        },
    }
}

/// The pinned kind → class table: changing [`FailureClass::from_fault_kind`]
/// must be a deliberate edit here too.
fn pinned_class(kind: &FaultKind) -> FailureClass {
    match kind {
        FaultKind::BitFlip { .. }
        | FaultKind::BitErrorRate { .. }
        | FaultKind::Stall { .. }
        | FaultKind::NodePause { .. }
        | FaultKind::MemBitFlip { .. } => FailureClass::Transient,
        FaultKind::DeadLink { .. } | FaultKind::StuckLink { .. } => FailureClass::DeadLink,
        FaultKind::NodeCrash { .. } => FailureClass::NodeCrash,
        FaultKind::MemDoubleFlip { .. } => FailureClass::MachineCheck,
        FaultKind::PayloadBurst { .. } => FailureClass::LinkCorruption,
    }
}

/// Write the health evidence a fatal fault of this kind leaves on
/// `victim`, if the kind leaves ledger evidence at all ([`FaultKind::Stall`]
/// and [`FaultKind::NodePause`] are pure timing faults: counters stay
/// clean, so only the kind-level table can charge them).
fn leave_evidence(ledger: &mut HealthLedger, kind: &FaultKind, victim: u32, wire: usize) -> bool {
    use qcdoc::fault::Liveness;
    let node = ledger.node_mut(victim);
    match kind {
        FaultKind::BitFlip { .. } | FaultKind::BitErrorRate { .. } => {
            node.links[wire].resends = 2;
            node.links[wire].injected = 2;
        }
        FaultKind::MemBitFlip { .. } => node.ecc_corrected = 1,
        FaultKind::DeadLink { .. } => node.links[wire].dead = true,
        FaultKind::StuckLink { .. } => node.links[wire].retry_exhausted = true,
        FaultKind::NodeCrash { .. } => node.liveness = Liveness::Crashed { iteration: 3 },
        FaultKind::MemDoubleFlip { .. } => node.machine_checks = 1,
        FaultKind::PayloadBurst { .. } => node.links[wire].checksum_ok = Some(false),
        FaultKind::Stall { .. } | FaultKind::NodePause { .. } => return false,
    }
    true
}

proptest! {
    #[test]
    fn every_fault_kind_charges_one_deterministic_class(
        tag in 0usize..10, a in 0u64..10_000, b in 0usize..64,
    ) {
        let kind = kind_of(tag, a, b);
        let class = FailureClass::from_fault_kind(&kind);
        prop_assert_eq!(class, pinned_class(&kind), "kind {:?}", kind);
        // Deterministic: an identically-parameterised kind charges the
        // same class, and the class round-trips through its wire code.
        prop_assert_eq!(class, FailureClass::from_fault_kind(&kind_of(tag, a, b)));
        prop_assert_eq!(FailureClass::from_code(class.code()), Some(class));
    }

    #[test]
    fn ledger_verdict_matches_the_kind_and_ignores_the_victim(
        tag in 0usize..10, a in 0u64..10_000, b in 0usize..64,
        victim in 0u32..32, wire in 0usize..12,
    ) {
        let kind = kind_of(tag, a, b);
        let mut ledger = HealthLedger::new(32);
        if !leave_evidence(&mut ledger, &kind, victim, wire) {
            return Ok(()); // timing fault: no ledger evidence to classify
        }
        prop_assert_eq!(
            classify_ledger(&ledger),
            FailureClass::from_fault_kind(&kind),
            "kind {:?} on node {} wire {}", kind, victim, wire
        );
        // The conviction is victim-anchored for hard evidence and empty
        // for healed traffic — never somebody else's node.
        let convicted = convicted_nodes(&ledger);
        if pinned_class(&kind) == FailureClass::Transient {
            prop_assert!(convicted.is_empty(), "healed traffic convicts nobody");
        } else if !matches!(kind, FaultKind::MemDoubleFlip { .. }) || ledger.nodes[victim as usize].machine_checks > 0 {
            prop_assert!(convicted.contains(&victim), "{convicted:?}");
        }
    }
}

fn shape(extents: &[usize], groups: &[&[usize]]) -> ShapeRequest {
    ShapeRequest {
        extents: extents.to_vec(),
        groups: groups.iter().map(|g| g.to_vec()).collect(),
    }
}

/// Degradable menu on the [4,2,2,2,1,1] machine: 16, 8 or 4 nodes, every
/// shape spanning the full extent-4 leading axis.
fn menu() -> Vec<ShapeRequest> {
    vec![
        shape(&[4, 2, 2, 1, 1, 1], &[&[0], &[1], &[2]]),
        shape(&[4, 2, 1, 1, 1, 1], &[&[0], &[1]]),
        shape(&[4, 1, 1, 1, 1, 1], &[&[0]]),
    ]
}

/// Physical node ids inside a placed job's granted sub-box.
fn members(sched: &Scheduler, id: JobId) -> Vec<u32> {
    let job = sched.job(id).expect("job exists");
    let Some(placement) = job.placement.as_ref() else {
        return Vec::new();
    };
    let machine = sched.machine();
    let mut extents = job.spec.shapes[placement.shape_index].extents.clone();
    extents.resize(machine.rank(), 1);
    machine
        .coords()
        .filter(|c| {
            (0..machine.rank()).all(|ax| {
                let lo = placement.origin.get(ax);
                c.get(ax) >= lo && c.get(ax) < lo + extents[ax]
            })
        })
        .map(|c| machine.rank_of(c).0)
        .collect()
}

fn harness() -> (Scheduler, SimMesh, JobId) {
    let machine = TorusShape::new(&[4, 2, 2, 2, 1, 1]);
    let mut sched = Scheduler::new(
        machine.clone(),
        SchedConfig {
            retry_budget: 1000,
            holdoff_base: 1,
            ..SchedConfig::default()
        },
    );
    sched.add_tenant(
        "prop",
        TenantConfig {
            weight: 1.0,
            node_quota: usize::MAX,
            max_queued: usize::MAX,
        },
    );
    let mut mesh = SimMesh::new(machine);
    let id = sched
        .submit(JobSpec {
            tenant: "prop".into(),
            priority: Priority::Standard,
            shapes: menu(),
            work: u64::MAX / 2,
            preemptible: true,
        })
        .expect("quiet machine admits the job");
    sched.schedule(&mut mesh);
    (sched, mesh, id)
}

proptest! {
    #[test]
    fn requeue_placement_never_lands_in_the_convicted_domain(seed in 0u64..200) {
        let (mut sched, mut mesh, id) = harness();
        let mut rng = StdRng::seed_from_u64(seed);
        for round in 0..8 {
            if sched.job(id).unwrap().status == JobStatus::Running {
                let mut avoid: Vec<u32> =
                    (0..rng.gen_range(0..6usize)).map(|_| rng.gen_range(0..32u32)).collect();
                avoid.sort_unstable();
                avoid.dedup();
                prop_assert!(sched.fail_job(id, FailureClass::DeadLink, &avoid, &mut mesh));
            }
            prop_assert!(sched.retry(id, &mut mesh), "round {round}");
            let job = sched.job(id).unwrap();
            if job.placement.is_some() {
                let avoid = job.avoid.clone();
                for m in members(&sched, id) {
                    prop_assert!(
                        !avoid.contains(&m),
                        "round {}: node {} of the new placement is convicted ({:?})",
                        round, m, avoid
                    );
                }
            }
        }
    }
}

#[test]
fn a_conviction_blocking_every_shape_parks_the_job() {
    let (mut sched, mut mesh, id) = harness();
    // Every menu shape spans the full extent-4 leading axis, so there are
    // eight axis-0 columns of four nodes each; convicting one node per
    // column leaves no admissible sub-box anywhere.
    let machine = sched.machine().clone();
    let blockade: Vec<u32> = machine
        .coords()
        .filter(|c| c.get(0) == 0)
        .map(|c| machine.rank_of(c).0)
        .collect();
    assert_eq!(blockade.len(), 8);
    assert!(sched.fail_job(id, FailureClass::MachineCheck, &blockade, &mut mesh));
    assert!(sched.retry(id, &mut mesh));
    let job = sched.job(id).unwrap();
    assert!(
        job.placement.is_none(),
        "no placement can dodge a node in every column: {:?}",
        job.placement
    );
    assert_ne!(job.status, JobStatus::Running);
    // The machine itself is fine — an unconvicted twin of the job places
    // immediately, so the blockade (not capacity) is what parks the job.
    let twin = sched
        .submit(JobSpec {
            tenant: "prop".into(),
            priority: Priority::Standard,
            shapes: menu(),
            work: 4,
            preemptible: true,
        })
        .expect("twin admits");
    sched.schedule(&mut mesh);
    assert_eq!(sched.job(twin).unwrap().status, JobStatus::Running);
}
