//! Paper-conformance suite: every headline number of the QCDOC paper,
//! checked across crates in one place. Each test cites the section it
//! reproduces; EXPERIMENTS.md records the same mapping.

use qcdoc::asic::clock::Clock;
use qcdoc::core::perf::{
    DiracPerf, Precision, PAPER_EFFICIENCIES, PAPER_SINGLE_PRECISION_MAX_UPLIFT,
};
use qcdoc::lattice::counts::Action;
use qcdoc::machine::cost::{columbia_4096, CostModel, PricePerformance, PAPER_PRICE_PERF};
use qcdoc::machine::packaging::MachineAssembly;
use qcdoc::scu::global::dimension_sum_hops;
use qcdoc::scu::timing::{EthernetBaseline, LinkTimingConfig};

/// Abstract: "Each node has a peak speed of 1 Gigaflops and two 12,288
/// node, 10+ Teraflops machines are to be completed in the fall of 2004."
#[test]
fn abstract_peak_speeds() {
    assert_eq!(Clock::DESIGN.peak_flops(), 1.0e9);
    let machine = MachineAssembly::new(12_288);
    assert!(machine.peak_flops(500.0) >= 10.0e12);
}

/// §2.1: EDRAM port runs at 8 GB/s; DDR at 2.6 GB/s, up to 2 GB.
#[test]
fn section_2_1_memory_bandwidths() {
    let edram_bps = qcdoc::asic::edram::PORT_BYTES_PER_CYCLE as f64 * Clock::DESIGN.hz() as f64;
    assert_eq!(edram_bps, 8.0e9);
    assert_eq!(qcdoc::asic::ddr::DDR_BYTES_PER_SEC, 2.6e9);
    assert_eq!(qcdoc::asic::memory::DDR_MAX_SIZE, 2 << 30);
}

/// §2.2: 600 ns memory-to-memory latency; 24-word transfer = 600 ns +
/// 3.3 µs; 1.3 GB/s aggregate; Ethernet needs 5-10 µs just to start.
#[test]
fn section_2_2_link_numbers() {
    let link = LinkTimingConfig::default();
    let c = Clock::DESIGN;
    assert!((link.transfer_ns(1, c) - 600.0).abs() < 1.0);
    let tail = link.transfer_ns(24, c) - link.transfer_ns(1, c);
    assert!((tail - 3300.0).abs() < 50.0, "24-word tail {tail} ns");
    let agg = link.node_bandwidth(c);
    assert!((agg - 1.3e9).abs() < 0.05e9, "aggregate {agg}");
    let eth = EthernetBaseline::default();
    assert!(eth.startup_ns >= 5_000.0 && eth.startup_ns <= 10_000.0);
}

/// §2.2 global operations: hops = Nx+Ny+Nz+Nt−4, halved in doubled mode.
#[test]
fn section_2_2_global_sum_hops() {
    // The 8192-node example machine of §4: 8x8x8x16.
    assert_eq!(
        dimension_sum_hops(&[8, 8, 8, 16], false),
        8 + 8 + 8 + 16 - 4
    );
    assert_eq!(dimension_sum_hops(&[8, 8, 8, 16], true), 4 + 4 + 4 + 8);
}

/// §2.4: packaging arithmetic — 2 nodes/daughterboard, 64-node
/// motherboards, 1024-node water-cooled racks at ~1 Tflops under ~10 kW,
/// 10,000 nodes in ~60 ft².
#[test]
fn section_2_4_packaging() {
    let m = MachineAssembly::new(4096);
    assert_eq!(m.daughterboards(), 2048);
    assert_eq!(m.motherboards(), 64);
    assert_eq!(m.racks(), 4);
    let rack = MachineAssembly::new(1024);
    assert!((rack.peak_flops(500.0) - 1.024e12).abs() < 1e9);
    assert!(rack.power_watts() <= 10_500.0);
    assert!((MachineAssembly::new(10_000).footprint_sqft() - 60.0).abs() < 1.0);
}

/// §3.1: ~100 boot-kernel packets + ~100 run-kernel packets per node.
#[test]
fn section_3_1_boot_packets() {
    let mut q = qcdoc::host::qdaemon::Qdaemon::new(qcdoc::geometry::TorusShape::motherboard_64());
    let r = q.boot(&[]);
    let per_node = r.packets_sent / 64;
    assert!((195..=210).contains(&per_node), "{per_node} packets/node");
}

/// §4: CG efficiencies — Wilson 40%, ASQTAD 38%, clover 46.5% at 4⁴ local
/// volume; DWF at least clover; single precision slightly higher.
#[test]
fn section_4_efficiencies() {
    let perf = DiracPerf::paper_bench();
    for (action, paper) in PAPER_EFFICIENCIES {
        let got = perf.evaluate(action).efficiency;
        assert!(
            (got - paper).abs() < 0.025,
            "{}: {got:.3} vs {paper}",
            action.name()
        );
    }
    let dwf = perf.evaluate(Action::Dwf { ls: 8 }).efficiency;
    assert!(dwf >= perf.evaluate(Action::Clover).efficiency - 0.01);
}

/// §4: "performance for single precision is slightly higher due to the
/// decreased bandwidth to local memory that is needed in this case."
/// For every benchmarked action, the single-precision sustained fraction
/// must land in the paper's band: above the double-precision figure, but
/// by less than `PAPER_SINGLE_PRECISION_MAX_UPLIFT` — higher, yet only
/// *slightly* (the kernels stay issue-bound at 4⁴).
#[test]
fn section_4_single_precision_band() {
    let perf = DiracPerf::paper_bench();
    for (action, _) in PAPER_EFFICIENCIES {
        let (dp, sp) = perf.evaluate_both_precisions(action);
        assert!(
            sp.efficiency > dp.efficiency,
            "{}: single {:.3} <= double {:.3}",
            action.name(),
            sp.efficiency,
            dp.efficiency
        );
        assert!(
            sp.efficiency - dp.efficiency < PAPER_SINGLE_PRECISION_MAX_UPLIFT,
            "{}: uplift {:.3} outside the 'slightly higher' band",
            action.name(),
            sp.efficiency - dp.efficiency
        );
        assert!(
            sp.sustained_gflops_per_node > dp.sustained_gflops_per_node,
            "{}: sustained Mflops must rise with halved traffic",
            action.name()
        );
    }
    // Single precision never changes the flop ledger, only the bytes.
    let mut sp_model = DiracPerf::paper_bench();
    sp_model.precision = Precision::Single;
    assert_eq!(
        sp_model.evaluate(Action::Wilson).flops_per_iteration,
        perf.evaluate(Action::Wilson).flops_per_iteration
    );
}

/// §4: 6⁴ fits the EDRAM, 8⁴ spills to DDR and lands near 30% of peak.
#[test]
fn section_4_edram_cliff() {
    let mut perf = DiracPerf::paper_bench();
    perf.local_dims = [6, 6, 6, 6];
    assert!(perf.evaluate(Action::Wilson).fits_edram);
    perf.local_dims = [8, 8, 8, 8];
    let r = perf.evaluate(Action::Wilson);
    assert!(!r.fits_edram);
    assert!((0.26..0.36).contains(&r.efficiency), "{}", r.efficiency);
}

/// §4: "the 768 cables for the mesh network" — derived, not assumed: 256
/// motherboard-face adjacencies of the 4096-node machine at three cables
/// per 32-link face bundle.
#[test]
fn section_4_cable_count() {
    let spec = qcdoc::machine::catalog::by_name("columbia-4096").unwrap();
    let w = qcdoc::machine::wiring::wiring(&spec.shape);
    assert_eq!(w.cables, 768);
}

/// §4: the itemized 4096-node machine cost and the three price/performance
/// operating points ($1.29 / $1.10 / $1.03 per sustained MF).
#[test]
fn section_4_cost_and_price_performance() {
    let b = CostModel::default().breakdown(&MachineAssembly::new(4096));
    assert!(
        (b.hardware_total() - columbia_4096::QUOTED_TOTAL).abs() / columbia_4096::QUOTED_TOTAL
            < 0.002
    );
    assert!(
        (b.total() - columbia_4096::QUOTED_TOTAL_WITH_RND).abs()
            / columbia_4096::QUOTED_TOTAL_WITH_RND
            < 0.002
    );
    for (clock, paper) in PAPER_PRICE_PERF {
        let pp = PricePerformance {
            clock_mhz: clock,
            efficiency: 0.45,
            total_cost: columbia_4096::QUOTED_TOTAL_WITH_RND,
            nodes: 4096,
        };
        assert!(
            (pp.dollars_per_mflops() - paper).abs() < 0.005,
            "{clock} MHz"
        );
    }
}

/// §4: "a 4⁴ local volume … translates into a 32³×64 lattice size for a
/// 8,192 node machine."
#[test]
fn section_4_lattice_decomposition() {
    let machine = qcdoc::geometry::TorusShape::new(&[8, 8, 8, 16]);
    assert_eq!(machine.node_count(), 8192);
    let m = qcdoc::geometry::LatticeMapping::new(&[32, 32, 32, 64], &machine).unwrap();
    assert_eq!(m.local().dims(), &[4, 4, 4, 4]);
}

/// §4: clock ladder — 450 MHz benchmarks on buffered DIMMs; unbuffered
/// memory reliable at 360, then 420 after controller tuning.
#[test]
fn section_4_clock_ladder() {
    use qcdoc::asic::ddr::DimmKind;
    assert_eq!(DimmKind::Buffered.max_clock().mhz(), 450);
    assert_eq!(DimmKind::Unbuffered { tuned: false }.max_clock().mhz(), 360);
    assert_eq!(DimmKind::Unbuffered { tuned: true }.max_clock().mhz(), 420);
}
