//! Experiments E5/E6 end to end: software remapping of the 6-D mesh and
//! collectives running on the remapped logical machines.

use qcdoc::core::comm::{barrier, broadcast_u64, global_sum_f64};
use qcdoc::core::functional::FunctionalMachine;
use qcdoc::geometry::{Partition, PartitionSpec, TorusShape};
use qcdoc::scu::global::{all_nodes_agree, dimension_ordered_sum};

/// Whole-machine grouping folding trailing axes into the last logical
/// dimension.
fn fold_to_rank(machine: &TorusShape, rank: usize) -> Partition {
    let keep = rank - 1;
    let mut groups: Vec<Vec<usize>> = (0..keep).map(|a| vec![a]).collect();
    groups.push((keep..machine.rank()).collect());
    Partition::new(
        machine,
        PartitionSpec {
            origin: qcdoc::geometry::NodeCoord::ORIGIN,
            extents: machine.dims().to_vec(),
            groups,
        },
    )
    .unwrap()
}

#[test]
fn every_remap_rank_has_unit_dilation() {
    // The rack (1024 nodes) and the bench machine, remapped to ranks 1..6.
    for machine in [
        TorusShape::rack_1024(),
        TorusShape::new(&[4, 4, 2, 2, 2, 1]),
    ] {
        for rank in 1..=machine.rank() {
            let p = fold_to_rank(&machine, rank);
            assert_eq!(p.node_count(), machine.node_count());
            assert_eq!(p.dilation(), 1, "machine {machine}, rank {rank}");
        }
    }
}

#[test]
fn global_sum_on_a_remapped_machine() {
    // Fold a physical 2x2x2x2 box to a logical 2x2x4 machine, then run the
    // functional global sum on the logical shape.
    let physical = TorusShape::new(&[2, 2, 2, 2]);
    let p = fold_to_rank(&physical, 3);
    let logical = p.logical_shape().clone();
    assert_eq!(logical.dims(), &[2, 2, 4]);
    let machine = FunctionalMachine::new(logical.clone());
    let results = machine.run(|ctx| global_sum_f64(ctx, (ctx.id.0 as f64 + 1.0).sqrt()));
    assert!(all_nodes_agree(&results));
    // Matches the closed-form algorithm bitwise.
    let values: Vec<f64> = (0..16).map(|i| (i as f64 + 1.0).sqrt()).collect();
    let expect = dimension_ordered_sum(&logical, &values);
    assert_eq!(results[0].to_bits(), expect[0].to_bits());
}

#[test]
fn collectives_on_each_logical_rank() {
    // Sum + broadcast + barrier must work on 1-D through 3-D logical
    // machines of the same 8 nodes.
    for dims in [vec![8usize], vec![4, 2], vec![2, 2, 2]] {
        let shape = TorusShape::new(&dims);
        let machine = FunctionalMachine::new(shape);
        let results = machine.run(|ctx| {
            barrier(ctx);
            let sum = global_sum_f64(ctx, ctx.id.0 as f64);
            let word = broadcast_u64(ctx, 0x5151, 3);
            (sum, word)
        });
        for (i, &(sum, word)) in results.iter().enumerate() {
            assert_eq!(sum, 28.0, "dims {dims:?} node {i}"); // 0+..+7
            assert_eq!(word, 0x5151, "dims {dims:?} node {i}");
        }
    }
}

#[test]
fn partition_interrupt_covers_a_folded_partition() {
    // §2.2: partition interrupts must reach every node of the partition.
    let machine = FunctionalMachine::new(TorusShape::new(&[4, 2]));
    let results = machine.run(|ctx| {
        if ctx.id.0 == 6 {
            ctx.raise_partition_irq(0b1);
        }
        for _ in 0..300 {
            ctx.progress();
            std::thread::yield_now();
        }
        ctx.partition_irq_state()
    });
    assert!(results.iter().all(|&s| s == 1), "{results:?}");
}
