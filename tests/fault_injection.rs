//! Acceptance tests for the fault-injection subsystem: a seeded
//! bit-error-rate plan is healed by the link protocol and reported
//! deterministically; an unrecoverable fault is detected and quarantined
//! through the host diagnostics path instead of hanging the machine.

use qcdoc::core::functional::{FaultEvent, FaultPlan, FunctionalMachine};
use qcdoc::geometry::{Axis, NodeId, TorusShape};
use qcdoc::host::qdaemon::{NodeState, Qdaemon};
use qcdoc::scu::dma::DmaDescriptor;

const WORDS: u32 = 1000;

/// Seed chosen so the 1e-6 per-word draw on node 1, link 0 fires within
/// the first 1000 words (at word 295) — the draws are pure functions of
/// `(seed, node, link, seq)`, so this is stable by construction.
const SEED: u64 = 441;

fn noisy_run() -> (Vec<Vec<u64>>, qcdoc::fault::HealthLedger) {
    let plan = FaultPlan::new(SEED).with_event(FaultEvent::bit_error_rate(1, 0, 1e-6));
    let machine = FunctionalMachine::new(TorusShape::new(&[4])).with_faults(plan);
    machine.run_with_health(|ctx| {
        for i in 0..WORDS as u64 {
            ctx.mem
                .write_word(0x100 + i * 8, ctx.id.0 as u64 * 10_000 + i)
                .unwrap();
        }
        ctx.shift(
            Axis(0).plus(),
            DmaDescriptor::contiguous(0x100, WORDS),
            DmaDescriptor::contiguous(0x8000, WORDS),
        );
        ctx.mem.read_block(0x8000, WORDS as usize).unwrap()
    })
}

#[test]
fn bit_error_rate_is_healed_and_ledgered_deterministically() {
    let (payloads, ledger) = noisy_run();
    // Every node holds its -x neighbour's words, intact: the resend
    // protocol healed the corruption before it reached memory.
    for (rank, got) in payloads.iter().enumerate() {
        let from = (rank + 3) % 4;
        let want: Vec<u64> = (0..WORDS as u64)
            .map(|i| from as u64 * 10_000 + i)
            .collect();
        assert_eq!(got, &want, "node {rank} payload corrupted");
    }
    // The fault fired and was recorded.
    assert!(
        ledger.total_injected() >= 1,
        "the seeded 1e-6 draw must fire"
    );
    assert_eq!(ledger.nodes[1].links[0].injected, ledger.total_injected());
    assert!(
        ledger.total_resends() >= 1,
        "healing requires at least one resend"
    );
    // Recoverable errors leave the end-of-run checksums in agreement.
    assert!(ledger.all_checksums_ok());
    assert!(ledger.unhealthy_nodes().is_empty());
    // Same seed, same ledger: the deterministic fields are bit-identical.
    let (_, again) = noisy_run();
    assert_eq!(ledger.fingerprint(), again.fingerprint());
}

#[test]
fn dead_link_is_quarantined_via_host_diagnostics_not_a_hang() {
    let plan = FaultPlan::new(0).with_event(FaultEvent::dead_link(2, 0, 0));
    let machine = FunctionalMachine::new(TorusShape::new(&[4])).with_faults(plan);
    // The run returns (the wedge watchdog fires) instead of hanging.
    let (_, ledger) = machine.run_with_health(|ctx| {
        ctx.mem.write_word(0x100, ctx.id.0 as u64).unwrap();
        ctx.shift(
            Axis(0).plus(),
            DmaDescriptor::contiguous(0x100, 1),
            DmaDescriptor::contiguous(0x200, 1),
        );
    });
    assert_eq!(ledger.dead_links(), vec![(2, 0)]);
    // The host sweep quarantines the afflicted node and later allocations
    // route around it.
    let mut q = Qdaemon::new(TorusShape::new(&[4, 1, 1, 1, 1, 1]));
    q.boot(&[]);
    let report = q.ingest_health(&ledger);
    assert!(
        report.quarantined.contains(&2),
        "node 2 must be quarantined: {report:?}"
    );
    assert_eq!(report.dead_links, vec![(2, 0)]);
    assert!(!report.clean());
    assert_eq!(q.node_state(NodeId(2)), NodeState::Faulty);
    assert!(
        q.allocate(qcdoc::geometry::PartitionSpec::native(q.machine()))
            .is_err(),
        "a full-machine allocation must be refused after quarantine"
    );
}

#[test]
fn memory_soft_error_is_corrected_and_visible_to_the_sweep() {
    let plan = FaultPlan::new(0).with_event(FaultEvent::mem_bit_flip(3, 0x100, 17));
    let machine = FunctionalMachine::new(TorusShape::new(&[4])).with_faults(plan);
    let (values, ledger) = machine.run_with_health(|ctx| {
        // The flip strikes before the app runs; read what the app sees.
        ctx.mem.read_word(0x100).unwrap()
    });
    // SEC-DED corrects the single-bit flip on the read path: the
    // application never sees the corruption, only the counters do.
    assert!(
        values.iter().all(|&v| v == 0),
        "ECC must hand back the original word: {values:?}"
    );
    assert_eq!(ledger.nodes[3].mem_flips, 1);
    assert!(ledger.nodes[3].ecc_corrected >= 1);
    assert_eq!(ledger.nodes[3].machine_checks, 0);
    // A corrected error is bookkeeping, not a casualty.
    assert!(ledger.unhealthy_nodes().is_empty());
}
