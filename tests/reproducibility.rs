//! Experiment E7: the §4 bit-reproducibility verification, end to end.
//!
//! "A five day simulation was completed on a 128 node machine … and then
//! redone, with the requirement that the resulting QCD configuration be
//! identical in all bits. This was found to be the case. No hardware
//! errors on the SCU links were reported."

use qcdoc::core::distributed::{block_fingerprint, dslash_local, wilson_solve_cg, BlockGeom};
use qcdoc::core::functional::{FaultEvent, FaultPlan, FunctionalMachine};
use qcdoc::geometry::TorusShape;
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc::lattice::gauge::{evolve, EvolveParams};

#[test]
fn gauge_evolution_rerun_is_bit_identical() {
    let lat = Lattice::new([4, 4, 2, 2]);
    let run = || {
        let mut g = GaugeField::hot(lat, 777);
        let history = evolve(&mut g, EvolveParams::default(), 2004, 8);
        (
            g.fingerprint(),
            history.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        )
    };
    let (f1, h1) = run();
    let (f2, h2) = run();
    assert_eq!(f1, f2, "configurations must be identical in all bits");
    assert_eq!(h1, h2, "plaquette histories must be identical in all bits");
}

#[test]
fn distributed_solve_identical_with_and_without_injected_faults() {
    let global = Lattice::new([4, 4, 2, 2]);
    let gauge = GaugeField::hot(global, 13);
    let b = FermionField::gaussian(global, 14);
    let solve = |plan: FaultPlan| {
        let machine = FunctionalMachine::new(TorusShape::new(&[2, 2])).with_faults(plan);
        machine.run(|ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lb = geom.extract_fermion(&b);
            let (x, report) = wilson_solve_cg(ctx, &geom, &lg, &lb, 0.12, 1e-8, 2000);
            (block_fingerprint(&x), report.iterations, report.link_errors)
        })
    };
    let clean = solve(FaultPlan::default());
    let noisy = solve(
        FaultPlan::new(13)
            .with_event(FaultEvent::bit_flip(0, 0, 11, 8))
            .with_event(FaultEvent::bit_flip(2, 3, 70, 33)),
    );
    // Clean run reports no hardware errors (the paper's observation).
    assert!(clean.iter().all(|r| r.2 == 0));
    // Faulty run detects and heals them; physics identical in all bits.
    assert!(noisy.iter().map(|r| r.2).sum::<u64>() >= 2);
    for (c, n) in clean.iter().zip(&noisy) {
        assert_eq!(c.0, n.0, "solution bits diverged under link faults");
        assert_eq!(c.1, n.1, "iteration count diverged under link faults");
    }
}

#[test]
fn decomposition_does_not_change_dslash_bits() {
    // The same global dslash computed on two different machine shapes must
    // agree bitwise with the single-node reference (and hence each other).
    let global = Lattice::new([4, 4, 4, 2]);
    let gauge = GaugeField::hot(global, 21);
    let psi = FermionField::gaussian(global, 22);
    let mut reference = FermionField::zero(global);
    qcdoc::lattice::wilson::WilsonDirac::new(&gauge, 0.1).dslash(&mut reference, &psi);

    for shape in [
        TorusShape::new(&[2, 2]),
        TorusShape::new(&[2, 2, 2]),
        TorusShape::new(&[4]),
    ] {
        let machine = FunctionalMachine::new(shape.clone());
        let ok = machine.run(|ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lp = geom.extract_fermion(&psi);
            let out = dslash_local(ctx, &geom, &lg, &lp);
            geom.local.sites().all(|l| {
                let want = reference.site(geom.global_site(l));
                (0..4).all(|s| {
                    (0..3).all(|c| {
                        out[l].0[s].0[c].re.to_bits() == want.0[s].0[c].re.to_bits()
                            && out[l].0[s].0[c].im.to_bits() == want.0[s].0[c].im.to_bits()
                    })
                })
            })
        });
        assert!(
            ok.iter().all(|&x| x),
            "shape {shape} diverged from reference"
        );
    }
}

#[test]
fn checkpointed_solve_is_bit_identical_to_uninterrupted_solve() {
    // The self-healing story leans on this: interrupting a CG solve at a
    // checkpoint and resuming from the archived bits must not change a
    // single bit of the answer, or a recovered campaign would silently
    // diverge from an unrecovered one.
    use qcdoc::lattice::checkpoint::{read_checkpoint, write_checkpoint, CgCheckpoint};
    use qcdoc::lattice::solver::{resume_cgne, solve_cgne, solve_cgne_checkpointed, CgParams};
    use qcdoc::lattice::wilson::WilsonDirac;

    let lat = Lattice::new([4, 4, 4, 4]);
    let gauge = GaugeField::hot(lat, 2004);
    let b = FermionField::gaussian(lat, 10);
    let params = CgParams {
        tolerance: 1e-8,
        max_iterations: 500,
    };
    let op = WilsonDirac::new(&gauge, 0.11);

    let mut x_ref = FermionField::zero(lat);
    let ref_report = solve_cgne(&op, &mut x_ref, &b, params);
    assert!(ref_report.converged);

    let mut x_ck = FermionField::zero(lat);
    let mut sink: Vec<CgCheckpoint> = Vec::new();
    let ck_report = solve_cgne_checkpointed(&op, &mut x_ck, &b, params, 4, &mut sink);
    assert_eq!(
        x_ref.fingerprint(),
        x_ck.fingerprint(),
        "writing checkpoints must not perturb the solve"
    );
    assert_eq!(ref_report.residuals, ck_report.residuals);
    assert!(!sink.is_empty());

    // Resume from an archived mid-solve checkpoint (through bytes, as a
    // restart after a crash would) and land on the same bits.
    let restored = read_checkpoint(&write_checkpoint(&sink[sink.len() / 2])).unwrap();
    let (x_res, res_report) = resume_cgne(&op, &b, &restored, params);
    assert_eq!(
        x_ref.fingerprint(),
        x_res.fingerprint(),
        "resumed solution bits diverged"
    );
    assert_eq!(ref_report.iterations, res_report.iterations);
    assert_eq!(
        ref_report
            .residuals
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>(),
        res_report
            .residuals
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>(),
        "residual history diverged after resume"
    );
}

#[test]
fn link_checksums_agree_after_a_noisy_run() {
    // §2.2: "checksums at each end of the link are kept, so at the
    // conclusion of a calculation, these checksums can be compared."
    use qcdoc::geometry::Axis;
    use qcdoc::scu::dma::DmaDescriptor;
    let plan = FaultPlan::new(0).with_event(FaultEvent::bit_flip(0, 0, 1, 25));
    let machine = FunctionalMachine::new(TorusShape::new(&[2])).with_faults(plan);
    let results = machine.run(|ctx| {
        for i in 0..16u64 {
            ctx.mem
                .write_word(0x100 + i * 8, ctx.id.0 as u64 * 1000 + i)
                .unwrap();
        }
        ctx.shift(
            Axis(0).plus(),
            DmaDescriptor::contiguous(0x100, 16),
            DmaDescriptor::contiguous(0x800, 16),
        );
        // Report this node's send checksum (toward +x) and receive checksum
        // (from -x): on a 2-ring they pair up across the two nodes.
        (
            ctx.send_checksum(Axis(0).plus()),
            ctx.recv_checksum(Axis(0).minus()),
            ctx.link_errors(),
        )
    });
    // Node 0's send pairs with node 1's receive and vice versa.
    assert_eq!(
        results[0].0, results[1].1,
        "node0 -> node1 checksum mismatch"
    );
    assert_eq!(
        results[1].0, results[0].1,
        "node1 -> node0 checksum mismatch"
    );
    assert!(
        results.iter().map(|r| r.2).sum::<u64>() >= 1,
        "the fault must be seen"
    );
}
