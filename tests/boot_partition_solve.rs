//! End-to-end pipeline: boot the machine through the qdaemon, carve a
//! logical partition in software, run a distributed physics job on the
//! functional engine over that partition's shape, and return the output to
//! the host — the full §3 software stack in one flow.

use qcdoc::core::comm::global_sum_f64;
use qcdoc::core::distributed::{wilson_solve_cg, wilson_solve_cg_async, BlockGeom};
use qcdoc::core::functional::FunctionalMachine;
use qcdoc::core::ShardedMachine;
use qcdoc::geometry::{NodeCoord, PartitionSpec, TorusShape};
use qcdoc::host::qcsh::{parse, Qcsh};
use qcdoc::host::qdaemon::{NodeState, Qdaemon};
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice};

#[test]
fn boot_partition_run_return_output() {
    // Physical machine: a 32-node box.
    let machine_shape = TorusShape::new(&[2, 2, 2, 2, 2, 1]);
    let mut qdaemon = Qdaemon::new(machine_shape.clone());
    let boot = qdaemon.boot(&[]);
    assert_eq!(boot.booted, 32);

    // Carve a 4-D partition: fold the last two spanned axes together.
    let spec = PartitionSpec::whole_machine(&machine_shape, &[&[0], &[1], &[2], &[3, 4, 5]]);
    let id = qdaemon.allocate(spec).expect("allocation");
    let logical = qdaemon.partition(id).unwrap().logical_shape().clone();
    assert_eq!(logical.dims(), &[2, 2, 2, 4]);
    assert_eq!(qdaemon.partition(id).unwrap().dilation(), 1);

    // Run the job on the partition's logical shape.
    let global = Lattice::new([4, 4, 4, 8]);
    let gauge = GaugeField::hot(global, 11);
    let b = FermionField::gaussian(global, 12);
    let machine = FunctionalMachine::new(logical);
    let results = machine.run(|ctx| {
        let geom = BlockGeom::new(ctx, global);
        let lg = geom.extract_gauge(&gauge);
        let lb = geom.extract_fermion(&b);
        let (x, report) = wilson_solve_cg(ctx, &geom, &lg, &lb, 0.11, 1e-7, 2000);
        let norm = global_sum_f64(ctx, x.iter().map(|s| s.norm_sqr()).sum());
        (report.converged, report.iterations, norm)
    });
    assert!(
        results.iter().all(|r| r.0),
        "all nodes must agree the solve converged"
    );
    let iters = results[0].1;
    assert!(
        results.iter().all(|r| r.1 == iters),
        "iteration counts must agree"
    );
    // The global norm is a machine-wide reduction: identical on all nodes.
    let norm_bits = results[0].2.to_bits();
    assert!(results.iter().all(|r| r.2.to_bits() == norm_bits));

    // Return output to the host and release.
    qdaemon.return_output(
        id,
        format!("CG converged in {iters} iterations\n").as_bytes(),
    );
    assert!(String::from_utf8_lossy(qdaemon.job_output(id).unwrap()).contains("converged"));
    qdaemon.release(id);
    let census = qdaemon.census();
    assert_eq!((census.ready, census.busy), (32, 0));
}

#[test]
fn sharded_engine_boots_partitions_and_solves() {
    // Same pipeline, but the partition runs on the sharded virtual-node
    // engine: a couple of workers multiplex all 32 cooperative node
    // programs instead of one OS thread per node. The async solver is
    // line-for-line the blocking one, so the two engines must agree on
    // the converged solution bit-for-bit.
    let machine_shape = TorusShape::new(&[2, 2, 2, 2, 2, 1]);
    let mut qdaemon = Qdaemon::new(machine_shape.clone());
    assert_eq!(qdaemon.boot(&[]).booted, 32);
    let spec = PartitionSpec::whole_machine(&machine_shape, &[&[0], &[1], &[2], &[3, 4, 5]]);
    let id = qdaemon.allocate(spec).expect("allocation");
    let logical = qdaemon.partition(id).unwrap().logical_shape().clone();

    let global = Lattice::new([4, 4, 4, 8]);
    let gauge = GaugeField::hot(global, 11);
    let b = FermionField::gaussian(global, 12);
    let solve = |ctx: &mut qcdoc::core::functional::NodeCtx| {
        let geom = BlockGeom::new(ctx, global);
        let lg = geom.extract_gauge(&gauge);
        let lb = geom.extract_fermion(&b);
        wilson_solve_cg(ctx, &geom, &lg, &lb, 0.11, 1e-7, 2000)
    };
    let reference = FunctionalMachine::new(logical.clone()).run(solve);
    let sharded = ShardedMachine::new(logical)
        .with_workers(2)
        .run(async |ctx| {
            let geom = BlockGeom::new(ctx, global);
            let lg = geom.extract_gauge(&gauge);
            let lb = geom.extract_fermion(&b);
            wilson_solve_cg_async(ctx, &geom, &lg, &lb, 0.11, 1e-7, 2000).await
        });
    qdaemon.release(id);

    assert_eq!(reference.len(), sharded.len());
    for ((rx, rr), (sx, sr)) in reference.iter().zip(&sharded) {
        assert!(sr.converged, "sharded solve must converge");
        assert_eq!(rr.iterations, sr.iterations);
        assert_eq!(
            rr.final_residual.to_bits(),
            sr.final_residual.to_bits(),
            "engines must agree on the residual bits"
        );
        assert_eq!(rx, sx, "engines must agree on the solution exactly");
    }
}

#[test]
fn qcsh_session_drives_the_stack() {
    let mut qdaemon = Qdaemon::new(TorusShape::new(&[4, 2, 2, 1, 1, 1]));
    let mut sh = Qcsh::new(1001, &["/home/lqcd"]);
    let boot = sh.execute(&mut qdaemon, &parse("qboot").unwrap());
    assert!(boot.contains("booted 16 nodes"));
    let part = sh.execute(&mut qdaemon, &parse("qpartition 2").unwrap());
    assert!(part.contains("partition 0"), "{part}");
    // Partition rank 2 folds axes 1.. into one logical axis: 4 x 4.
    assert!(part.contains("4x4"), "{part}");
    qdaemon.return_output(0, b"plaquette 0.58\n");
    let out = sh.execute(&mut qdaemon, &parse("qcat 0").unwrap());
    assert!(out.contains("plaquette"));
    sh.execute(&mut qdaemon, &parse("qfree 0").unwrap());
    assert_eq!(
        sh.execute(&mut qdaemon, &parse("qstat").unwrap()),
        "ready 16 busy 0 faulty 0 unbooted 0 spare 0 blacklisted 0"
    );
}

#[test]
fn faulty_node_blocks_whole_machine_allocation_but_not_subbox() {
    let machine_shape = TorusShape::new(&[4, 2, 2, 2, 1, 1]);
    let mut qdaemon = Qdaemon::new(machine_shape.clone());
    qdaemon.boot(&[31]); // last node faulty
    assert_eq!(
        qdaemon.node_state(qcdoc::geometry::NodeId(31)),
        NodeState::Faulty
    );
    // Whole machine fails…
    assert!(qdaemon
        .allocate(PartitionSpec::native(&machine_shape))
        .is_err());
    // …but a sub-box avoiding the faulty node allocates fine.
    let spec = PartitionSpec {
        origin: NodeCoord::ORIGIN,
        extents: vec![2, 2, 2, 2, 1, 1],
        groups: vec![vec![0, 3], vec![1], vec![2]],
    };
    let id = qdaemon.allocate(spec).expect("sub-box allocation");
    assert_eq!(qdaemon.partition(id).unwrap().node_count(), 16);
}
