//! Experiment E13: multi-tenant scheduling on the 12,288-node machine.
//!
//! The paper's §3.1 partitioning story — many independent user partitions
//! carved from one mesh "without moving cables" — is only an operations
//! win if the host can run a mixed workload for a long time without
//! starving anyone, without letting any tenant exceed its share of the
//! machine, and without preemption ever costing a bit of physics. This
//! file is that claim, compressed:
//!
//! * a seeded soak of 240 mixed-tenant jobs on the full [8,8,6,4,4,2]
//!   shape, asserting zero starvation, bounded waits, and per-tenant
//!   quota high-water marks;
//! * a determinism replay on a smaller machine (same seed → byte-equal
//!   decision logs);
//! * the crown jewel: a CG solve preempted mid-run by a production job,
//!   resumed on a *different partition shape*, producing a solution
//!   bit-identical to the uninterrupted run.

use qcdoc::geometry::TorusShape;
use qcdoc::host::Qdaemon;
use qcdoc::lattice::checkpoint::{read_checkpoint, write_checkpoint};
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc::lattice::solver::{resume_cgne_on, solve_cgne_checkpointed, CgParams};
use qcdoc::lattice::wilson::WilsonDirac;
use qcdoc::sched::{
    JobSpec, JobStatus, Priority, SchedConfig, SchedEvent, Scheduler, ShapeRequest, SimMesh,
    TenantConfig,
};
use qcdoc::telemetry::FlightDumpGuard;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The full installation of the paper: 8 x 8 x 6 x 4 x 4 x 2 = 12,288.
fn big_machine() -> TorusShape {
    TorusShape::new(&[8, 8, 6, 4, 4, 2])
}

fn shape(extents: &[usize], groups: &[&[usize]]) -> ShapeRequest {
    ShapeRequest {
        extents: extents.to_vec(),
        groups: groups.iter().map(|g| g.to_vec()).collect(),
    }
}

/// Valid partition shapes of the big machine, largest first. Every
/// multi-axis group ends on an extent-2 axis (or spans the full machine
/// extent), so each ring closes with unit dilation.
fn shape_menu() -> Vec<ShapeRequest> {
    vec![
        shape(&[8, 8, 6, 4, 4, 2], &[&[0], &[1], &[2], &[3], &[4], &[5]]), // 12288
        shape(&[8, 8, 6, 4, 4, 1], &[&[0], &[1], &[2], &[3], &[4]]),       // 6144
        shape(&[8, 8, 6, 4, 2, 1], &[&[0], &[1], &[2], &[3, 4]]),          // 3072
        shape(&[8, 8, 6, 2, 2, 1], &[&[0], &[1], &[2], &[3, 4]]),          // 1536
        shape(&[8, 8, 6, 2, 1, 1], &[&[0], &[1], &[2, 3]]),                // 768
        shape(&[8, 8, 2, 2, 1, 1], &[&[0], &[1], &[2, 3]]),                // 256
        shape(&[8, 2, 2, 1, 1, 1], &[&[0], &[1, 2]]),                      // 32
        shape(&[2, 2, 1, 1, 1, 1], &[&[0, 1]]),                            // 4
    ]
}

/// Tenant mix: a flagship group entitled to the whole machine, two
/// mid-size groups with hard node quotas, and a scavenger account.
fn add_tenants(sched: &mut Scheduler) {
    sched.add_tenant(
        "alpha",
        TenantConfig {
            weight: 2.0,
            node_quota: 12_288,
            max_queued: usize::MAX,
        },
    );
    sched.add_tenant(
        "beta",
        TenantConfig {
            weight: 1.0,
            node_quota: 6_144,
            max_queued: usize::MAX,
        },
    );
    sched.add_tenant(
        "gamma",
        TenantConfig {
            weight: 1.0,
            node_quota: 3_072,
            max_queued: usize::MAX,
        },
    );
    sched.add_tenant(
        "scav",
        TenantConfig {
            weight: 0.25,
            node_quota: 12_288,
            max_queued: usize::MAX,
        },
    );
}

/// Drive one seeded soak against a simulated mesh; returns the scheduler
/// after a full drain (panics if the queue cannot drain).
fn run_soak(machine: TorusShape, jobs: usize, seed: u64, aging_ticks: u64) -> Scheduler {
    let mut sched = Scheduler::new(
        machine.clone(),
        SchedConfig {
            aging_ticks,
            window: 8,
            ..SchedConfig::default()
        },
    );
    add_tenants(&mut sched);
    let mut mesh = SimMesh::new(machine.clone());
    let menu: Vec<ShapeRequest> = shape_menu()
        .into_iter()
        .filter(|s| s.node_count() <= machine.node_count())
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let tenants = ["alpha", "beta", "gamma", "scav"];
    let quotas = [12_288usize, 6_144, 3_072, 12_288];
    for _ in 0..jobs {
        let t = rng.gen_range(0..tenants.len());
        let priority = match rng.gen_range(0..10) {
            0 => Priority::Production,
            1..=6 => Priority::Standard,
            _ => Priority::Scavenger,
        };
        // Primary shape within quota plus the next smaller size as an
        // alternate: enough flexibility for a preempted job to resume
        // in a different hole, not so much that big jobs always
        // degrade to crumbs instead of preempting.
        let affordable: Vec<&ShapeRequest> = menu
            .iter()
            .filter(|s| s.node_count() <= quotas[t])
            .collect();
        let first = rng.gen_range(0..affordable.len());
        let shapes: Vec<ShapeRequest> = affordable[first..]
            .iter()
            .take(2)
            .map(|&s| s.clone())
            .collect();
        let work = rng.gen_range(2..=24u64);
        sched
            .submit(JobSpec {
                tenant: tenants[t].into(),
                priority,
                shapes,
                work,
                preemptible: true,
            })
            .expect("soak submissions are all admissible");
        let lull = rng.gen_range(0..=2u64);
        if lull > 0 {
            sched.advance(
                lull.min(sched.next_completion_in().unwrap_or(lull)),
                &mut mesh,
            );
        }
    }
    assert!(
        sched.drain(&mut mesh, 200_000),
        "soak queue failed to drain"
    );
    assert_eq!(mesh.free_count(), machine.node_count(), "nodes leaked");
    sched
}

#[test]
fn soak_240_jobs_on_the_full_machine_no_starvation_no_quota_breach() {
    let aging = 48;
    let sched = run_soak(big_machine(), 240, 2004, aging);

    // If any assertion below fails, the scheduler's flight ring
    // (checkpoints, preemptions, resumes) lands in target/ as a black
    // box instead of leaving only a backtrace.
    let mut flight_guard = FlightDumpGuard::new("target/flight_sched_soak.txt");
    let flight: Vec<_> = sched.flight_recorder().events().copied().collect();
    flight_guard.extend(&flight);

    // Zero starvation: every admitted job started and completed.
    let mut max_wait = 0;
    for job in sched.jobs() {
        assert_eq!(
            job.status,
            JobStatus::Completed,
            "{} ({}, {}) never completed",
            job.id,
            job.spec.tenant,
            job.spec.priority.label()
        );
        assert!(job.first_started_at.is_some());
        max_wait = max_wait.max(job.wait_ticks);
    }
    // Bounded wait: strict aging makes a starving job a backfill
    // barrier, so no wait can grow past the aging threshold by more
    // than the drain time of the jobs already holding nodes (work is
    // capped at 24 ticks; the factor covers preempt-requeue episodes
    // and queued starving jobs draining in turn).
    assert!(
        max_wait < aging + 24 * 16,
        "a job waited {max_wait} ticks — starvation guard failed"
    );

    // Quota enforcement witness: high-water concurrent nodes per tenant.
    for (tenant, quota) in [
        ("alpha", 12_288),
        ("beta", 6_144),
        ("gamma", 3_072),
        ("scav", 12_288),
    ] {
        let stats = sched.tenant_stats(tenant).unwrap();
        assert!(
            stats.max_running_nodes <= quota,
            "{tenant} peaked at {} nodes over its quota {quota}",
            stats.max_running_nodes
        );
        assert_eq!(stats.completed + stats.canceled, stats.submitted);
        assert!(stats.completed > 0, "{tenant} ran nothing in the soak");
    }

    // The mix actually exercised the policy: the machine was busy, and
    // preemption fired at least once.
    assert!(
        sched.occupancy_ratio() > 0.5,
        "soak occupancy only {:.2}",
        sched.occupancy_ratio()
    );
    assert!(sched.preemptions() > 0, "soak never exercised preemption");
}

#[test]
fn same_seed_same_decisions() {
    // A smaller machine keeps the replay cheap; the policy code path is
    // identical. Byte-equal decision logs mean every placement, every
    // preemption and every completion landed on the same tick.
    let machine = TorusShape::new(&[8, 2, 2, 2, 1, 1]);
    let log = |seed| {
        let sched = run_soak(machine.clone(), 80, seed, 32);
        format!("{:?}", sched.events())
    };
    assert_eq!(log(7), log(7));
    // And the log is not trivially empty or seed-independent.
    assert_ne!(log(7), log(8));
}

#[test]
fn preempted_cg_resumes_on_a_different_shape_bit_identically() {
    // Physics setup: one Wilson CG solve, solved once uninterrupted
    // with a checkpoint taken at every iteration boundary.
    let lat = Lattice::new([4, 4, 2, 2]);
    let gauge = GaugeField::hot(lat, 2004);
    let op = WilsonDirac::new(&gauge, 0.12);
    let b = FermionField::gaussian(lat, 11);
    let params = CgParams::default();
    let mut x_ref = FermionField::zero(lat);
    let mut sink = Vec::new();
    let reference = solve_cgne_checkpointed(&op, &mut x_ref, &b, params, 1, &mut sink);
    assert!(reference.iterations > 20, "need a nontrivial solve");

    // Host setup: a real qdaemon as the scheduler's mesh. One tick of
    // scheduler time is one CG iteration of service.
    let machine = TorusShape::new(&[4, 2, 2]);
    let mut q = Qdaemon::new(machine.clone());
    q.boot(&[]);
    let mut sched = Scheduler::new(machine, SchedConfig::default());
    sched.add_tenant("lqcd", TenantConfig::default());
    sched.add_tenant("urgent", TenantConfig::default());
    // Whole machine folded to [8,2], with a half-machine [8] fallback.
    let whole = shape(&[4, 2, 2], &[&[0, 1], &[2]]);
    let half = shape(&[4, 2, 1], &[&[0, 1]]);
    let cg = sched
        .submit(JobSpec {
            tenant: "lqcd".into(),
            priority: Priority::Scavenger,
            shapes: vec![whole, half.clone()],
            work: reference.iterations as u64,
            preemptible: true,
        })
        .unwrap();
    sched.schedule(&mut q);
    let rec = sched.job(cg).unwrap();
    assert_eq!(rec.status, JobStatus::Running);
    assert_eq!(rec.placement.as_ref().unwrap().logical.dims(), &[8, 2]);
    assert_eq!(q.census().busy, 16);

    // Seven iterations of service, then a production job arrives
    // needing a half machine no hole can satisfy: the CG job is evicted.
    sched.advance(7, &mut q);
    let prod = sched
        .submit(JobSpec {
            tenant: "urgent".into(),
            priority: Priority::Production,
            shapes: vec![half],
            work: 1_000,
            preemptible: false,
        })
        .unwrap();
    sched.schedule(&mut q);
    assert_eq!(sched.job(cg).unwrap().status, JobStatus::Preempted);
    assert_eq!(sched.job(prod).unwrap().status, JobStatus::Running);
    let delivered = reference.iterations as u64 - sched.job(cg).unwrap().remaining;
    assert_eq!(delivered, 7, "preemption must land mid-solve");

    // The driver answers the Preempted event by archiving the exact-bits
    // checkpoint at the iteration boundary the scheduler stopped on.
    let boundary = sink
        .iter()
        .find(|c| c.iterations == delivered as usize)
        .expect("per-iteration sink has the boundary");
    sched.store_checkpoint(cg, write_checkpoint(boundary));

    // Next pass: the whole-machine shape no longer exists (production
    // holds a half), so the job resumes on the *other* half — a
    // different partition shape than it started on.
    sched.schedule(&mut q);
    let rec = sched.job(cg).unwrap();
    assert_eq!(rec.status, JobStatus::Running);
    assert_eq!(rec.preemptions, 1);
    assert_eq!(rec.shape_history[0].dims(), &[8, 2]);
    assert_eq!(
        rec.shape_history[1].dims(),
        &[8],
        "resume must change shape"
    );
    assert!(sched
        .events()
        .iter()
        .any(|e| matches!(e, SchedEvent::Preempted { job, by, .. } if *job == cg && *by == prod)));
    assert!(sched
        .events()
        .iter()
        .any(|e| matches!(e, SchedEvent::Resumed { job, .. } if *job == cg)));

    // The driver answers the Resumed event by rebuilding solver state
    // from the blob — validated resume, then run to convergence.
    let blob = sched
        .take_checkpoint(cg)
        .expect("blob travels with the job");
    let restored = read_checkpoint(&blob).unwrap();
    let template = FermionField::zero(lat);
    let (x_res, resumed_report) = resume_cgne_on(&op, &template, &restored, params).unwrap();

    // Bit-identity: the preempted-and-migrated solve equals the
    // uninterrupted one in all bits — solution, residual history, totals.
    assert_eq!(x_ref.fingerprint(), x_res.fingerprint());
    assert_eq!(reference, resumed_report);
    for (a, b) in reference
        .residuals
        .iter()
        .zip(resumed_report.residuals.iter())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "residual history diverged");
    }

    // Bookkeeping drains: both jobs run out, the machine comes back.
    assert!(sched.drain(&mut q, 10_000));
    assert_eq!(sched.job(cg).unwrap().status, JobStatus::Completed);
    assert_eq!(q.census().ready, 16);
}
