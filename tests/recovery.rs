//! Self-healing acceptance: a seeded hardware fault kills a run mid-CG;
//! the stack quarantines the culprit through the qdaemon, re-allocates a
//! spare partition, restores from the last checkpoint — and the recovered
//! solution is **bit-identical** to a run that never faulted.
//!
//! This is the paper's operating story end to end: the Ethernet/JTAG
//! diagnostics path finds the broken daughterboard, the partitioning
//! software routes the job around it, and determinism (dimension-ordered
//! global sums + exact-bits checkpoints) guarantees physics results are
//! unaffected.

use qcdoc::core::distributed::{
    assemble_checkpoint, resume_blocks, wilson_cg_segment, wilson_cg_segment_async, BlockGeom,
    CgResume, CgSegmentOut,
};
use qcdoc::core::functional::{FaultEvent, FaultPlan, FunctionalMachine, NodeCtx};
use qcdoc::core::recovery::{RecoveryConfig, RecoveryReport, Replacement, SegmentVerdict};
use qcdoc::core::ShardedMachine;
use qcdoc::geometry::{NodeCoord, PartitionSpec, TorusShape};
use qcdoc::host::{Qdaemon, RecoveryPlanner};
use qcdoc::lattice::checkpoint::{read_checkpoint, write_checkpoint, CgCheckpoint};
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc::telemetry::summary_json;

const KAPPA: f64 = 0.12;
const TOL: f64 = 1e-7;
const MAX_ITERS: usize = 400;
const SEG_ITERS: usize = 6;

fn global() -> Lattice {
    Lattice::new([4, 4, 2, 2])
}

/// One recovery-segment of the distributed Wilson solve: fresh when no
/// checkpoint exists, restored from exact bits otherwise.
fn cg_segment_app(
    ctx: &mut NodeCtx,
    gauge: &GaugeField,
    b: &FermionField,
    state: &Option<CgCheckpoint>,
    segment_iters: usize,
) -> CgSegmentOut {
    let geom = BlockGeom::new(ctx, global());
    let lg = geom.extract_gauge(gauge);
    let lb = geom.extract_fermion(b);
    match state {
        None => wilson_cg_segment(
            ctx,
            &geom,
            &lg,
            &lb,
            KAPPA,
            TOL,
            MAX_ITERS,
            None,
            segment_iters,
        ),
        Some(ckpt) => {
            let (x, r, p) = resume_blocks(&geom, ckpt);
            let resume = CgResume {
                x: &x,
                r: &r,
                p: &p,
                rsq: ckpt.rsq,
                bref: ckpt.bref,
                iterations: ckpt.iterations,
            };
            wilson_cg_segment(
                ctx,
                &geom,
                &lg,
                &lb,
                KAPPA,
                TOL,
                MAX_ITERS,
                Some(resume),
                segment_iters,
            )
        }
    }
}

/// Async twin of [`cg_segment_app`] for the sharded engine. Restoration
/// and segmenting logic are identical; only the solver entry point is the
/// cooperative one.
async fn cg_segment_app_async(
    ctx: &mut NodeCtx,
    gauge: &GaugeField,
    b: &FermionField,
    state: &Option<CgCheckpoint>,
    segment_iters: usize,
) -> CgSegmentOut {
    let geom = BlockGeom::new(ctx, global());
    let lg = geom.extract_gauge(gauge);
    let lb = geom.extract_fermion(b);
    match state {
        None => {
            wilson_cg_segment_async(
                ctx,
                &geom,
                &lg,
                &lb,
                KAPPA,
                TOL,
                MAX_ITERS,
                None,
                segment_iters,
            )
            .await
        }
        Some(ckpt) => {
            let (x, r, p) = resume_blocks(&geom, ckpt);
            let resume = CgResume {
                x: &x,
                r: &r,
                p: &p,
                rsq: ckpt.rsq,
                bref: ckpt.bref,
                iterations: ckpt.iterations,
            };
            wilson_cg_segment_async(
                ctx,
                &geom,
                &lg,
                &lb,
                KAPPA,
                TOL,
                MAX_ITERS,
                Some(resume),
                segment_iters,
            )
            .await
        }
    }
}

/// Half-machine spec on a [2,2,2,2] box: a [2,2,2] logical partition with
/// a spare twin in the other x3 half.
fn half_spec() -> PartitionSpec {
    PartitionSpec {
        origin: NodeCoord::ORIGIN,
        extents: vec![2, 2, 2, 1],
        groups: vec![vec![0], vec![1], vec![2]],
    }
}

#[test]
fn faulted_run_recovers_bit_identically_on_the_spare_partition() {
    let gauge = GaugeField::hot(global(), 21);
    let b = FermionField::gaussian(global(), 22);

    // Reference: the same segmented solve on a fault-free machine (the
    // distributed suite proves segmenting itself is bit-transparent).
    let logical = TorusShape::new(&[2, 2, 2]);
    let ref_outs = FunctionalMachine::new(logical.clone())
        .run(|ctx| cg_segment_app(ctx, &gauge, &b, &None, usize::MAX));
    assert!(ref_outs.iter().all(|o| o.converged && !o.wedged));
    let ref_ckpt = assemble_checkpoint(&logical, global(), &ref_outs, &[]);

    // Faulted run: physical node 3's +x transmitter goes silent mid-solve.
    let mut qdaemon = Qdaemon::new(TorusShape::new(&[2, 2, 2, 2]));
    qdaemon.boot(&[]);
    let machine_faults = FaultPlan::new(7).with_event(FaultEvent::dead_link(3, 0, 300));
    let mut planner =
        RecoveryPlanner::new(&mut qdaemon, half_spec(), machine_faults, false).unwrap();
    assert_eq!(planner.local_faults().events.len(), 1);

    let machine = FunctionalMachine::new(planner.partition().logical_shape().clone())
        .with_faults(planner.local_faults())
        .with_wedge_timeout(5_000);

    let mut prior_residuals: Vec<f64> = Vec::new();
    let (recovered, report) = machine
        .run_with_recovery(
            RecoveryConfig::default(),
            None,
            |ctx, state: &Option<CgCheckpoint>| cg_segment_app(ctx, &gauge, &b, state, SEG_ITERS),
            |shape, outs: Vec<CgSegmentOut>| {
                let ckpt = assemble_checkpoint(shape, global(), &outs, &prior_residuals);
                prior_residuals = ckpt.residuals.clone();
                if ckpt.converged {
                    SegmentVerdict::Done(ckpt)
                } else {
                    // Persist through the NERSC-style archive machinery, as
                    // a real campaign would, and resume from the read-back.
                    let bytes = write_checkpoint(&ckpt);
                    SegmentVerdict::Continue(Some(read_checkpoint(&bytes).unwrap()))
                }
            },
            |ledger| {
                planner.quarantine_and_replan(&mut qdaemon, ledger).map(
                    |(part, faults, degraded)| Replacement {
                        shape: part.logical_shape().clone(),
                        faults,
                        degraded,
                    },
                )
            },
        )
        .expect("the spare half must carry the job home");

    // One quarantine, no degradation, and the job finished.
    assert_eq!(report.recoveries, 1);
    assert!(!report.degraded);
    assert!(
        report.segments >= 2,
        "fault must strike a multi-segment run"
    );
    assert!(recovered.converged);

    // Bit-identical to the fault-free run: same solution bits, same
    // residual history, same digest.
    assert_eq!(recovered.iterations, ref_ckpt.iterations);
    assert_eq!(recovered.x, ref_ckpt.x);
    assert_eq!(
        recovered
            .residuals
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>(),
        ref_ckpt
            .residuals
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>()
    );
    assert_eq!(recovered.digest(), ref_ckpt.digest());

    // The recovery overhead is visible to the exporters.
    let json = summary_json(&report.metrics, &report.spans);
    for key in [
        "recovery_segments",
        "recovery_quarantines",
        "recovery_repartitions",
        "recovery_checkpoint_restores",
    ] {
        assert!(json.contains(key), "summary must report {key}: {json}");
    }

    // Host-side: the culprit is quarantined, the spare half is busy.
    let census = qdaemon.census();
    assert_eq!((census.busy, census.faulty), (8, 1));
    assert_eq!(planner.partition().spec().origin.get(3), 1);
}

/// Run the standard faulted campaign — node 3's +x transmitter dies at
/// cycle 300, the planner swaps in the spare half — on either engine:
/// the thread-per-node engine when `sharded_workers` is `None`, the
/// sharded virtual-node engine with that many workers otherwise.
fn faulted_recovery_on(
    gauge: &GaugeField,
    b: &FermionField,
    sharded_workers: Option<usize>,
) -> (CgCheckpoint, RecoveryReport) {
    let mut qdaemon = Qdaemon::new(TorusShape::new(&[2, 2, 2, 2]));
    qdaemon.boot(&[]);
    let machine_faults = FaultPlan::new(7).with_event(FaultEvent::dead_link(3, 0, 300));
    let mut planner =
        RecoveryPlanner::new(&mut qdaemon, half_spec(), machine_faults, false).unwrap();
    let shape = planner.partition().logical_shape().clone();
    let faults = planner.local_faults();

    let mut prior_residuals: Vec<f64> = Vec::new();
    let mut reduce = |shape: &TorusShape, outs: Vec<CgSegmentOut>| {
        let ckpt = assemble_checkpoint(shape, global(), &outs, &prior_residuals);
        prior_residuals = ckpt.residuals.clone();
        if ckpt.converged {
            SegmentVerdict::Done(ckpt)
        } else {
            let bytes = write_checkpoint(&ckpt);
            SegmentVerdict::Continue(Some(read_checkpoint(&bytes).unwrap()))
        }
    };
    let mut replan = |ledger: &qcdoc::core::functional::HealthLedger| {
        planner
            .quarantine_and_replan(&mut qdaemon, ledger)
            .map(|(part, faults, degraded)| Replacement {
                shape: part.logical_shape().clone(),
                faults,
                degraded,
            })
    };

    let out = match sharded_workers {
        None => FunctionalMachine::new(shape)
            .with_faults(faults)
            .with_wedge_timeout(5_000)
            .run_with_recovery(
                RecoveryConfig::default(),
                None,
                |ctx, state: &Option<CgCheckpoint>| cg_segment_app(ctx, gauge, b, state, SEG_ITERS),
                &mut reduce,
                &mut replan,
            ),
        Some(workers) => ShardedMachine::new(shape)
            .with_faults(faults)
            .with_wedge_timeout(5_000)
            .with_workers(workers)
            .run_with_recovery(
                RecoveryConfig::default(),
                None,
                async |ctx, state: &Option<CgCheckpoint>| {
                    cg_segment_app_async(ctx, gauge, b, state, SEG_ITERS).await
                },
                &mut reduce,
                &mut replan,
            ),
    };
    out.expect("the spare half must carry the job home")
}

#[test]
fn sharded_recovery_reproduces_thread_engine_residual_bits() {
    // Same fault, same planner, same checkpoints — one run on the
    // thread-per-node engine, one multiplexed onto 3 worker threads.
    // The whole point of the shared pump/controller plumbing is that the
    // execution strategy is invisible to the physics: recovered solution
    // bits, residual history, and archive digest must all agree.
    let gauge = GaugeField::hot(global(), 21);
    let b = FermionField::gaussian(global(), 22);

    let (thread_ckpt, thread_report) = faulted_recovery_on(&gauge, &b, None);
    let (sharded_ckpt, sharded_report) = faulted_recovery_on(&gauge, &b, Some(3));

    assert_eq!(sharded_report.recoveries, 1);
    assert!(!sharded_report.degraded);
    assert_eq!(sharded_report.segments, thread_report.segments);
    assert!(sharded_ckpt.converged);

    assert_eq!(sharded_ckpt.iterations, thread_ckpt.iterations);
    assert_eq!(sharded_ckpt.x, thread_ckpt.x);
    assert_eq!(
        sharded_ckpt
            .residuals
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>(),
        thread_ckpt
            .residuals
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>(),
        "recovered residual history must match the thread engine bit-for-bit"
    );
    assert_eq!(sharded_ckpt.digest(), thread_ckpt.digest());
}

#[test]
fn run_degrades_to_a_smaller_partition_when_no_spare_exists() {
    let gauge = GaugeField::hot(global(), 31);
    let b = FermionField::gaussian(global(), 32);

    // The whole 8-node machine is the job's partition: a dead wire leaves
    // no same-size spare, only smaller slabs.
    let machine_shape = TorusShape::new(&[2, 2, 2]);
    let mut qdaemon = Qdaemon::new(machine_shape.clone());
    qdaemon.boot(&[]);
    let machine_faults = FaultPlan::new(9).with_event(FaultEvent::dead_link(6, 0, 100));
    let mut planner = RecoveryPlanner::new(
        &mut qdaemon,
        PartitionSpec::native(&machine_shape),
        machine_faults,
        true,
    )
    .unwrap();

    let machine = FunctionalMachine::new(planner.partition().logical_shape().clone())
        .with_faults(planner.local_faults())
        .with_wedge_timeout(5_000);

    let mut prior_residuals: Vec<f64> = Vec::new();
    let (result, report) = machine
        .run_with_recovery(
            RecoveryConfig::default(),
            None,
            |ctx, state: &Option<CgCheckpoint>| cg_segment_app(ctx, &gauge, &b, state, SEG_ITERS),
            |shape, outs: Vec<CgSegmentOut>| {
                let ckpt = assemble_checkpoint(shape, global(), &outs, &prior_residuals);
                prior_residuals = ckpt.residuals.clone();
                if ckpt.converged {
                    SegmentVerdict::Done(ckpt)
                } else {
                    SegmentVerdict::Continue(Some(ckpt))
                }
            },
            |ledger| {
                planner.quarantine_and_replan(&mut qdaemon, ledger).map(
                    |(part, faults, degraded)| Replacement {
                        shape: part.logical_shape().clone(),
                        faults,
                        degraded,
                    },
                )
            },
        )
        .expect("a degraded slab must finish the job");

    // Degraded but done: correctness survives, bit-identity is not claimed
    // (a different machine shape reorders the global sums).
    assert!(report.degraded);
    assert_eq!(report.recoveries, 1);
    assert!(result.converged);
    assert_eq!(planner.partition().node_count(), 4);
    let census = qdaemon.census();
    assert_eq!((census.busy, census.faulty), (4, 1));
}

#[test]
fn checkpoints_are_portable_across_machine_shapes() {
    // A checkpoint written by an 8-node [2,2,2] machine resumes on a
    // 4-node [2,2] machine: the archive stores the *global* field, so the
    // reader can re-block it for any geometry.
    let gauge = GaugeField::hot(global(), 41);
    let b = FermionField::gaussian(global(), 42);

    let big = TorusShape::new(&[2, 2, 2]);
    let outs =
        FunctionalMachine::new(big.clone()).run(|ctx| cg_segment_app(ctx, &gauge, &b, &None, 5));
    assert!(outs.iter().all(|o| !o.converged && o.iterations == 5));
    let ckpt = assemble_checkpoint(&big, global(), &outs, &[]);

    let small = TorusShape::new(&[2, 2]);
    let state = Some(ckpt);
    let outs = FunctionalMachine::new(small.clone())
        .run(|ctx| cg_segment_app(ctx, &gauge, &b, &state, usize::MAX));
    assert!(outs.iter().all(|o| o.converged));
    let final_ckpt =
        assemble_checkpoint(&small, global(), &outs, &state.as_ref().unwrap().residuals);
    assert_eq!(
        final_ckpt.residuals.len(),
        final_ckpt.iterations,
        "resumed history must splice onto the prior segment's"
    );
}
