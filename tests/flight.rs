//! Acceptance tests for the per-node flight recorder: a seeded fault
//! plan leaves a black-box event trail that matches the injected
//! schedule, deterministic faults dump bit-identically, the host
//! aggregates node rings next to its own quarantine decisions, and a
//! failing test scope leaves a dump artifact instead of a bare
//! backtrace.

use qcdoc::core::functional::{FaultEvent, FaultPlan, FunctionalMachine};
use qcdoc::geometry::{Axis, TorusShape};
use qcdoc::host::qdaemon::Qdaemon;
use qcdoc::scu::dma::DmaDescriptor;
use qcdoc::telemetry::{FlightDumpGuard, FlightEvent, FlightKind, MachineTelemetry};

const WORDS: u32 = 1000;

/// Same seed as `tests/fault_injection.rs`: the 1e-6 per-word draw on
/// node 1, link 0 fires within the first 1000 words. The draws are pure
/// functions of `(seed, node, link, seq)`, so the schedule is stable.
const SEED: u64 = 441;

fn shift_run(plan: FaultPlan) -> (qcdoc::fault::HealthLedger, MachineTelemetry) {
    let machine = FunctionalMachine::new(TorusShape::new(&[4])).with_faults(plan);
    let (_, ledger, telemetry) = machine.run_with_telemetry(|ctx| {
        for i in 0..WORDS as u64 {
            ctx.mem
                .write_word(0x100 + i * 8, ctx.id.0 as u64 * 10_000 + i)
                .unwrap();
        }
        ctx.shift(
            Axis(0).plus(),
            DmaDescriptor::contiguous(0x100, WORDS),
            DmaDescriptor::contiguous(0x8000, WORDS),
        );
        ctx.mem.read_word(0x8000).unwrap()
    });
    (ledger, telemetry)
}

fn events_of<'a>(
    telemetry: &'a MachineTelemetry,
    node: u32,
    kind: FlightKind,
    detail: &str,
) -> Vec<&'a FlightEvent> {
    telemetry
        .flight
        .iter()
        .filter(|e| e.node == node && e.kind == kind && e.detail == detail)
        .collect()
}

#[test]
fn injected_schedule_appears_in_the_black_box() {
    let plan = FaultPlan::new(SEED)
        .with_event(FaultEvent::bit_error_rate(1, 0, 1e-6))
        .with_event(FaultEvent::mem_bit_flip(3, 0x100, 17));
    let (ledger, telemetry) = shift_run(plan);

    // Every wire corruption the plan scheduled left a flight event on
    // the afflicted node, stamped with the link it fired on — the event
    // count equals the ledger's injection counter exactly.
    let corrupt = events_of(&telemetry, 1, FlightKind::FaultInjected, "frame_corrupt");
    assert_eq!(
        corrupt.len() as u64,
        ledger.nodes[1].links[0].injected,
        "one frame_corrupt flight event per injected fault"
    );
    assert!(!corrupt.is_empty(), "the seeded 1e-6 draw must fire");
    assert!(corrupt.iter().all(|e| e.a == 0), "link index recorded");

    // Healing the corruption forced at least one go-back-N retry, and
    // the black box saw it.
    assert!(
        telemetry
            .flight
            .iter()
            .any(|e| e.kind == FlightKind::Retry && e.detail == "go_back_n"),
        "healing must leave a retry event: {}",
        telemetry.flight_dump(None)
    );

    // The memory flip on node 3 is recorded with its address and bit.
    let flips = events_of(&telemetry, 3, FlightKind::FaultInjected, "mem_flip");
    assert_eq!(flips.len(), 1);
    assert_eq!((flips[0].a, flips[0].b), (0x100, 17));

    // Per-node filtering: the dump for node 3 holds only node-3 lines.
    let dump3 = telemetry.flight_dump(Some(3));
    assert!(dump3.contains("node=3 fault_injected mem_flip a=256 b=17"));
    assert!(
        dump3.lines().all(|l| l.contains("node=3")),
        "filtered dump leaked other nodes: {dump3}"
    );
}

#[test]
fn deterministic_faults_dump_bit_identically() {
    // Memory flips and scheduled crashes are node-local (no wire
    // scheduling noise), so two runs of the same plan must produce
    // byte-identical black boxes.
    let plan = || {
        FaultPlan::new(7)
            .with_event(FaultEvent::mem_bit_flip(0, 0x200, 3))
            .with_event(FaultEvent::mem_bit_flip(2, 0x300, 41))
    };
    let run = |plan: FaultPlan| {
        let machine = FunctionalMachine::new(TorusShape::new(&[4])).with_faults(plan);
        let (_, _, telemetry) = machine.run_with_telemetry(|ctx| ctx.mem.read_word(0x200).unwrap());
        telemetry.flight_dump(None)
    };
    let first = run(plan());
    let second = run(plan());
    assert_eq!(first, second, "flight dump must be deterministic");
    assert!(first.contains("node=0 fault_injected mem_flip a=512 b=3"));
    assert!(first.contains("node=2 fault_injected mem_flip a=768 b=41"));
}

#[test]
fn wedge_reaches_the_host_ring_next_to_its_quarantine() {
    let plan = FaultPlan::new(0).with_event(FaultEvent::dead_link(2, 0, 0));
    let machine = FunctionalMachine::new(TorusShape::new(&[4])).with_faults(plan);
    let (_, ledger, telemetry) = machine.run_with_telemetry(|ctx| {
        ctx.mem.write_word(0x100, ctx.id.0 as u64).unwrap();
        ctx.shift(
            Axis(0).plus(),
            DmaDescriptor::contiguous(0x100, 1),
            DmaDescriptor::contiguous(0x200, 1),
        );
    });
    assert!(
        telemetry
            .flight
            .iter()
            .any(|e| e.kind == FlightKind::Wedge && e.detail == "silent_wire"),
        "the dead wire must wedge somebody: {}",
        telemetry.flight_dump(None)
    );

    // The host sweep quarantines the casualty and files its own event;
    // ingesting the node rings puts the whole story in one dump — the
    // artifact `qcsh qflight` renders.
    let mut q = Qdaemon::new(TorusShape::new(&[4, 1, 1, 1, 1, 1]));
    q.boot(&[]);
    q.ingest_health(&ledger);
    q.ingest_flight(&telemetry.flight);
    let dump = q.flight_dump(None);
    assert!(dump.contains("quarantine mark_faulty a=2"), "{dump}");
    assert!(dump.contains("wedge silent_wire"), "{dump}");
}

#[test]
fn dump_guard_leaves_an_artifact_matching_the_schedule() {
    let path = std::env::temp_dir().join("qcdoc_flight_acceptance_dump.txt");
    let _ = std::fs::remove_file(&path);
    let path_in = path.clone();
    let result = std::panic::catch_unwind(move || {
        let mut guard = FlightDumpGuard::new(&path_in);
        let plan = FaultPlan::new(9).with_event(FaultEvent::mem_bit_flip(1, 0x400, 5));
        let (_, telemetry) = shift_run(plan);
        guard.extend(&telemetry.flight);
        // A synthetic assertion failure: the guard turns it into a
        // black-box artifact on the way down.
        panic!("synthetic test failure");
    });
    assert!(result.is_err());
    let dump = std::fs::read_to_string(&path).expect("panic must leave a flight dump");
    assert!(
        dump.contains("node=1 fault_injected mem_flip a=1024 b=5"),
        "dump must match the injected schedule: {dump}"
    );
    let _ = std::fs::remove_file(&path);
}
