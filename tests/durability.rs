//! Durable-storage acceptance: the host crashes mid-checkpoint-write AND
//! the newest committed generation bit-rots on the RAID — and the
//! campaign still resumes, from generation N−1, to a final CG state
//! **bit-identical** to a run that never stopped.
//!
//! This is the host-system half of the paper's reliability story (§3.2,
//! §4 and hep-lat/0306023): nodes stream checkpoints to NFS-mounted
//! disks, and the storage layer — not just the SCU links — must be
//! survivable. The `CheckpointStore`'s atomic generation protocol means
//! a torn write can only ever cost the *in-flight* save; verified
//! restore with generational fallback means silent rot costs one
//! generation of replay, never the campaign.

use qcdoc::core::distributed::{
    assemble_checkpoint, resume_blocks, wilson_cg_segment, BlockGeom, CgResume, CgSegmentOut,
};
use qcdoc::core::functional::{FaultEvent, FaultPlan, FunctionalMachine, NodeCtx};
use qcdoc::core::recovery::{RecoveryConfig, Replacement, SegmentVerdict};
use qcdoc::fault::{StorageFault, StorageFaultPlan};
use qcdoc::geometry::{NodeCoord, PartitionSpec, TorusShape};
use qcdoc::host::ckstore::{CheckpointStore, StoreConfig, VerifyMode};
use qcdoc::host::nfs::{NfsError, NfsServer};
use qcdoc::host::{Qdaemon, RecoveryPlanner};
use qcdoc::lattice::checkpoint::{write_checkpoint, CgCheckpoint};
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc::scu::RetryPolicy;
use qcdoc::telemetry::MetricsRegistry;

const KAPPA: f64 = 0.12;
const TOL: f64 = 1e-7;
const MAX_ITERS: usize = 400;
const SEG_ITERS: usize = 6;

fn global() -> Lattice {
    Lattice::new([4, 4, 2, 2])
}

/// One recovery-segment of the distributed Wilson solve (the idiom of
/// `tests/recovery.rs`): fresh when no checkpoint exists, restored from
/// exact bits otherwise.
fn cg_segment_app(
    ctx: &mut NodeCtx,
    gauge: &GaugeField,
    b: &FermionField,
    state: &Option<CgCheckpoint>,
    segment_iters: usize,
) -> CgSegmentOut {
    let geom = BlockGeom::new(ctx, global());
    let lg = geom.extract_gauge(gauge);
    let lb = geom.extract_fermion(b);
    match state {
        None => wilson_cg_segment(
            ctx,
            &geom,
            &lg,
            &lb,
            KAPPA,
            TOL,
            MAX_ITERS,
            None,
            segment_iters,
        ),
        Some(ckpt) => {
            let (x, r, p) = resume_blocks(&geom, ckpt);
            let resume = CgResume {
                x: &x,
                r: &r,
                p: &p,
                rsq: ckpt.rsq,
                bref: ckpt.bref,
                iterations: ckpt.iterations,
            };
            wilson_cg_segment(
                ctx,
                &geom,
                &lg,
                &lb,
                KAPPA,
                TOL,
                MAX_ITERS,
                Some(resume),
                segment_iters,
            )
        }
    }
}

fn campaign_cfg() -> StoreConfig {
    StoreConfig {
        root: "/data/ck/campaign".into(),
        retain: 3,
        verify: VerifyMode::CgArchive,
        retry: RetryPolicy::bounded(4, 2, 16),
    }
}

#[test]
fn host_crash_plus_rotted_newest_generation_resumes_bit_identically() {
    let gauge = GaugeField::hot(global(), 21);
    let b = FermionField::gaussian(global(), 22);
    let logical = TorusShape::new(&[2, 2, 2]);

    // Reference: the uninterrupted run.
    let ref_outs = FunctionalMachine::new(logical.clone())
        .run(|ctx| cg_segment_app(ctx, &gauge, &b, &None, usize::MAX));
    assert!(ref_outs.iter().all(|o| o.converged && !o.wedged));
    let ref_ckpt = assemble_checkpoint(&logical, global(), &ref_outs, &[]);

    // --- The campaign, checkpointing durably every SEG_ITERS. ---------
    let mut nfs = NfsServer::new(&["/data"], 1 << 24);
    let mut store = CheckpointStore::open(campaign_cfg(), &mut nfs);
    let mut state: Option<CgCheckpoint> = None;
    let mut prior_residuals: Vec<f64> = Vec::new();
    for seg in 0..3u64 {
        if seg == 1 {
            // An NFS server crash tears this save's temp write; the
            // store's bounded retry re-drives it — no generation harmed.
            nfs.inject(
                &StorageFaultPlan::new(5).with_event(StorageFault::TornWrite {
                    write_op: nfs.write_ops(),
                    keep: None,
                }),
            );
        }
        let outs = FunctionalMachine::new(logical.clone())
            .run(|ctx| cg_segment_app(ctx, &gauge, &b, &state, SEG_ITERS));
        let ckpt = assemble_checkpoint(&logical, global(), &outs, &prior_residuals);
        prior_residuals = ckpt.residuals.clone();
        assert!(!ckpt.converged, "campaign must outlive three segments");
        assert_eq!(store.save(&mut nfs, &write_checkpoint(&ckpt)).unwrap(), seg);
        state = Some(ckpt);
    }
    assert!(
        store.torn_detected() >= 1 && store.retries() >= 1,
        "the mid-campaign torn write must be detected and retried"
    );
    assert_eq!(store.generations(&nfs), vec![0, 1, 2]);

    // --- The disaster. ------------------------------------------------
    // (1) The host dies mid-way through writing generation 3: the temp
    // write tears and no one retries, because the writer is gone.
    nfs.inject(
        &StorageFaultPlan::new(7).with_event(StorageFault::TornWrite {
            write_op: nfs.write_ops(),
            keep: None,
        }),
    );
    let outs = FunctionalMachine::new(logical.clone())
        .run(|ctx| cg_segment_app(ctx, &gauge, &b, &state, SEG_ITERS));
    let ckpt3 = assemble_checkpoint(
        &logical,
        global(),
        &outs,
        &state.as_ref().unwrap().residuals,
    );
    let h = nfs.open("/data/ck/campaign/tmp.ckpt").unwrap();
    assert_eq!(
        nfs.write(h, &write_checkpoint(&ckpt3)),
        Err(NfsError::ServerCrash)
    );
    drop(store); // the host process is gone; only the disks survive

    // (2) While the machine is down, the newest committed generation
    // rots on the platter: one flipped bit deep in the payload.
    let newest = nfs.list("/data/ck/campaign/gen-").pop().unwrap();
    let len = nfs.stat(&newest).unwrap();
    nfs.inject(&StorageFaultPlan::new(9).with_event(StorageFault::BitRot {
        path: newest,
        from_op: 0,
        byte: len - 5,
        bit: 4,
    }));

    // --- Recovery. ----------------------------------------------------
    let mut store = CheckpointStore::open(campaign_cfg(), &mut nfs);
    assert!(
        store.torn_detected() >= 1,
        "the leftover torn temp must be recognised on open"
    );
    let (resumed, restored) = store.restore_cg(&mut nfs).unwrap();
    assert_eq!(restored.generation, 1, "fallback to generation N-1");
    assert_eq!(restored.skipped.len(), 1);
    assert_eq!(restored.skipped[0].0, 2, "generation N was the rotted one");
    assert!(
        restored.skipped[0].1.contains("checksum"),
        "rot is detected as a checksum failure: {:?}",
        restored.skipped
    );
    assert_eq!(resumed.iterations, 2 * SEG_ITERS);
    assert_eq!(store.fallbacks(), 1);
    assert_eq!(store.rot_detected(), 1);

    // Replay the delta iterations to convergence, still saving durably.
    let mut state = Some(resumed);
    let mut prior_residuals = state.as_ref().unwrap().residuals.clone();
    let recovered = loop {
        let outs = FunctionalMachine::new(logical.clone())
            .run(|ctx| cg_segment_app(ctx, &gauge, &b, &state, SEG_ITERS));
        let ckpt = assemble_checkpoint(&logical, global(), &outs, &prior_residuals);
        prior_residuals = ckpt.residuals.clone();
        if ckpt.converged {
            break ckpt;
        }
        store.save(&mut nfs, &write_checkpoint(&ckpt)).unwrap();
        state = Some(ckpt);
    };

    // Bit-identical to never having crashed: same solution bits, same
    // residual history, same digest.
    assert_eq!(recovered.iterations, ref_ckpt.iterations);
    assert_eq!(recovered.x, ref_ckpt.x);
    assert_eq!(
        recovered
            .residuals
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>(),
        ref_ckpt
            .residuals
            .iter()
            .map(|r| r.to_bits())
            .collect::<Vec<_>>()
    );
    assert_eq!(recovered.digest(), ref_ckpt.digest());

    // The whole story is visible to the host: flight events flow into
    // the qdaemon's recorder, counters into the metrics scrape.
    let mut qdaemon = Qdaemon::new(TorusShape::new(&[2, 2, 2]));
    qdaemon.ingest_flight(&store.drain_flight());
    let dump = qdaemon.flight_dump(None);
    for needle in [
        "ckstore_torn_leftover",
        "ckstore_rot",
        "ckstore_fallback",
        "ckstore_restore",
        "ckstore_commit",
    ] {
        assert!(
            dump.contains(needle),
            "flight dump missing {needle}:\n{dump}"
        );
    }
    let mut reg = MetricsRegistry::new();
    store.export_metrics(&mut reg);
    let text = qcdoc::telemetry::prometheus_text(&reg);
    assert!(text.contains("ckstore_fallbacks 1"), "{text}");
    assert!(text.contains("ckstore_rot_detected 1"), "{text}");
}

/// Half-machine spec on a [2,2,2,2] box (the `tests/recovery.rs` idiom).
fn half_spec() -> PartitionSpec {
    PartitionSpec {
        origin: NodeCoord::ORIGIN,
        extents: vec![2, 2, 2, 1],
        groups: vec![vec![0], vec![1], vec![2]],
    }
}

#[test]
fn hardware_recovery_and_flaky_storage_compose_bit_identically() {
    // The full stack at once: a dead SCU link kills the partition
    // mid-solve (PR 3's recovery path) while the NFS server throws
    // transient I/O errors at the checkpoint traffic — every segment's
    // state round-trips through the durable store, and the quarantined,
    // re-planned, storage-retried run still lands on the reference bits.
    let gauge = GaugeField::hot(global(), 21);
    let b = FermionField::gaussian(global(), 22);

    let logical = TorusShape::new(&[2, 2, 2]);
    let ref_outs = FunctionalMachine::new(logical.clone())
        .run(|ctx| cg_segment_app(ctx, &gauge, &b, &None, usize::MAX));
    let ref_ckpt = assemble_checkpoint(&logical, global(), &ref_outs, &[]);

    let mut nfs = NfsServer::new(&["/data"], 1 << 24);
    // Sprinkle transient failures over the campaign's early NFS ops.
    nfs.inject(
        &StorageFaultPlan::new(13)
            .with_event(StorageFault::Transient { op: 2, count: 1 })
            .with_event(StorageFault::Transient { op: 11, count: 2 }),
    );
    let mut store = CheckpointStore::open(campaign_cfg(), &mut nfs);

    let mut qdaemon = Qdaemon::new(TorusShape::new(&[2, 2, 2, 2]));
    qdaemon.boot(&[]);
    let machine_faults = FaultPlan::new(7).with_event(FaultEvent::dead_link(3, 0, 300));
    let mut planner =
        RecoveryPlanner::new(&mut qdaemon, half_spec(), machine_faults, false).unwrap();

    let machine = FunctionalMachine::new(planner.partition().logical_shape().clone())
        .with_faults(planner.local_faults())
        .with_wedge_timeout(5_000);

    let mut prior_residuals: Vec<f64> = Vec::new();
    let (recovered, report) = machine
        .run_with_recovery(
            RecoveryConfig::default(),
            None,
            |ctx, state: &Option<CgCheckpoint>| cg_segment_app(ctx, &gauge, &b, state, SEG_ITERS),
            |shape, outs: Vec<CgSegmentOut>| {
                let ckpt = assemble_checkpoint(shape, global(), &outs, &prior_residuals);
                prior_residuals = ckpt.residuals.clone();
                if ckpt.converged {
                    SegmentVerdict::Done(ckpt)
                } else {
                    // Persist durably and resume from the store's
                    // verified read-back — the real campaign loop.
                    store
                        .save(&mut nfs, &write_checkpoint(&ckpt))
                        .expect("durable save");
                    let (restored, _) = store.restore_cg(&mut nfs).expect("verified restore");
                    SegmentVerdict::Continue(Some(restored))
                }
            },
            |ledger| {
                planner.quarantine_and_replan(&mut qdaemon, ledger).map(
                    |(part, faults, degraded)| Replacement {
                        shape: part.logical_shape().clone(),
                        faults,
                        degraded,
                    },
                )
            },
        )
        .expect("the spare half must carry the job home");

    assert_eq!(report.recoveries, 1);
    assert!(recovered.converged);
    assert!(
        store.retries() >= 2,
        "the scheduled transients must have been retried, got {}",
        store.retries()
    );
    assert_eq!(recovered.digest(), ref_ckpt.digest());
    assert_eq!(recovered.x, ref_ckpt.x);
}
