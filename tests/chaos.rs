//! Chaos-soak acceptance: the autonomic failure-management loop —
//! detect → checkpoint-requeue → repair-and-return — proven under
//! sustained, mixed fire.
//!
//! This is the machine-level counterpart of the paper's §4 operating
//! experience: campaigns on QCDOC survived real hardware attrition
//! because failure handling was part of normal operations, not an
//! exception path. The soak runs a multi-tenant job mix while dead
//! links, node crashes, wedges, uncorrectable machine checks, link
//! corruption and storage faults all strike on a seeded schedule, and
//! gates the outcome on machine-level SLOs:
//!
//! * **zero lost jobs** — every submission completes;
//! * **bit-identical solves** — tracked CG jobs resumed from their
//!   durable checkpoints land on the fault-free fingerprint;
//! * **goodput** — delivered-minus-wasted service stays above a floor
//!   despite the rollbacks;
//! * **capacity recovery** — the repair pipeline returns every
//!   non-lemon node to service; lemons are stickily blacklisted;
//! * **restart survival** — killing the qdaemon mid-soak resumes the
//!   same scheduler event log from the vault snapshot.

use qcdoc::host::{run_chaos, ChaosConfig};

#[test]
fn sustained_chaos_soak_meets_the_machine_slos() {
    let report = run_chaos(ChaosConfig::default());
    let cfg = ChaosConfig::default();

    // The soak must actually have been a soak: faults of both halves
    // (machine and storage) landed, requeues happened, repairs ran.
    assert!(report.drained, "scheduler must drain: {report:?}");
    assert!(report.failures_injected >= 10, "{report:?}");
    assert!(report.storage_faults_injected >= 3, "{report:?}");
    assert!(report.requeues >= 5, "{report:?}");
    assert!(report.repaired >= 1, "repair must return nodes: {report:?}");

    // SLO 1: zero lost jobs.
    assert_eq!(report.lost, 0, "no job may be lost: {report:?}");
    assert_eq!(
        report.completed,
        (cfg.jobs + cfg.tracked_solves) as u64,
        "every submission completes: {report:?}"
    );

    // SLO 2: bit-identical tracked solves.
    assert_eq!(
        report.tracked_matches, report.tracked_total,
        "every tracked CG solve must match the fault-free fingerprint: {report:?}"
    );

    // SLO 3: goodput under fault load.
    assert!(
        report.goodput > 0.10,
        "goodput collapsed under faults: {report:?}"
    );

    // SLO 4: capacity recovered — everything allocatable again except
    // the stickily-blacklisted lemons.
    assert_eq!(
        report.capacity_end + report.blacklisted as usize,
        report.node_count,
        "capacity must recover up to the blacklist: {report:?}"
    );
    assert!(
        report.blacklisted as usize <= cfg.lemons,
        "only lemons may be blacklisted: {report:?}"
    );
}

#[test]
fn chaos_soak_is_deterministic_per_seed() {
    let a = run_chaos(ChaosConfig::default());
    let b = run_chaos(ChaosConfig::default());
    assert_eq!(a.event_digest, b.event_digest, "same seed, same history");
    assert_eq!(a.event_count, b.event_count);
    assert_eq!(a.clock, b.clock);
    assert_eq!(a.requeues, b.requeues);
    assert_eq!(a.goodput.to_bits(), b.goodput.to_bits());

    let c = run_chaos(ChaosConfig {
        seed: 99,
        ..ChaosConfig::default()
    });
    assert_ne!(
        a.event_digest, c.event_digest,
        "a different seed must tell a different story"
    );
}

#[test]
fn killing_the_qdaemon_mid_soak_resumes_the_same_event_log() {
    let report = run_chaos(ChaosConfig {
        restart_at: Some(150),
        ..ChaosConfig::default()
    });
    assert_eq!(
        report.restart_log_resumed,
        Some(true),
        "the restored scheduler must carry the pre-kill event log: {report:?}"
    );
    // The restart must not weaken any SLO: nothing lost, solves exact,
    // capacity recovered.
    assert!(report.drained, "{report:?}");
    assert_eq!(report.lost, 0, "{report:?}");
    assert_eq!(report.tracked_matches, report.tracked_total, "{report:?}");
    assert_eq!(
        report.capacity_end + report.blacklisted as usize,
        report.node_count,
        "{report:?}"
    );
}

#[test]
fn heavier_fire_still_loses_nothing() {
    // Double the strike rate and add a lemon: the budgeted retries and
    // degradable shape menu must still carry every job home.
    let report = run_chaos(ChaosConfig {
        seed: 7,
        fault_period: 7,
        lemons: 3,
        ..ChaosConfig::default()
    });
    assert!(report.drained, "{report:?}");
    assert_eq!(report.lost, 0, "{report:?}");
    assert_eq!(report.tracked_matches, report.tracked_total, "{report:?}");
    assert!(report.failures_injected > 15, "{report:?}");
}
