//! The production I/O loop: evolve a configuration, write it in the NERSC
//! archive format through the NFS path to the host RAID, read it back,
//! and keep computing — with corruption caught by the format's checksum.

use qcdoc::host::nfs::NfsServer;
use qcdoc::lattice::eo::EoWilson;
use qcdoc::lattice::field::{FermionField, GaugeField, Lattice};
use qcdoc::lattice::gauge::{average_plaquette, evolve, EvolveParams};
use qcdoc::lattice::io::{read_config, write_config, IoError};
use qcdoc::lattice::solver::CgParams;

#[test]
fn evolve_write_nfs_read_solve() {
    // Evolve.
    let lat = Lattice::new([4, 4, 2, 2]);
    let mut gauge = GaugeField::hot(lat, 808);
    evolve(&mut gauge, EvolveParams::default(), 5, 3);
    let plaq = average_plaquette(&gauge);

    // Write through NFS to the host.
    let mut nfs = NfsServer::paper_host();
    let handle = nfs.open("/data/ensembles/b5p7/lat.3").unwrap();
    let bytes = write_config(&gauge);
    nfs.write(handle, &bytes).unwrap();
    assert_eq!(
        nfs.stat("/data/ensembles/b5p7/lat.3").unwrap(),
        bytes.len() as u64
    );

    // Read back on "another job" and verify bit identity.
    let restored = read_config(&nfs.read("/data/ensembles/b5p7/lat.3").unwrap()).unwrap();
    assert_eq!(restored.fingerprint(), gauge.fingerprint());
    assert!((average_plaquette(&restored) - plaq).abs() < 1e-15);

    // Continue the physics on the restored configuration.
    let eo = EoWilson::new(&restored, 0.12);
    let b = FermionField::gaussian(lat, 809);
    let (_, report) = eo.solve(&b, CgParams::default());
    assert!(report.converged);
}

#[test]
fn disk_corruption_is_caught_before_physics() {
    let lat = Lattice::new([2, 2, 2, 4]);
    let mut gauge = GaugeField::hot(lat, 4242);
    evolve(&mut gauge, EvolveParams::default(), 9, 2);
    let mut nfs = NfsServer::paper_host();
    let h = nfs.open("/data/lat.bad").unwrap();
    let mut bytes = write_config(&gauge);
    // A disk/network bit flip in the payload.
    let n = bytes.len();
    bytes[n - 333] ^= 0x08;
    nfs.write(h, &bytes).unwrap();
    match read_config(&nfs.read("/data/lat.bad").unwrap()) {
        Err(IoError::Checksum { .. }) => {}
        other => panic!("corruption must be caught, got {other:?}"),
    }
}

#[test]
fn ensemble_of_configurations_on_one_export() {
    // A short ensemble stream: N configurations written and individually
    // restorable.
    let lat = Lattice::new([2, 2, 2, 2]);
    let mut gauge = GaugeField::hot(lat, 31);
    let mut nfs = NfsServer::paper_host();
    let mut fingerprints = Vec::new();
    for k in 0..4 {
        evolve(&mut gauge, EvolveParams::default(), 100 + k, 2);
        let path = format!("/data/stream/lat.{k}");
        let h = nfs.open(&path).unwrap();
        nfs.write(h, &write_config(&gauge)).unwrap();
        fingerprints.push(gauge.fingerprint());
    }
    for k in 0..4 {
        let restored = read_config(&nfs.read(&format!("/data/stream/lat.{k}")).unwrap()).unwrap();
        assert_eq!(
            restored.fingerprint(),
            fingerprints[k as usize],
            "config {k}"
        );
    }
    // Configurations are distinct.
    fingerprints.dedup();
    assert_eq!(fingerprints.len(), 4);
}
